//! A concordance as superimposed information — the paper's opening
//! example.
//!
//! "Consider a concordance for the works of Shakespeare. For a given
//! term, we can find out every line (in a play) where the term is used.
//! A concordance is one example of what we call superimposed
//! information … Superimposed information relies on an addressing scheme
//! for information elements in the original documents, often at a fine
//! granularity, e.g., play-act-scene-line." (paper §1)
//!
//! The plays live in the text application (paragraph = line addressing);
//! the concordance itself is superimposed data in the *generic*
//! representation: a topic-map model where each term is a Topic and each
//! occurrence is a mark into a play. This shows the SLIM Store serving a
//! model other than Bundle-Scrap, through the generated DMI.
//!
//! Run with: `cargo run --example concordance`

use std::cell::RefCell;
use std::rc::Rc;
use superimposed::basedocs::textdoc::TextDocument;
use superimposed::basedocs::{BaseApplication, TextApp};
use superimposed::marks::{AppModule, MarkManager};
use superimposed::metamodel::builtin;
use superimposed::slimstore::generic::DmiValue;
use superimposed::GenericDmi;

/// Public-domain excerpts, one document per play; each line is its own
/// paragraph so the address granularity is play/act-scene-line.
const PLAYS: &[(&str, &str)] = &[
    (
        "hamlet/3-1.txt",
        "To be, or not to be, that is the question:\n\n\
         Whether 'tis nobler in the mind to suffer\n\n\
         The slings and arrows of outrageous fortune,\n\n\
         Or to take arms against a sea of troubles\n\n\
         And by opposing end them. To die: to sleep;\n\n\
         No more; and by a sleep to say we end\n\n\
         The heart-ache and the thousand natural shocks\n\n\
         That flesh is heir to, 'tis a consummation\n\n\
         Devoutly to be wish'd. To die, to sleep;",
    ),
    (
        "macbeth/5-5.txt",
        "To-morrow, and to-morrow, and to-morrow,\n\n\
         Creeps in this petty pace from day to day\n\n\
         To the last syllable of recorded time,\n\n\
         And all our yesterdays have lighted fools\n\n\
         The way to dusty death. Out, out, brief candle!\n\n\
         Life's but a walking shadow, a poor player\n\n\
         That struts and frets his hour upon the stage\n\n\
         And then is heard no more: it is a tale\n\n\
         Told by an idiot, full of sound and fury,\n\n\
         Signifying nothing.",
    ),
    (
        "julius-caesar/3-2.txt",
        "Friends, Romans, countrymen, lend me your ears;\n\n\
         I come to bury Caesar, not to praise him.\n\n\
         The evil that men do lives after them;\n\n\
         The good is oft interred with their bones;\n\n\
         So let it be with Caesar. The noble Brutus\n\n\
         Hath told you Caesar was ambitious:\n\n\
         If it were so, it was a grievous fault,\n\n\
         And grievously hath Caesar answer'd it.",
    ),
];

/// Terms the concordance indexes.
const TERMS: &[&str] = &["to", "death", "sleep", "Caesar", "time"];

fn main() {
    // ---- base layer: the plays in the text application ----------------------
    let text_app = Rc::new(RefCell::new(TextApp::new()));
    for (name, body) in PLAYS {
        text_app.borrow_mut().open(TextDocument::from_text(*name, body)).unwrap();
    }
    let mut manager = MarkManager::new();
    manager
        .register_module(Box::new(AppModule::in_context("text", Rc::clone(&text_app))))
        .unwrap();

    // ---- superimposed layer: a topic-map concordance -------------------------
    let mut concordance = GenericDmi::new(builtin::topic_map_like());

    let mut total_occurrences = 0usize;
    for term in TERMS {
        let topic = concordance.create("Topic").unwrap();
        concordance.set(topic, "topicName", DmiValue::Text(term.to_string())).unwrap();
        // Scan every line of every play; each hit becomes a mark whose id
        // is recorded as an occurrence of the topic.
        for (play, _) in PLAYS {
            let line_count = text_app.borrow().document(play).unwrap().paragraphs().len();
            for line_no in 0..line_count {
                let line =
                    text_app.borrow().document(play).unwrap().paragraphs()[line_no].clone();
                let lower = line.to_lowercase();
                let needle = term.to_lowercase();
                let mut from = 0usize;
                while let Some(found) = lower[from..].find(&needle) {
                    let at = from + found;
                    // Whole-word check.
                    let before_ok = at == 0
                        || !lower[..at].chars().next_back().unwrap().is_alphanumeric();
                    let after = at + needle.len();
                    let after_ok = after >= lower.len()
                        || !lower[after..].chars().next().unwrap().is_alphanumeric();
                    if before_ok && after_ok {
                        // Select the word in the base app, mark it, and
                        // record the mark id as an occurrence.
                        text_app.borrow_mut().select_span(play, line_no, at, after).unwrap();
                        let mark_id =
                            manager.create_mark(superimposed::DocKind::Text).unwrap();
                        concordance
                            .set(topic, "occurrence", DmiValue::Text(mark_id))
                            .unwrap();
                        total_occurrences += 1;
                    }
                    from = after.max(from + 1);
                }
            }
        }
    }

    println!("concordance built: {} terms, {} occurrences, {} triples in the SLIM store\n",
        TERMS.len(), total_occurrences, concordance.store().len());

    // ---- use it: look up a term, resolve occurrences back into context --------
    // Term lookup is a conjunctive join — (?t conformsTo Topic) ⋈
    // (?t topicName <term>) — answered by the store's merge-join planner
    // instead of a linear scan over every topic. Show the plan once:
    {
        use superimposed::metamodel::vocab;
        use superimposed::trim::{ConjQuery, Value};
        let store = concordance.store();
        if let (Some(conf), Some(topic_c), Some(name_p), Some(lit)) = (
            store.find_atom(vocab::CONFORMS_TO),
            store.find_atom(&vocab::construct_res("topic-map", "Topic")),
            store.find_atom("topicName"),
            store.find_atom("death"),
        ) {
            let mut q = ConjQuery::new();
            let t = q.var("topic");
            q.pattern(t, conf, topic_c).pattern(t, name_p, Value::Literal(lit));
            println!("join plan for the \"death\" lookup:");
            println!("{}", store.explain_join(&q).unwrap());
        }
    }
    for term in ["death", "Caesar"] {
        let topic = concordance
            .instances_with_text("Topic", "topicName", term)
            .into_iter()
            .next()
            .expect("term indexed");
        let occurrences = concordance.texts(topic, "occurrence");
        println!("═ \"{}\" occurs {} time(s) ═", term, occurrences.len());
        for mark_id in &occurrences {
            let mark = manager.get(mark_id).unwrap();
            println!("  {} — {}", mark.address, mark.excerpt);
        }
        // Resolve the first occurrence fully: the base app shows the line
        // highlighted in context.
        if let Some(first) = occurrences.first() {
            let res = manager.resolve(first).unwrap();
            println!("{}", res.display);
        }
    }

    // ---- conformance + persistence ---------------------------------------------
    let report = concordance.check();
    assert!(report.is_conformant(), "{:?}", report.violations);
    let xml = concordance.save_xml();
    let reloaded = GenericDmi::load_xml(&xml, "topic-map").unwrap();
    assert_eq!(reloaded.instances("Topic").len(), TERMS.len());
    println!(
        "concordance persisted ({} bytes) and reloaded: {} topics intact; conformant: {}",
        xml.len(),
        reloaded.instances("Topic").len(),
        reloaded.check().is_conformant()
    );

    // The selection left in the base app is whatever the last mark set —
    // show the narrow interface really is just selection + navigation.
    let last = text_app.borrow().current_selection().unwrap();
    println!("base application's final selection: {last}");
}
