//! The ICU flowsheet of paper Figure 2 (upper left): "a more structured
//! bundle called a flowsheet, where the status of an intensive-care
//! patient is tracked over time."
//!
//! The flowsheet itself is a base document — a spreadsheet of vitals by
//! hour, with summary formulas (MIN/MAX/MEDIAN/COUNTIF). The
//! superimposed layer marks the *clinically significant* cells and
//! bundles them for rounds: "The selection of bundle content itself adds
//! value by excluding information that's not considered important to the
//! current context" (paper §2).
//!
//! Run with: `cargo run --example flowsheet`

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::render::render_pad;
use superimposed::{DocKind, SuperimposedSystem};

fn flowsheet_workbook() -> Workbook {
    let mut wb = Workbook::new("flowsheet.xls");
    let sheet = wb.sheet_mut("Sheet1").expect("default sheet");
    // Hourly vitals: heart rate, mean arterial pressure, SpO2, urine out.
    sheet
        .import_csv(
            "Hour,HR,MAP,SpO2,Urine mL\n\
             06:00,92,71,97,40\n\
             07:00,95,69,96,35\n\
             08:00,101,64,95,20\n\
             09:00,108,58,93,10\n\
             10:00,112,55,92,5\n\
             11:00,104,62,94,30\n",
        )
        .expect("well-formed flowsheet");
    // Summary row: the formulas a charge nurse keeps at the bottom.
    sheet.set_a1("A9", "summary").unwrap();
    sheet.set_a1("B9", "=MAX(B2:B7)").unwrap(); // worst tachycardia
    sheet.set_a1("C9", "=MIN(C2:C7)").unwrap(); // worst hypotension
    sheet.set_a1("D9", "=MEDIAN(D2:D7)").unwrap();
    sheet.set_a1("E9", "=SUM(E2:E7)").unwrap(); // total urine output
    sheet.set_a1("A10", "hours MAP<60").unwrap();
    sheet.set_a1("B10", "=COUNTIF(C2:C7, \"<60\")").unwrap();
    wb.define_name("UrineTotal", "Sheet1", superimposed::basedocs::Range::parse("E9").unwrap())
        .unwrap();
    wb
}

fn main() {
    let mut sys = SuperimposedSystem::new("Rounds: Bed 4").expect("system boots");
    sys.excel.borrow_mut().open(flowsheet_workbook()).unwrap();

    // The raw flowsheet, as the base application shows it.
    println!("── the flowsheet (base document) ──");
    {
        let excel = sys.excel.borrow();
        let wb = excel.workbook("flowsheet.xls").unwrap();
        println!("{}", wb.sheet("Sheet1").unwrap().render(None));
    }

    // The clinician pulls only the significant cells onto the pad.
    let trend = sys.pad.create_bundle("Shock trend?", (20, 60), 620, 500, None).unwrap();
    let picks: &[(&str, &str, (i64, i64))] = &[
        ("C5", "MAP 58 @09:00", (40, 120)),
        ("C6", "MAP 55 @10:00", (40, 160)),
        ("E5", "urine 10 @09:00", (300, 120)),
        ("E6", "urine 5 @10:00", (300, 160)),
        ("B10", "hrs MAP<60", (40, 240)),
    ];
    let mut scraps = Vec::new();
    for (cell, label, pos) in picks {
        sys.excel.borrow_mut().select("flowsheet.xls", "Sheet1", cell).unwrap();
        scraps
            .push(sys.pad.place_selection(DocKind::Spreadsheet, Some(label), *pos, Some(trend)).unwrap());
    }
    // The named-range mark: robust against row inserts as shifts happen.
    sys.excel.borrow_mut().select_name("flowsheet.xls", "UrineTotal").unwrap();
    let total =
        sys.pad.place_selection(DocKind::Spreadsheet, Some("urine 6h total"), (300, 240), Some(trend)).unwrap();
    sys.pad.dmi_mut().add_annotation(total, "goal ≥ 180 mL — NOT met").unwrap();
    sys.pad.dmi_mut().link_scraps(scraps[1], scraps[3]).unwrap(); // MAP↓ with urine↓

    println!("── the bundle (superimposed selection) ──");
    println!("{}", render_pad(&sys.pad).unwrap());

    // The juxtaposition carries meaning: two columns (MAP | urine) over
    // two time rows — detected as implicit structure.
    let grid = sys.pad.detect_gridlet(trend, 10).unwrap();
    println!(
        "implicit structure in the bundle: {} time-row(s), {} measure-column(s)",
        grid.rows.len(),
        grid.columns.len()
    );

    // Double-click the worst MAP: the flowsheet opens with the cell
    // highlighted in context (trend visible above and below).
    println!("\n── activating 'MAP 55 @10:00' ──");
    println!("{}", sys.pad.activate(scraps[1]).unwrap().display);

    // A missed 06:30 entry is inserted mid-table: ranges grow, formulas
    // recompute, absolute-range marks drift.
    {
        let mut excel = sys.excel.borrow_mut();
        let wb = excel.workbook_mut("flowsheet.xls").unwrap();
        wb.insert_row("Sheet1", 2).unwrap();
        let sheet = wb.sheet_mut("Sheet1").unwrap();
        sheet.set_a1("A3", "06:30").unwrap();
        sheet.set_a1("B3", "93").unwrap();
        sheet.set_a1("C3", "70").unwrap();
        sheet.set_a1("D3", "97").unwrap();
        sheet.set_a1("E3", "25").unwrap();
    }
    let audit = sys.pad.marks().audit();
    let drifted = audit.iter().filter(|a| a.drifted).count();
    println!(
        "after the 06:30 row was inserted: {}/{} absolute-range marks drifted \
         (stale total mark now reads {:?})",
        drifted,
        audit.len(),
        sys.pad.extract(total).unwrap()
    );
    // Formulas and named ranges moved *with* the data inside the
    // workbook, so the pad heals by re-marking through the defined name.
    sys.excel.borrow_mut().select_name("flowsheet.xls", "UrineTotal").unwrap();
    let healed = sys
        .pad
        .marks_mut()
        .create_mark(DocKind::Spreadsheet)
        .expect("named range still resolves");
    println!(
        "re-marked via the defined name 'UrineTotal': total is {:?} (includes the 06:30 entry)",
        sys.pad.marks().get(&healed).unwrap().excerpt
    );
}
