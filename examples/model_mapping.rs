//! Cross-model mapping: Bundle-Scrap → Topic Map.
//!
//! "There are a number of benefits to the generic representation. First,
//! we can describe superimposed information from various models
//! uniformly using RDF triples. Also, since RDF defines a
//! serialization-syntax (in XML), we can use the representation for
//! interoperability between superimposed applications. We can leverage
//! the generic representation directly, by defining mappings between
//! superimposed models" (paper §4.3).
//!
//! This example builds a SLIMPad bundle tree, maps it into the
//! Topic-Map-like model, verifies the result conforms, and ships it as
//! XML — the interoperability path between two superimposed
//! applications that have never heard of each other.
//!
//! Run with: `cargo run --example model_mapping`

use superimposed::metamodel::{apply_mapping, builtin, check_conformance, Mapping};
use superimposed::trim::TriplePattern;
use superimposed::{DocKind, SuperimposedSystem};

fn main() {
    // ---- application 1: SLIMPad with a small pad -----------------------------
    let mut sys = SuperimposedSystem::new("Handoff").expect("system boots");
    sys.xml
        .borrow_mut()
        .open_text("labs.xml", "<labs><na>140</na><k>4.1</k><cr>1.1</cr></labs>")
        .unwrap();

    let patient = sys.pad.create_bundle("John Smith", (20, 60), 500, 400, None).unwrap();
    let labs = sys.pad.create_bundle("Morning labs", (60, 150), 300, 200, Some(patient)).unwrap();
    for (i, path) in ["/labs/na", "/labs/k", "/labs/cr"].iter().enumerate() {
        sys.xml.borrow_mut().select_by_path("labs.xml", path).unwrap();
        sys.pad
            .place_selection(DocKind::Xml, None, (80, 180 + 30 * i as i64), Some(labs))
            .unwrap();
    }
    let pad_store = sys.pad.dmi().store();
    println!(
        "SLIMPad store: {} triples, {} interned atoms",
        pad_store.len(),
        pad_store.stats().atoms
    );

    // The model travels with the data: decode it from the store and
    // regenerate paper Figure 3's UML from the triples themselves.
    let stored_model =
        superimposed::metamodel::encode::decode_model(pad_store, "bundle-scrap").unwrap();
    println!("\n══ Figure 3, regenerated from the stored model ══");
    println!("{}", stored_model.to_uml());

    // ---- the mapping -----------------------------------------------------------
    // Bundles and scraps both become topics; names map to topic names;
    // nesting and containment become relatedTo edges; the mark wire
    // degrades to an occurrence id.
    let mapping = Mapping::new("slimpad-to-topicmap")
        .construct("Bundle", "Topic")
        .construct("Scrap", "Topic")
        .connector("bundleName", "topicName")
        .connector("scrapName", "topicName")
        .connector("nestedBundle", "relatedTo")
        .connector("bundleContent", "relatedTo");
    mapping
        .validate(&builtin::bundle_scrap(), &builtin::topic_map_like())
        .expect("mapping is well-formed");

    let mapped = apply_mapping(
        pad_store,
        &mapping,
        &builtin::bundle_scrap(),
        &builtin::topic_map_like(),
    )
    .expect("mapping applies");

    // ---- application 2 receives topic-map data ---------------------------------
    let report = check_conformance(&mapped, &builtin::topic_map_like());
    assert!(report.is_conformant(), "{:?}", report.violations);
    println!(
        "mapped store: {} triples; conforms to topic-map model over {} instance(s)",
        mapped.len(),
        report.instances
    );

    let name_p = mapped.find_atom("topicName").expect("names mapped");
    let mut names: Vec<&str> = mapped
        .select_sorted(&TriplePattern::default().with_property(name_p))
        .iter()
        .filter_map(|t| mapped.value_str(t.object))
        .collect();
    names.sort_unstable();
    println!("topics: {names:?}");

    let related_p = mapped.find_atom("relatedTo").expect("structure mapped");
    println!(
        "relatedTo edges (bundle nesting + containment): {}",
        mapped.count(&TriplePattern::default().with_property(related_p))
    );

    // ---- interoperability: the XML wire format ----------------------------------
    let wire = mapped.to_xml();
    let received = superimposed::trim::TripleStore::from_xml(&wire).expect("wire format parses");
    assert_eq!(received.len(), mapped.len());
    println!("shipped {} bytes of RDF-style XML; receiver reloaded {} triples intact", wire.len(), received.len());

    // The receiving application can even decode the *model* from the
    // store — model, schema, and instance all travel together.
    let decoded = superimposed::metamodel::encode::decode_model(&received, "topic-map").unwrap();
    println!(
        "receiver decoded the '{}' model from the payload: {} constructs, {} connectors",
        decoded.name,
        decoded.constructs().len(),
        decoded.connectors().len()
    );
}
