//! Shared web annotations — the related-work systems (ComMentor, Third
//! Voice) rebuilt on the SLIM architecture.
//!
//! "In ComMentor, users can ask for specific types of annotations
//! created within a time range and use the returned annotations to
//! navigate the corresponding web pages." (paper §5) Third Voice
//! "enhances web browsers by allowing the user to create and view
//! annotations in the same browser window as the Web page" — the
//! *enhanced base-layer viewing* style of Figure 6.
//!
//! Annotations here are bundles-of-one-scrap with typed annotation text,
//! marks anchor into HTML pages, and queries run over the superimposed
//! store by annotation type — showing that SLIMPad's model subsumes the
//! annotation systems it is compared against.
//!
//! Run with: `cargo run --example annotations`

use superimposed::slimpad::viewing::view_scrap;
use superimposed::{DocKind, SuperimposedSystem, ViewingStyle};

const GUIDELINE_PAGE: &str = r#"<html><head><title>CHF Guideline</title></head><body>
<h1>Acute CHF Management</h1>
<p id="diuresis">Initiate loop diuretic therapy promptly; <b>furosemide 40 mg IV</b> is a
typical starting dose for diuretic-naive patients.</p>
<p id="monitoring">Monitor serum potassium and renal function at least daily during
intravenous diuresis.</p>
<ul>
  <li>Daily weights</li>
  <li>Strict intake/output documentation</li>
</ul>
</body></html>"#;

const FORMULARY_PAGE: &str = r#"<html><body>
<h1>Formulary: Furosemide</h1>
<p id="dosing">IV dosing: 20-80 mg; doses above 80 mg require attending approval.</p>
</body></html>"#;

/// The annotation types ComMentor-style queries filter on.
const TYPES: &[&str] = &["question", "caution", "agree"];

fn main() {
    let mut sys = SuperimposedSystem::new("Shared Annotations").expect("system boots");
    sys.html.borrow_mut().load("guide/chf.html", GUIDELINE_PAGE).unwrap();
    sys.html.borrow_mut().load("formulary/furosemide.html", FORMULARY_PAGE).unwrap();

    // Each (page-anchor, type, author, text) becomes a scrap whose mark
    // anchors into the page, with the typed annotation attached.
    let annotations: &[(&str, &str, &str, &str, &str)] = &[
        ("guide/chf.html", "diuresis", "caution", "gorman",
         "check last K before first dose"),
        ("guide/chf.html", "monitoring", "agree", "ash",
         "we do q12h in the unit, works well"),
        ("guide/chf.html", "diuresis", "question", "lavelle",
         "does this apply to dialysis patients?"),
        ("formulary/furosemide.html", "dosing", "caution", "gorman",
         "attending approval is slow on weekends — plan ahead"),
    ];

    let mut scraps = Vec::new();
    for (i, (page, anchor, atype, author, text)) in annotations.iter().enumerate() {
        sys.html.borrow_mut().select_anchor(page, anchor).unwrap();
        let scrap = sys
            .pad
            .place_selection(
                DocKind::Html,
                Some(&format!("[{atype}] {author}")),
                (40, 80 + 40 * i as i64),
                None,
            )
            .unwrap();
        sys.pad.dmi_mut().add_annotation(scrap, &format!("{atype}|{author}|{text}")).unwrap();
        scraps.push(scrap);
    }
    println!("{} annotations shared on {} pages\n", scraps.len(), 2);

    // ---- ComMentor-style query: "all cautions" ------------------------------
    for wanted in TYPES {
        let hits: Vec<_> = scraps
            .iter()
            .filter(|s| {
                sys.pad
                    .dmi()
                    .annotations(**s)
                    .unwrap()
                    .iter()
                    .any(|a| a.starts_with(&format!("{wanted}|")))
            })
            .collect();
        println!("query type={wanted}: {} hit(s)", hits.len());
        for s in hits {
            let data = sys.pad.dmi().scrap(*s).unwrap();
            let mark_id = sys.pad.dmi().mark_handle(data.marks[0]).unwrap().mark_id;
            let mark = sys.pad.marks().get(&mark_id).unwrap();
            println!("   {} @ {}", data.name, mark.address);
        }
    }

    // ---- navigate from an annotation back into the page ---------------------
    // (ComMentor: "use the returned annotations to navigate the
    // corresponding web pages".)
    println!("\n── resolving the first caution drives the browser to the anchor ──");
    let res = sys.pad.activate(scraps[0]).unwrap();
    println!("{}", res.display);

    // ---- Third Voice: enhanced base-layer viewing -----------------------------
    println!("── enhanced base-layer view (annotation inside the browser window) ──");
    let screen = view_scrap(&mut sys.pad, scraps[0], ViewingStyle::EnhancedBase).unwrap();
    println!("{screen}");

    // ---- robustness: the page changes under the annotations --------------------
    // Close and reload a *restructured* guideline page: the anchors keep
    // the first two annotations live even though the layout changed.
    sys.html.borrow_mut().close("guide/chf.html").unwrap();
    sys.html
        .borrow_mut()
        .load(
            "guide/chf.html",
            r#"<html><body><h1>Acute CHF Management (rev 2)</h1>
               <div><p id="monitoring">Monitor potassium twice daily.</p></div>
               <p id="diuresis">Loop diuretics remain first line.</p></body></html>"#,
        )
        .unwrap();
    let audit = sys.pad.marks().audit();
    let live = audit.iter().filter(|a| a.live).count();
    let drifted = audit.iter().filter(|a| a.drifted).count();
    println!("after the page was rewritten: {live}/{} marks live, {drifted} drifted", audit.len());
    for row in &audit {
        let mark = sys.pad.marks().get(&row.mark_id).unwrap();
        println!(
            "  {} live={} drifted={} ({})",
            row.mark_id, row.live, row.drifted, mark.address
        );
    }
}
