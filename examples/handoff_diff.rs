//! Weekend handoff with pad diffing — the paper's §6 target task plus
//! the question every covering doctor asks: *what changed?*
//!
//! Friday's resident builds and saves the pad. Saturday's coverage
//! updates it against the morning's data. The diff report shows exactly
//! what moved — "sharing bundles to establish collectively maintained,
//! situated awareness" (paper §2), made auditable.
//!
//! Run with: `cargo run --example handoff_diff`

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::diff::diff_pads;
use superimposed::slimpad::PadSession;
use superimposed::{DocKind, SuperimposedSystem};

fn hospital_system(k_value: &str) -> SuperimposedSystem {
    let sys = SuperimposedSystem::new("scratch").unwrap();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1")
        .unwrap()
        .import_csv("Drug,Dose\nLasix,40\nKCl,20\n")
        .unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.xml
        .borrow_mut()
        .open_text("labs.xml", &format!("<labs><k>{k_value}</k><cr>1.2</cr></labs>"))
        .unwrap();
    sys
}

fn main() {
    // ---- Friday -------------------------------------------------------------
    let mut sys = hospital_system("3.4");
    let pad_handle = sys.pad.pad();
    sys.pad.dmi_mut().update_pad_name(pad_handle, "Bed 4 Handoff").unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2:B2").unwrap();
    let lasix = sys.pad.place_selection(DocKind::Spreadsheet, Some("Lasix 40"), (40, 90), None).unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
    let k = sys.pad.place_selection(DocKind::Xml, Some("K 3.4 LOW"), (40, 150), None).unwrap();
    sys.pad.dmi_mut().add_annotation(k, "repleting; recheck Sat am").unwrap();
    sys.pad.dmi_mut().link_scraps(k, lasix).unwrap();
    let friday_file = sys.pad.save_xml();
    println!("Friday pad saved ({} bytes)\n", friday_file.len());

    // ---- Saturday -------------------------------------------------------------
    // New morning: potassium normalized; the covering doctor updates.
    let mut saturday = hospital_system("4.1");
    saturday.reopen_pad(&friday_file).unwrap();
    // The old pad, reopened read-only for comparison later.
    let friday_pad =
        PadSession::load_xml(&friday_file, saturday.fresh_manager().unwrap()).unwrap();

    // Accept the overnight drift (the lab value changed under the mark),
    // then record the morning's state.
    let drift_report = saturday.pad.marks_mut().refresh_all_excerpts();
    let k = saturday.pad.dmi().find_scraps("K 3.4 LOW").remove(0);
    saturday.pad.dmi_mut().update_scrap_name(k, "K 4.1 ok").unwrap();
    saturday.pad.dmi_mut().add_annotation(k, "normalized; stop repletion").unwrap();
    saturday.excel.borrow_mut().select("meds.xls", "Sheet1", "A3:B3").unwrap();
    saturday
        .pad
        .place_selection(DocKind::Spreadsheet, Some("KCl — stop today"), (40, 210), None)
        .unwrap();
    println!(
        "Saturday: {} excerpt(s) refreshed to current base content ({drift_report})",
        drift_report.refreshed.len()
    );

    // ---- the diff report ---------------------------------------------------------
    println!("\n══ changes since Friday ══");
    for change in diff_pads(&friday_pad, &saturday.pad) {
        println!("  {change}");
    }

    println!("\n── Saturday stats ──\n{}", saturday.pad.stats());
}
