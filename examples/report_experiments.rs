//! Experiment report: the non-criterion experiments E1 and E6.
//!
//! * **E1 — space overhead of the generic representation** (paper §6:
//!   "The trade-off for this flexibility was space efficiency of the
//!   data and the cost of interpreting manipulations"). Measures triples
//!   and estimated bytes per pad object for the interned+indexed TRIM
//!   store, the naive string store, and a native-struct baseline.
//! * **E6 — extensibility cost** (paper §6: "The Mark Manager has proven
//!   readily extensible—the amount of modification to a base application
//!   is small"). Audits, per base application, the lines of code of its
//!   engine, its address codec, and the one-line module registration.
//!
//! Output feeds EXPERIMENTS.md. Run with:
//! `cargo run --example report_experiments`

use superimposed::slimstore::SlimPadDmi;
use superimposed::trim::naive::NaiveStore;

/// Build a pad with one bundle holding `n` scraps through the DMI.
fn pad_with_scraps(n: usize) -> SlimPadDmi {
    let mut dmi = SlimPadDmi::new();
    let bundle = dmi.create_bundle("Patient", (10, 10), 800, 600, );
    let pad = dmi.create_slim_pad("Rounds", Some(bundle)).unwrap();
    let _ = pad;
    for i in 0..n {
        let scrap = dmi
            .create_scrap(&format!("lab value {i}"), (20 + (i as i64 % 40) * 15, 40 + (i as i64 / 40) * 25), &format!("mark:{i}"))
            .unwrap();
        dmi.add_scrap(bundle, scrap).unwrap();
    }
    dmi
}

/// Replay the same instance triples into the naive (uninterned,
/// unindexed) store for the ablation comparison.
fn naive_copy(dmi: &SlimPadDmi) -> NaiveStore {
    let store = dmi.store();
    let mut naive = NaiveStore::new();
    for t in store.iter() {
        naive.insert(
            store.resolve(t.subject),
            store.resolve(t.property),
            store.value_text(t.object),
            t.object.is_resource(),
        );
    }
    naive
}

/// What the same pad costs as plain Rust structs (the no-flexibility
/// baseline): measured with size_of + string contents.
fn native_bytes(n: usize) -> usize {
    // A native scrap: String name (~12 chars) + (i64,i64) + String mark id.
    let scrap = 2 * std::mem::size_of::<String>()
        + std::mem::size_of::<(i64, i64)>()
        + "lab value 000".len()
        + "mark:000".len();
    let bundle = 2 * std::mem::size_of::<String>()
        + std::mem::size_of::<(i64, i64)>()
        + 2 * std::mem::size_of::<i64>()
        + std::mem::size_of::<Vec<usize>>()
        + n * std::mem::size_of::<usize>()
        + "Patient".len();
    let pad = std::mem::size_of::<String>() + "Rounds".len() + std::mem::size_of::<usize>();
    pad + bundle + n * scrap
}

fn e1_space_overhead() {
    println!("══ E1: space overhead of the generic (triple) representation ══");
    println!("{:>8} {:>9} {:>12} {:>14} {:>14} {:>14} {:>9}",
        "scraps", "triples", "triples/obj", "trim bytes", "naive bytes", "native bytes", "factor");
    for n in [10usize, 100, 1_000, 10_000] {
        let dmi = pad_with_scraps(n);
        let stats = dmi.store().stats();
        let naive = naive_copy(&dmi);
        let objects = n /* scraps */ + n /* mark handles */ + 2 /* pad + bundle */;
        let native = native_bytes(n);
        println!(
            "{:>8} {:>9} {:>12.2} {:>14} {:>14} {:>14} {:>8.1}x",
            n,
            stats.triples,
            stats.triples as f64 / objects as f64,
            stats.estimated_bytes,
            naive.estimated_bytes(),
            native,
            stats.estimated_bytes as f64 / native as f64,
        );
    }
    println!("(factor = trim bytes / native bytes; the paper accepts this cost because\n\
              \"we expect the volume of superimposed information to be a fraction of the base data\")\n");
}

fn e6_extensibility() {
    println!("══ E6: per-base-application integration cost (LoC audit) ══");
    // Count non-blank, non-comment lines of each engine source file.
    let crates_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/..");
    let files: &[(&str, &[&str])] = &[
        ("spreadsheet", &[
            "basedocs/src/spreadsheet/app.rs",
        ]),
        ("xml", &["basedocs/src/xmldoc.rs"]),
        ("text", &["basedocs/src/textdoc.rs"]),
        ("html", &["basedocs/src/htmldoc.rs"]),
        ("pdf", &["basedocs/src/pdfdoc.rs"]),
        ("slides", &["basedocs/src/slides.rs"]),
    ];
    println!("{:>12} {:>16} {:>22}", "base type", "adapter LoC", "registration LoC");
    for (kind, paths) in files {
        let mut loc = 0usize;
        for rel in *paths {
            let path = format!("{crates_dir}/{rel}");
            let Ok(text) = std::fs::read_to_string(&path) else {
                println!("{kind:>12}  (source not found at {path})");
                continue;
            };
            // Count only the non-test portion: integration cost is the
            // engine-facing adapter, not its test suite.
            let code = text.split("#[cfg(test)]").next().unwrap_or(&text);
            loc += code
                .lines()
                .filter(|l| {
                    let t = l.trim();
                    !t.is_empty() && !t.starts_with("//")
                })
                .count();
        }
        // Registration is always exactly one line per module (see
        // superimposed::SuperimposedSystem::new).
        println!("{kind:>12} {loc:>16} {:>22}", 1);
    }
    println!("(the Mark interface to the rest of the system is fixed: adding a base type\n\
              touches only its adapter file plus one registration line — paper §6's\n\
              \"the amount of modification to a base application is small\")\n");
}

fn main() {
    e1_space_overhead();
    e6_extensibility();
}
