//! Regenerates paper Figure 4: the 'Rounds' pad.
//!
//! "The largest window, titled 'Rounds', is the visual representation of
//! a SLIMPad object. In this case, the user has created a bundle, titled
//! 'John Smith'. The bundle contains three scraps and another bundle.
//! The top two scraps represent medications for the patient. The mark
//! associated with each scrap refers to the corresponding medication in
//! a complete medication list (here, a Microsoft Excel document). …
//! The 'Electrolyte' bundle contains a set of scraps that come from a
//! lab report, represented in an XML document." (paper §3)
//!
//! This example builds exactly that state against the simulated Excel
//! and XML applications, exercises both mark types, detects the gridlet,
//! demonstrates the resident's-worksheet template (Figure 2), and
//! round-trips the pad through its file format.
//!
//! Run with: `cargo run --example icu_rounds`

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::render::render_pad;
use superimposed::slimpad::templates::BundleTemplate;
use superimposed::slimpad::viewing::view_scrap;
use superimposed::{DocKind, SuperimposedSystem, ViewingStyle};

/// The complete medication list (the paper's "Microsoft Excel document").
fn medication_workbook() -> Workbook {
    let mut wb = Workbook::new("medication-list.xls");
    let sheet = wb.sheet_mut("Sheet1").unwrap();
    let rows: &[(&str, &str, &str)] = &[
        ("Drug", "Dose", "Route/Freq"),
        ("Furosemide (Lasix)", "40 mg", "IV bid"),
        ("Captopril", "12.5 mg", "PO tid"),
        ("KCl", "20 mEq", "PO bid"),
        ("Heparin", "5000 u", "SC q8h"),
        ("Famotidine", "20 mg", "IV q12h"),
    ];
    for (r, (drug, dose, freq)) in rows.iter().enumerate() {
        sheet.set_a1(&format!("A{}", r + 1), drug).unwrap();
        sheet.set_a1(&format!("B{}", r + 1), dose).unwrap();
        sheet.set_a1(&format!("C{}", r + 1), freq).unwrap();
    }
    wb
}

/// The lab report (the paper's "XML document").
const LAB_REPORT: &str = r#"<labReport patient="John Smith" drawn="06:15">
  <electrolytes>
    <na unit="mEq/L">140</na>
    <k unit="mEq/L">4.1</k>
    <cl unit="mEq/L">102</cl>
    <hco3 unit="mEq/L">26</hco3>
    <bun unit="mg/dL">18</bun>
    <cr unit="mg/dL">1.1</cr>
    <glucose unit="mg/dL">132</glucose>
  </electrolytes>
</labReport>"#;

fn main() {
    let mut sys = SuperimposedSystem::new("Rounds").expect("system boots");
    sys.excel.borrow_mut().open(medication_workbook()).unwrap();
    sys.xml.borrow_mut().open_text("lab-report.xml", LAB_REPORT).unwrap();

    // ---- the John Smith bundle with two medication scraps ------------------
    let john = sys.pad.create_bundle("John Smith", (20, 60), 640, 600, None).unwrap();
    sys.excel.borrow_mut().select("medication-list.xls", "Sheet1", "A2:C2").unwrap();
    let lasix = sys
        .pad
        .place_selection(DocKind::Spreadsheet, Some("Lasix 40 IV bid"), (40, 120), Some(john))
        .unwrap();
    sys.excel.borrow_mut().select("medication-list.xls", "Sheet1", "A3:C3").unwrap();
    let _captopril = sys
        .pad
        .place_selection(DocKind::Spreadsheet, Some("Captopril 12.5"), (40, 160), Some(john))
        .unwrap();

    // ---- the Electrolyte bundle: the gridlet of Figure 4 --------------------
    // "each number in the 'Electrolyte' bundle has a specific meaning to a
    // medical professional, which can be deduced from their arrangement
    // relative to each other" — the classic fishbone: Na | Cl over K | HCO3.
    let electro = sys.pad.create_bundle("Electrolyte", (330, 240), 260, 240, Some(john)).unwrap();
    let fishbone: &[(&str, &str, (i64, i64))] = &[
        ("/labReport/electrolytes/na", "140", (350, 300)),
        ("/labReport/electrolytes/cl", "102", (450, 300)),
        ("/labReport/electrolytes/k", "4.1", (350, 390)),
        ("/labReport/electrolytes/hco3", "26", (450, 390)),
    ];
    let mut electro_scraps = Vec::new();
    for (path, label, pos) in fishbone {
        sys.xml.borrow_mut().select_by_path("lab-report.xml", path).unwrap();
        let s = sys.pad.place_selection(DocKind::Xml, Some(label), *pos, Some(electro)).unwrap();
        electro_scraps.push(s);
    }
    // A third plain scrap on the patient bundle: the to-do item.
    sys.xml.borrow_mut().select_by_path("lab-report.xml", "/labReport/electrolytes/cr").unwrap();
    let todo = sys
        .pad
        .place_selection(DocKind::Xml, Some("recheck Cr this pm"), (40, 540), Some(john))
        .unwrap();
    sys.pad.dmi_mut().add_annotation(todo, "order placed 09:40").unwrap();

    // ---- the screenshot -----------------------------------------------------
    println!("══ Figure 4, regenerated ══");
    println!("{}", render_pad(&sys.pad).unwrap());

    // ---- mark resolution, both types ----------------------------------------
    println!("── clicking the Lasix scrap opens the medication list ──");
    println!("{}", sys.pad.activate(lasix).unwrap().display);
    println!("── double-clicking 'K 4.1' opens the lab report ──");
    println!("{}", sys.pad.activate(electro_scraps[2]).unwrap().display);

    // ---- the implicit structure ----------------------------------------------
    let grid = sys.pad.detect_gridlet(electro, 8).unwrap();
    println!("gridlet detected in 'Electrolyte': {} rows × {} columns", grid.rows.len(), grid.columns.len());
    for (i, row) in grid.rows.iter().enumerate() {
        let labels: Vec<String> =
            row.iter().map(|s| sys.pad.dmi().scrap(*s).unwrap().name).collect();
        println!("  row {}: {}", i + 1, labels.join(" | "));
    }

    // ---- viewing styles (Figure 6) --------------------------------------------
    println!("\n── enhanced base-layer viewing of the to-do scrap ──");
    println!("{}", view_scrap(&mut sys.pad, todo, ViewingStyle::EnhancedBase).unwrap());

    // ---- the resident's worksheet (Figure 2), via templates ---------------------
    let template = BundleTemplate::capture(sys.pad.dmi(), john).unwrap();
    let (jane_row, _slots) =
        template.instantiate(&mut sys.pad, "Jane Doe", (20, 700), None).unwrap();
    println!(
        "worksheet template stamped for Jane Doe: bundle {:?} with {} slot(s) awaiting marks",
        sys.pad.dmi().bundle(jane_row).unwrap().name,
        template.slot_count(),
    );

    // ---- persistence round-trip -------------------------------------------------
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let reloaded_root = sys.pad.root_bundle();
    let bundles = sys.pad.dmi().bundle(reloaded_root).unwrap().nested;
    println!(
        "\npad saved ({} bytes) and reloaded: {} top-level bundle(s), marks still live: {}",
        saved.len(),
        bundles.len(),
        sys.pad.marks().audit().iter().filter(|a| a.live).count(),
    );
    // Every reloaded mark still resolves against the live applications.
    let audit = sys.pad.marks().audit();
    let dangling: Vec<_> = audit.iter().filter(|a| !a.live).collect();
    assert!(
        dangling.iter().all(|a| {
            sys.pad.marks().get(&a.mark_id).map(|m| m.excerpt.is_empty()).unwrap_or(true)
        }) || dangling.is_empty(),
        "unexpected dangling marks: {dangling:?}"
    );
    println!("done.");
}
