//! A scripted SLIMPad session: the command-language front end.
//!
//! SLIMPad's original UI was direct manipulation; the reproducible
//! equivalent is a command script. This example replays a morning-rounds
//! session — building the pad, wiring marks, annotating, querying,
//! auditing — and prints each command's output, ending with the pad
//! "screenshot".
//!
//! Run with: `cargo run --example scripted_session`

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::commands::run_script;
use superimposed::SuperimposedSystem;

const SCRIPT: &str = r#"
# ---- build the worksheet for bed 4 ------------------------------------
bundle "Bed 4: John Smith" at 20,60 size 700x560
bundle "Electrolyte" at 340,240 size 300x240 in "Bed 4: John Smith"

# the spreadsheet selection (set by the host below) becomes a scrap
place spreadsheet "Lasix 40 IV bid" at 40,120 in "Bed 4: John Smith"
annotate "Lasix 40 IV bid" "hold if SBP<90"

place xml "K 3.4 LOW" at 360,300 in "Electrolyte"
link "K 3.4 LOW" -> "Lasix 40 IV bid"
annotate "K 3.4 LOW" "repleting per protocol"

# ---- use it ------------------------------------------------------------
find "lasix"
view "K 3.4 LOW"
audit
render
"#;

fn main() {
    let mut sys = SuperimposedSystem::new("Morning Rounds").expect("system boots");

    // Host setup: the base documents the script's `place` commands mark.
    // The spreadsheet selection is read when `place spreadsheet …` runs;
    // the xml selection when `place xml …` runs — so stage both first.
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1")
        .unwrap()
        .import_csv("Drug,Dose,Route\nFurosemide,40,IV bid\nKCl,20,PO bid\n")
        .unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2:C2").unwrap();
    sys.xml
        .borrow_mut()
        .open_text("labs.xml", "<labs drawn='06:15'><k unit='mEq/L'>3.4</k></labs>")
        .unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();

    // Replay the session.
    match run_script(&mut sys.pad, SCRIPT) {
        Ok(outputs) => {
            for (i, out) in outputs.iter().enumerate() {
                println!("[{:02}] {}", i + 1, out);
                println!("     ──");
            }
        }
        Err(e) => {
            eprintln!("script failed: {e}");
            std::process::exit(1);
        }
    }

    // The session survives persistence like any other pad.
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    println!(
        "session saved ({} bytes) and reloaded; {} marks live",
        saved.len(),
        sys.pad.marks().audit().iter().filter(|a| a.live).count()
    );
}
