//! Write-ahead-log walkthrough: open a pad session logged, commit edits
//! as O(changes) log frames instead of full-file rewrites, tear the log
//! the way a crash mid-append does, and watch recovery land on the last
//! acknowledged commit. Ends with compaction folding the log back into
//! the snapshot.
//!
//! ```text
//! cargo run --example wal_recovery
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::basedocs::SpreadsheetApp;
use superimposed::marks::AppModule;
use superimposed::slimio::StdVfs;
use superimposed::trim::StoreLog;
use superimposed::{DocKind, MarkManager, PadSession};

fn manager(excel: &Rc<RefCell<SpreadsheetApp>>) -> MarkManager {
    let mut manager = MarkManager::new();
    manager
        .register_module(Box::new(AppModule::in_context("excel", Rc::clone(excel))))
        .expect("register excel module");
    manager
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("slim-wal-recovery-demo");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("rounds.slimpad.xml");
    let wal = StoreLog::wal_path(&path);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
    let vfs = StdVfs;

    // The base layer: a spreadsheet with the medication list.
    let mut wb = Workbook::new("medications.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40 IV bid")?;
    let mut app = SpreadsheetApp::new();
    app.open(wb)?;
    let excel = Rc::new(RefCell::new(app));

    // Build the pad and switch it to logged persistence: one snapshot
    // file plus an append-only op log next to it.
    let mut pad = PadSession::new("Rounds")?;
    pad.marks_mut()
        .register_module(Box::new(AppModule::in_context("excel", Rc::clone(&excel))))?;
    pad.enable_logging(&vfs, &path)?;
    let snapshot_size = std::fs::metadata(&path)?.len();
    println!("snapshot:  {} ({snapshot_size} bytes)", path.display());

    // Two edits, two commits: each one is a single CRC-sealed frame
    // appended to the log. The snapshot is not rewritten.
    excel.borrow_mut().select("medications.xls", "Sheet1", "A1")?;
    let john = pad.create_bundle("John Smith", (10, 10), 400, 300, None)?;
    pad.place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john))?;
    pad.commit(&vfs)?;
    println!("commit 1:  log is {} bytes", pad.log().unwrap().log_bytes());

    pad.create_bundle("Mary Jones", (60, 60), 400, 300, None)?;
    pad.commit(&vfs)?;
    println!("commit 2:  log is {} bytes", pad.log().unwrap().log_bytes());
    assert_eq!(std::fs::metadata(&path)?.len(), snapshot_size, "snapshot untouched");

    // The crash: the machine dies mid-append and the second commit's
    // frame loses its tail. Recovery replays the longest CRC-valid
    // prefix and truncates the damage — the acknowledged first commit
    // survives, the torn second one is gone, nothing is half-applied.
    let bytes = std::fs::read(&wal)?;
    std::fs::write(&wal, &bytes[..bytes.len() - 7])?;
    println!("\n-- tore the last 7 bytes off {} --", wal.display());
    let (mut pad2, report) = PadSession::open_logged(&vfs, &path, manager(&excel))?;
    println!("recovery:  {report}");
    let names: Vec<String> = pad2
        .dmi()
        .bundle(pad2.root_bundle())?
        .nested
        .iter()
        .map(|&b| pad2.dmi().bundle(b).map(|v| v.name.clone()))
        .collect::<Result<_, _>>()?;
    println!("bundles:   {names:?}");
    assert_eq!(names, ["John Smith"]);

    // The recovered mark still resolves against the live spreadsheet.
    let scrap = pad2.dmi().all_scraps()[0];
    println!("activate:  {}", pad2.activate(scrap)?.display);

    // Compaction folds the log into a fresh snapshot and starts an
    // empty log generation bound to it.
    pad2.create_bundle("Mary Jones", (60, 60), 400, 300, None)?;
    pad2.commit(&vfs)?;
    pad2.compact(&vfs)?;
    println!(
        "\ncompacted: snapshot {} bytes, log {} bytes",
        std::fs::metadata(&path)?.len(),
        pad2.log().unwrap().log_bytes(),
    );
    let (pad3, report) = PadSession::open_logged(&vfs, &path, manager(&excel))?;
    println!("reopen:    {report}");
    println!("stats:     {}", pad3.stats());

    std::fs::remove_file(&path)?;
    std::fs::remove_file(&wal)?;
    Ok(())
}
