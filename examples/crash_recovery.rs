//! Crash-recovery walkthrough: save a pad atomically, damage the file
//! the way real crashes do, and watch the strict and salvage loaders
//! respond.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::{DocKind, SuperimposedSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("slim-crash-recovery-demo");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("rounds.slimpad.xml");

    // Build the Figure-4 style pad: a patient bundle with a medication
    // scrap wired into the spreadsheet.
    let mut sys = SuperimposedSystem::new("Rounds")?;
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40 IV bid")?;
    sys.excel.borrow_mut().open(wb)?;
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1")?;
    let john = sys.pad.create_bundle("John Smith", (10, 10), 400, 300, None)?;
    let scrap = sys.pad.place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john))?;
    println!("built pad:      {}", sys.pad.stats());

    // 1. Atomic, sealed save — then a clean strict reload.
    sys.pad.save(&path)?;
    let size = std::fs::metadata(&path)?.len();
    println!("saved:          {} ({size} bytes, sealed)", path.display());
    sys.reopen_pad_file(&path)?;
    println!("strict reload:  {}", sys.pad.stats());

    // 2. The crash: the tail of the file never hit the disk.
    let bytes = std::fs::read(&path)?;
    std::fs::write(&path, &bytes[..bytes.len() * 3 / 5])?;
    println!("\n-- truncated the file to 60% --");
    match sys.reopen_pad_file(&path) {
        Ok(()) => println!("strict reload:  unexpectedly succeeded"),
        Err(e) => println!("strict reload:  refused: {e}"),
    }

    // 3. Salvage: recover what remains, report what was lost.
    let report = sys.recover_pad_file(&path)?;
    println!("salvage:        {report}");
    println!("recovered pad:  {}", sys.pad.stats());
    let _ = scrap;
    for s in sys.pad.dmi().all_scraps() {
        let name = sys.pad.dmi().scrap(s)?.name;
        match sys.pad.activate(s) {
            Ok(res) => println!("  scrap {name:?} activates: {}", res.display),
            Err(e) => println!("  scrap {name:?} is degraded: {e}"),
        }
    }

    // 4. A file from the future is refused, not half-understood.
    std::fs::write(
        &path,
        r#"<?xml version="1.0"?><slimpad-file version="9"><store>x</store><marks>y</marks></slimpad-file>"#,
    )?;
    match sys.reopen_pad_file(&path) {
        Ok(()) => println!("\nversion 9 file: unexpectedly loaded"),
        Err(e) => println!("\nversion 9 file: refused: {e}"),
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
