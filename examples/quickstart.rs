//! Quickstart: the smallest end-to-end superimposed-information flow.
//!
//! 1. Boot the system (six base applications, mark modules, a pad).
//! 2. Open a document in a base application and select something.
//! 3. Place the selection on the pad — a scrap with a mark "wire".
//! 4. Double-click the scrap: the mark resolves and the base application
//!    highlights the original element.
//!
//! Run with: `cargo run --example quickstart`

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::{DocKind, SuperimposedSystem};

fn main() {
    // 1. Boot.
    let mut sys = SuperimposedSystem::new("My First Pad").expect("system boots");

    // 2. A medication list lives in the (simulated) spreadsheet.
    let mut wb = Workbook::new("medications.xls");
    let sheet = wb.sheet_mut("Sheet1").expect("default sheet");
    sheet.set_a1("A1", "Drug").unwrap();
    sheet.set_a1("B1", "Dose mg").unwrap();
    sheet.set_a1("A2", "Furosemide").unwrap();
    sheet.set_a1("B2", "40").unwrap();
    sheet.set_a1("A3", "Captopril").unwrap();
    sheet.set_a1("B3", "12.5").unwrap();
    sheet.set_a1("B5", "=SUM(B2:B3)").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();

    // The user selects the furosemide row in the spreadsheet window.
    sys.excel.borrow_mut().select("medications.xls", "Sheet1", "A2:B2").unwrap();

    // 3. …and drops it onto the pad. The mark remembers file/sheet/range
    //    (paper Figure 8); the label is the user's own.
    let scrap = sys
        .pad
        .place_selection(DocKind::Spreadsheet, Some("loop diuretic"), (40, 90), None)
        .expect("scrap placed");
    let mark_id = {
        let data = sys.pad.dmi().scrap(scrap).unwrap();
        sys.pad.dmi().mark_handle(data.marks[0]).unwrap().mark_id
    };
    println!("placed scrap {:?} wired to {mark_id}", sys.pad.dmi().scrap(scrap).unwrap().name);
    let mark = sys.pad.marks().get(&mark_id).unwrap();
    println!("  mark address : {}", mark.address);
    println!("  mark excerpt : {:?}", mark.excerpt);

    // 4. Double-click: resolve the mark in context.
    let resolution = sys.pad.activate(scrap).expect("mark resolves");
    println!("\n-- double-click resolves the mark; the base window shows --");
    println!("{}", resolution.display);

    // Bonus: the §6 "extract content" behaviour, via the in-place module.
    let in_place = sys.pad.activate_with(scrap, "spreadsheet-viewer").unwrap();
    println!("-- in-place extraction (no window switch) --\n{}\n", in_place.display);

    // The pad itself, as ASCII.
    println!("-- the pad --");
    println!("{}", superimposed::slimpad::render::render_pad(&sys.pad).unwrap());
}
