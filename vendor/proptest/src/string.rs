//! Regex-subset string generation.
//!
//! Supports the pattern subset the workspace's property tests use:
//! literal characters, escapes (`\n`, `\t`, `\r`, `\\`, `\.`, …),
//! character classes with ranges (`[a-z0-9_.-]`, `[ -~]`), alternation
//! groups (`(xls|xml|doc)`), and the quantifiers `{n}`, `{m,n}`, `?`,
//! `*`, `+` (the open-ended ones capped at 8 repetitions — generation
//! only needs *some* matching string, not the full language).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A compiled pattern usable as a [`Strategy`] for `String`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    Ok(RegexGeneratorStrategy { nodes: parse_sequence(&mut Chars::new(pattern), true)? })
}

/// Generate one string matching `pattern` (used by the `&str` strategy).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> Result<String, Error> {
    let nodes = parse_sequence(&mut Chars::new(pattern), true)?;
    let mut out = String::new();
    generate_sequence(&nodes, rng, &mut out);
    Ok(out)
}

/// Pattern-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported or malformed pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// See [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    nodes: Vec<Node>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_sequence(&self.nodes, rng, &mut out);
        out
    }
}

#[derive(Debug, Clone)]
struct Node {
    atom: Atom,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternation of sequences.
    Group(Vec<Vec<Node>>),
}

struct Chars {
    chars: Vec<char>,
    pos: usize,
}

impl Chars {
    fn new(s: &str) -> Self {
        Chars { chars: s.chars().collect(), pos: 0 }
    }
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_sequence(input: &mut Chars, top_level: bool) -> Result<Vec<Node>, Error> {
    let mut nodes = Vec::new();
    while let Some(c) = input.peek() {
        if !top_level && (c == '|' || c == ')') {
            break;
        }
        input.next();
        let atom = match c {
            '[' => parse_class(input)?,
            '(' => parse_group(input)?,
            '\\' => Atom::Literal(unescape(
                input.next().ok_or_else(|| Error("dangling backslash".into()))?,
            )),
            '{' | '}' | ']' | '*' | '+' | '?' => {
                return Err(Error(format!("unexpected {c:?}")));
            }
            '.' => Atom::Class(vec![(' ', '~')]),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(input)?;
        nodes.push(Node { atom, min, max });
    }
    Ok(nodes)
}

fn parse_quantifier(input: &mut Chars) -> Result<(usize, usize), Error> {
    match input.peek() {
        Some('{') => {
            input.next();
            let mut min_text = String::new();
            let mut max_text = None;
            loop {
                match input.next() {
                    Some('}') => break,
                    Some(',') => max_text = Some(String::new()),
                    Some(d) if d.is_ascii_digit() => match &mut max_text {
                        Some(t) => t.push(d),
                        None => min_text.push(d),
                    },
                    _ => return Err(Error("malformed {m,n} quantifier".into())),
                }
            }
            let min: usize =
                min_text.parse().map_err(|_| Error("malformed {m,n} quantifier".into()))?;
            let max = match max_text {
                None => min,
                Some(t) => t.parse().map_err(|_| Error("malformed {m,n} quantifier".into()))?,
            };
            if max < min {
                return Err(Error("quantifier max below min".into()));
            }
            Ok((min, max))
        }
        Some('?') => {
            input.next();
            Ok((0, 1))
        }
        Some('*') => {
            input.next();
            Ok((0, 8))
        }
        Some('+') => {
            input.next();
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

fn parse_class(input: &mut Chars) -> Result<Atom, Error> {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = input.next().ok_or_else(|| Error("unterminated character class".into()))?;
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                if ranges.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                return Ok(Atom::Class(ranges));
            }
            '-' if pending.is_some() && input.peek() != Some(']') => {
                let start = pending.take().expect("checked is_some");
                let mut end = input.next().ok_or_else(|| Error("unterminated range".into()))?;
                if end == '\\' {
                    end = unescape(
                        input.next().ok_or_else(|| Error("dangling backslash".into()))?,
                    );
                }
                if end < start {
                    return Err(Error(format!("inverted range {start:?}-{end:?}")));
                }
                ranges.push((start, end));
            }
            '\\' => {
                if let Some(p) = pending.replace(unescape(
                    input.next().ok_or_else(|| Error("dangling backslash".into()))?,
                )) {
                    ranges.push((p, p));
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    ranges.push((p, p));
                }
            }
        }
    }
}

fn parse_group(input: &mut Chars) -> Result<Atom, Error> {
    let mut alternatives = Vec::new();
    loop {
        alternatives.push(parse_sequence(input, false)?);
        match input.next() {
            Some('|') => continue,
            Some(')') => return Ok(Atom::Group(alternatives)),
            _ => return Err(Error("unterminated group".into())),
        }
    }
}

fn generate_sequence(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
    for node in nodes {
        let count = node.min + rng.below((node.max - node.min + 1) as u64) as usize;
        for _ in 0..count {
            match &node.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 =
                        ranges.iter().map(|&(a, b)| (b as u64) - (a as u64) + 1).sum();
                    let mut pick = rng.below(total);
                    for &(a, b) in ranges {
                        let size = (b as u64) - (a as u64) + 1;
                        if pick < size {
                            // Skip the surrogate gap if a range spans it.
                            let code = a as u32 + pick as u32;
                            out.push(char::from_u32(code).unwrap_or(a));
                            break;
                        }
                        pick -= size;
                    }
                }
                Atom::Group(alternatives) => {
                    let idx = rng.below(alternatives.len() as u64) as usize;
                    generate_sequence(&alternatives[idx], rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        let mut rng = TestRng::from_seed(seed);
        generate_from_pattern(pattern, &mut rng).unwrap()
    }

    #[test]
    fn classes_ranges_and_quantifiers() {
        for seed in 0..200 {
            let s = gen("[a-z][a-z0-9_.-]{0,6}", seed);
            assert!((1..=7).contains(&s.chars().count()), "{s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || "_.-".contains(c)));
        }
    }

    #[test]
    fn printable_ascii_range() {
        for seed in 0..200 {
            let s = gen("[ -~]{0,10}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn groups_and_escapes() {
        for seed in 0..100 {
            let s = gen("[a-z]{1,3}\\.(xls|xml|doc)", seed);
            let (stem, ext) = s.split_once('.').unwrap();
            assert!((1..=3).contains(&stem.len()), "{s:?}");
            assert!(["xls", "xml", "doc"].contains(&ext), "{s:?}");
        }
    }

    #[test]
    fn escaped_newline_in_class() {
        let any_newline = (0..500).any(|seed| gen("[ -~\\n]{0,20}", seed).contains('\n'));
        assert!(any_newline);
    }

    #[test]
    fn malformed_patterns_are_errors() {
        for bad in ["[a-", "(a|b", "a{2,", "[]", "a{3,1}", "\\"] {
            assert!(string_regex(bad).is_err(), "{bad:?} should fail");
        }
    }
}
