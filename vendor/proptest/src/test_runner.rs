//! Deterministic case runner state: configuration, the per-case RNG, and
//! the generate → check → shrink driver shared by `proptest!` and external
//! harnesses such as `slimcheck`.

use crate::strategy::Strategy;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (xoshiro256** seeded from the test
/// name and case index via FNV-1a + splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// RNG from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- quiet panic capture ---------------------------------------------------

// Shrinking re-runs the property against many candidates, most of which are
// *expected* to panic; the default hook would spam stderr with a backtrace
// per candidate. The hook is process-global, so installs are refcounted
// behind a mutex: the silent hook goes in on the 0→1 transition and the
// original comes back on 1→0, which keeps parallel test threads safe.
struct HookGuard;

static HOOK_STATE: Mutex<HookDepth> = Mutex::new(HookDepth { depth: 0, prev: None });

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct HookDepth {
    depth: usize,
    prev: Option<PanicHook>,
}

impl HookGuard {
    fn install() -> HookGuard {
        let mut state = HOOK_STATE.lock().unwrap();
        if state.depth == 0 {
            state.prev = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        state.depth += 1;
        HookGuard
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let mut state = HOOK_STATE.lock().unwrap();
        state.depth -= 1;
        if state.depth == 0 {
            if let Some(prev) = state.prev.take() {
                std::panic::set_hook(prev);
            }
        }
    }
}

/// Run `f` with the silent panic hook installed (refcounted, thread-safe).
/// For external harnesses (slimcheck) that drive `catch_unwind` loops of
/// their own and don't want a backtrace per expected failure.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let _guard = HookGuard::install();
    f()
}

/// Extract a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of one [`run_property`] sweep.
pub enum PropertyResult<V> {
    /// Every case passed.
    Pass,
    /// A case failed; carries the minimal failing value after shrinking.
    Fail(PropertyFailure<V>),
}

/// Details of a failing, shrunk property case.
pub struct PropertyFailure<V> {
    /// Case index (within the sweep) that first failed.
    pub case: u32,
    /// The originally generated failing value.
    pub original: V,
    /// The minimal failing value after shrinking.
    pub minimal: V,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
    /// Panic message from re-running the *minimal* value.
    pub message: String,
}

/// Greedily minimize `initial`, which must satisfy `still_fails`. At each
/// step the strategy proposes candidates and the first still-failing one is
/// adopted; stops when no candidate fails or after `max_attempts` predicate
/// evaluations. Returns the minimal value, accepted steps, and attempts used.
pub fn shrink_to_minimal<S, F>(
    strategy: &S,
    initial: S::Value,
    mut still_fails: F,
    max_attempts: u32,
) -> (S::Value, u32, u32)
where
    S: Strategy,
    F: FnMut(&S::Value) -> bool,
{
    let mut current = initial;
    let mut steps = 0u32;
    let mut attempts = 0u32;
    loop {
        let mut candidates = Vec::new();
        strategy.shrink(&current, &mut candidates);
        let mut advanced = false;
        for candidate in candidates {
            if attempts >= max_attempts {
                return (current, steps, attempts);
            }
            attempts += 1;
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, steps, attempts);
        }
    }
}

/// Generate-and-check driver with shrinking: runs `config.cases` cases of
/// `check` over values from `strategy`, seeding each case from
/// `(test_name, case)` exactly as the historical macro did (so value
/// streams are unchanged). On the first panic the failing value is
/// minimized via [`shrink_to_minimal`] and returned.
pub fn run_property<S, F>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    check: F,
) -> PropertyResult<S::Value>
where
    S: Strategy,
    F: Fn(&S::Value),
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        let value = strategy.generate(&mut rng);
        let _quiet = HookGuard::install();
        if catch_unwind(AssertUnwindSafe(|| check(&value))).is_ok() {
            continue;
        }
        let fails = |v: &S::Value| catch_unwind(AssertUnwindSafe(|| check(v))).is_err();
        let (minimal, shrink_steps, _) =
            shrink_to_minimal(strategy, value.clone(), fails, 4096);
        let message = match catch_unwind(AssertUnwindSafe(|| check(&minimal))) {
            Err(payload) => panic_message(&*payload),
            Ok(()) => "<failure did not reproduce on minimal value>".to_string(),
        };
        return PropertyResult::Fail(PropertyFailure {
            case,
            original: value,
            minimal,
            shrink_steps,
            message,
        });
    }
    PropertyResult::Pass
}
