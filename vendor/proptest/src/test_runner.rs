//! Deterministic case runner state: configuration and the per-case RNG.

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (xoshiro256** seeded from the test
/// name and case index via FNV-1a + splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// RNG from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
