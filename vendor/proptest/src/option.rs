//! `Option<T>` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>`: `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }

    fn shrink(&self, value: &Option<S::Value>, out: &mut Vec<Option<S::Value>>) {
        if let Some(v) = value {
            out.push(None);
            let mut candidates = Vec::new();
            self.inner.shrink(v, &mut candidates);
            out.extend(candidates.into_iter().map(Some));
        }
    }
}
