//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of values of one type. This stand-in is generation-only:
/// no shrinking, no rejection bookkeeping beyond [`Strategy::prop_filter`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `f`, retrying generation. Panics after 1000
    /// consecutive rejections (the filter is too restrictive).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Recursive structures: `recurse` receives a strategy for the levels
    /// below and returns the strategy for one level up. The tree bottoms
    /// out at `self` after at most `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            strategy = Union::new(vec![leaf.clone(), recurse(strategy).boxed()]).boxed();
        }
        strategy
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.whence);
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options`; must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---- primitive strategies --------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot generate from empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals are regex-subset strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

// ---- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for primitives (see [`Arbitrary`]).
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
