//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of values of one type, plus a shrinker: on failure the
/// runner asks the strategy for simpler variants of the failing value
/// ([`Strategy::shrink`]) and keeps any that still fail, so reported
/// counterexamples are minimal instead of full-length.
///
/// Shrink candidates are *suggestions*: the runner re-checks every one
/// against the property, so a strategy may propose values it could not
/// itself have generated without harming soundness.
pub trait Strategy {
    /// The generated value type. `Clone + Debug` so the runner can
    /// re-run shrink candidates and print minimal counterexamples.
    type Value: Clone + std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Push simpler variants of `value` onto `out`, most aggressive
    /// first. The default is no shrinking (the value is already atomic
    /// or the strategy cannot invert its own transformation).
    fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
        let _ = (value, out);
    }

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `f`, retrying generation. Panics after 1000
    /// consecutive rejections (the filter is too restrictive).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Recursive structures: `recurse` receives a strategy for the levels
    /// below and returns the strategy for one level up. The tree bottoms
    /// out at `self` after at most `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            strategy = Union::new(vec![leaf.clone(), recurse(strategy).boxed()]).boxed();
        }
        strategy
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
    fn shrink(&self, value: &T, out: &mut Vec<T>) {
        self.0.shrink(value, out);
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Clone + std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
    // No shrink: the mapping cannot be inverted, so the failing output
    // cannot be traced back to an input to simplify.
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.whence);
    }
    fn shrink(&self, value: &S::Value, out: &mut Vec<S::Value>) {
        let mut candidates = Vec::new();
        self.inner.shrink(value, &mut candidates);
        out.extend(candidates.into_iter().filter(|c| (self.f)(c)));
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options`; must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T: Clone + std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
    fn shrink(&self, value: &T, out: &mut Vec<T>) {
        // The generating member is unknown, so ask every member; the
        // runner re-checks candidates, so foreign suggestions are safe.
        for option in &self.0 {
            option.shrink(value, out);
        }
    }
}

// ---- primitive strategies --------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                let v = *value;
                // Guard: unions may hand us a foreign value below start.
                if v <= self.start {
                    return;
                }
                out.push(self.start);
                let mid = self.start + (v - self.start) / 2;
                if mid != self.start && mid != v {
                    out.push(mid);
                }
                let dec = v - 1;
                if dec != self.start && dec != mid {
                    out.push(dec);
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot generate from empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64, out: &mut Vec<f64>) {
        let v = *value;
        // NaN-safe: only shrink values strictly above the range start.
        if v.partial_cmp(&self.start) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        out.push(self.start);
        let mid = self.start + (v - self.start) / 2.0;
        if mid != self.start && mid != v {
            out.push(mid);
        }
    }
}

/// String literals are regex-subset strategies, as in real proptest.
/// No shrinking: a simpler string is not guaranteed to stay inside the
/// pattern, and the pattern's minimum shape is not recoverable here.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            #[allow(non_snake_case)]
            fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
                let ($($name,)+) = self;
                $(
                    {
                        let mut candidates = Vec::new();
                        $name.shrink(&value.$idx, &mut candidates);
                        for c in candidates {
                            let mut next = value.clone();
                            next.$idx = c;
                            out.push(next);
                        }
                    }
                )+
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9, K => 10);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9, K => 10, L => 11);

// ---- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for primitives (see [`Arbitrary`]).
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool, out: &mut Vec<bool>) {
        if *value {
            out.push(false);
        }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, value: &$t, out: &mut Vec<$t>) {
                let v = *value;
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
