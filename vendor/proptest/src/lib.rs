//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! deterministic, generation-only property-testing harness that covers the
//! strategy combinators its test suites actually use: integer/float range
//! strategies, tuples, `Just`, `any::<bool>()`, `prop_map`, `prop_filter`,
//! `prop_oneof!`, `prop_recursive`, `collection::vec`, `option::of`, and a
//! regex-subset string generator. Failing cases are reported with their
//! deterministic seed; there is no shrinking — cases are generated from a
//! seed derived from the test name and case index, so every failure is
//! reproducible by rerunning the test.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define deterministic property tests.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0i64..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -5i64..5), flip in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            let _ = flip;
        }

        #[test]
        fn vec_and_oneof(xs in crate::collection::vec(prop_oneof![Just(1u32), 2u32..9], 0..12)) {
            prop_assert!(xs.len() < 12);
            prop_assert!(xs.iter().all(|&x| (1..9).contains(&x)));
        }

        #[test]
        fn mapped_and_filtered(x in (0i32..100).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 199);
        }

        #[test]
        fn regex_strings(s in "[a-c]{2,4}", opt in crate::option::of(Just(7u8))) {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            if let Some(v) = opt { prop_assert_eq!(v, 7); }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u32..1000, 0..10);
        let mut r1 = crate::test_runner::TestRng::for_case("det", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("det", 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
