//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! deterministic, generation-only property-testing harness that covers the
//! strategy combinators its test suites actually use: integer/float range
//! strategies, tuples, `Just`, `any::<bool>()`, `prop_map`, `prop_filter`,
//! `prop_oneof!`, `prop_recursive`, `collection::vec`, `option::of`, and a
//! regex-subset string generator. Cases are generated from a seed derived
//! from the test name and case index, so every failure is reproducible by
//! rerunning the test; on failure the input is shrunk via
//! [`strategy::Strategy::shrink`] and the minimal counterexample is
//! reported alongside the original.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define deterministic property tests.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0i64..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // A single tuple strategy preserves the historical RNG
                // stream: tuple generate draws components in declaration
                // order from the same rng the old per-pattern loop used.
                let __strategy = ($($strategy,)+);
                let result = $crate::test_runner::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &__strategy,
                    |__value| {
                        let ($($pat,)+) = __value.clone();
                        $body
                    },
                );
                if let $crate::test_runner::PropertyResult::Fail(failure) = result {
                    panic!(
                        "property {} failed at case {} ({} shrink steps)\n  minimal input: {:?}\n  original input: {:?}\n  message: {}",
                        stringify!($name),
                        failure.case,
                        failure.shrink_steps,
                        failure.minimal,
                        failure.original,
                        failure.message,
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -5i64..5), flip in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            let _ = flip;
        }

        #[test]
        fn vec_and_oneof(xs in crate::collection::vec(prop_oneof![Just(1u32), 2u32..9], 0..12)) {
            prop_assert!(xs.len() < 12);
            prop_assert!(xs.iter().all(|&x| (1..9).contains(&x)));
        }

        #[test]
        fn mapped_and_filtered(x in (0i32..100).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 199);
        }

        #[test]
        fn regex_strings(s in "[a-c]{2,4}", opt in crate::option::of(Just(7u8))) {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            if let Some(v) = opt { prop_assert_eq!(v, 7); }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u32..1000, 0..10);
        let mut r1 = crate::test_runner::TestRng::for_case("det", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("det", 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn vec_failures_shrink_to_minimal() {
        use crate::test_runner::{run_property, PropertyResult, ProptestConfig};
        // Property fails whenever the vec contains a value >= 500. The
        // minimal counterexample is the single-element vec [500].
        let strat = crate::collection::vec(0u32..1000, 0..30);
        let result = run_property(
            "shrink::vec_failures_shrink_to_minimal",
            &ProptestConfig::with_cases(64),
            &strat,
            |xs: &Vec<u32>| assert!(xs.iter().all(|&x| x < 500), "big element"),
        );
        match result {
            PropertyResult::Fail(f) => {
                assert_eq!(f.minimal, vec![500], "expected fully shrunk input");
                assert!(f.shrink_steps > 0);
                assert!(f.message.contains("big element"));
            }
            PropertyResult::Pass => panic!("property should have failed"),
        }
    }

    #[test]
    fn tuple_and_range_shrink_toward_start() {
        use crate::strategy::Strategy;
        let strat = (5u32..100, 0i64..10);
        let mut out = Vec::new();
        strat.shrink(&(80, 7), &mut out);
        assert!(out.contains(&(5, 7)), "first slot shrinks to range start");
        assert!(out.contains(&(80, 0)), "second slot shrinks to range start");
        // Foreign values below the range start must not underflow.
        let range = 5u32..100;
        let mut none = Vec::new();
        range.shrink(&2, &mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn shrink_respects_vec_min_size() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u32..10, 2..8);
        let mut out = Vec::new();
        strat.generate(&mut crate::test_runner::TestRng::for_case("minsize", 0));
        strat.shrink(&vec![9, 8, 7, 6, 5], &mut out);
        assert!(out.iter().all(|v| v.len() >= 2), "candidates respect min len");
    }
}
