//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "cannot generate from empty size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>, out: &mut Vec<Vec<S::Value>>) {
        let min = self.size.start;
        let len = value.len();

        // 1. Length reductions, most aggressive first: empty (or minimal),
        //    then drop the back/front half. These collapse long failing
        //    op-sequences in O(log n) accepted candidates.
        if len > min {
            out.push(value[..min].to_vec());
            let half = min + (len - min) / 2;
            if half > min && half < len {
                out.push(value[..half].to_vec());
                out.push(value[len - half..].to_vec());
            }
            // 2. Single-element removals (each position), so the minimal
            //    sequence keeps only load-bearing operations. Bounded to
            //    keep the candidate set linear in sequence length.
            if len <= 64 {
                for i in 0..len {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
        }

        // 3. Element-wise shrinks at fixed length, so surviving operations
        //    simplify (smaller indices, simpler variants). Cap candidates
        //    per slot to bound the total frontier.
        for (i, item) in value.iter().enumerate() {
            let mut candidates = Vec::new();
            self.element.shrink(item, &mut candidates);
            for c in candidates.into_iter().take(3) {
                let mut next = value.clone();
                next[i] = c;
                out.push(next);
            }
        }
    }
}
