//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small, deterministic subset of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, [`Rng::gen_bool`], and [`Rng::gen`] for a few
//! primitive types. The generator is xoshiro256** seeded via splitmix64 —
//! high-quality, fast, and reproducible across runs, which is exactly
//! what the benches and tests need (they never require cryptographic
//! randomness).

use std::ops::Range;

/// Core random-number source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "got {hits}");
    }
}
