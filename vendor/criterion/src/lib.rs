//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock timing loop instead of
//! criterion's statistical machinery. Numbers are indicative, not
//! rigorous; the benches stay runnable and their workloads stay compiled
//! and type-checked offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Throughput annotation (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to get a stable-ish mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up once, then scale the iteration count so the measured
        // block takes a few milliseconds.
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / warm.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Declare a sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        report(&self.name, &id.text, &b, self.throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b, input);
        report(&self.name, &id.text, &b, self.throughput);
        self
    }

    /// Finish the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{group}/{id}: no measurement (b.iter was not called)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 / (per_iter / 1e9))
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!(" ({:.0} B/s)", n as f64 / (per_iter / 1e9))
        }
        None => String::new(),
    };
    println!("{group}/{id}: {:.1} ns/iter{rate}", per_iter);
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        report("bench", &id.text, &b, None);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(21) * 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("top", |b| b.iter(|| black_box(1)));
    }
}
