//! System-wide search: one query over every base application *and* the
//! superimposed layer.
//!
//! The architecture makes this almost free: every base hit is expressed
//! as a typed [`MarkAddress`], so a search result is directly
//! mark-able — select it, wire it, drop it on the pad. Superimposed hits
//! (scrap labels, annotations) come back as scrap handles.

use crate::SuperimposedSystem;
use marks::{MarkAddress, MarkId, RebindOutcome};
use slimstore::ScrapHandle;
use std::fmt;

/// One search hit in a base document: a mark-able address plus the
/// matching content.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseHit {
    pub address: MarkAddress,
    /// The matched element's content (what a result list shows).
    pub excerpt: String,
}

/// All hits for one query.
#[derive(Debug, Clone, Default)]
pub struct SearchResults {
    /// Hits in base documents, grouped in kind order
    /// (spreadsheet, xml, text, html, pdf, slides).
    pub base: Vec<BaseHit>,
    /// Scraps whose label matches.
    pub scraps: Vec<ScrapHandle>,
    /// Scraps with a matching annotation.
    pub annotated: Vec<ScrapHandle>,
}

impl SearchResults {
    /// Total number of hits across layers.
    pub fn len(&self) -> usize {
        self.base.len() + self.scraps.len() + self.annotated.len()
    }

    /// True if nothing matched anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a repair pass did across all quarantined marks.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// One entry per quarantined mark, in mark-id order.
    pub actions: Vec<RebindOutcome>,
}

impl RepairReport {
    /// Marks successfully re-bound (and released from quarantine).
    pub fn rebound(&self) -> usize {
        self.actions.iter().filter(|a| matches!(a, RebindOutcome::Rebound { .. })).count()
    }

    /// Marks still quarantined (no match, or ambiguous matches).
    pub fn unrepaired(&self) -> usize {
        self.actions.len() - self.rebound()
    }
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mark(s) examined, {} re-bound", self.actions.len(), self.rebound())?;
        for action in &self.actions {
            match action {
                RebindOutcome::Rebound { mark_id, to } => {
                    write!(f, "\n  {mark_id}: re-bound to {to}")?
                }
                RebindOutcome::NoMatch { mark_id } => {
                    write!(f, "\n  {mark_id}: excerpt not found anywhere; still quarantined")?
                }
                RebindOutcome::Ambiguous { mark_id, candidates } => write!(
                    f,
                    "\n  {mark_id}: excerpt found in {candidates} places; \
                     refusing to guess, still quarantined"
                )?,
            }
        }
        Ok(())
    }
}

impl SuperimposedSystem {
    /// Search every open base document and the pad's superimposed data
    /// for `needle` (case-insensitive).
    pub fn search_all(&self, needle: &str) -> SearchResults {
        let mut base: Vec<BaseHit> = Vec::new();

        for addr in self.excel.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.excel.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Spreadsheet(addr), excerpt });
        }
        for addr in self.xml.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.xml.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Xml(addr), excerpt });
        }
        for addr in self.text.borrow().find_all(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.text.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Text(addr), excerpt });
        }
        for addr in self.html.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.html.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Html(addr), excerpt });
        }
        for addr in self.pdf.borrow().find_all(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.pdf.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Pdf(addr), excerpt });
        }
        for addr in self.slides.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.slides.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Slides(addr), excerpt });
        }

        SearchResults {
            base,
            scraps: self.pad.dmi().find_scraps(needle),
            annotated: self.pad.dmi().find_annotated(needle),
        }
    }

    /// Turn a base hit into a scrap on the pad: create the mark at the
    /// hit's address and place it — search-to-bundle in one step.
    pub fn place_hit(
        &mut self,
        hit: &BaseHit,
        label: Option<&str>,
        pos: (i64, i64),
        bundle: Option<slimstore::BundleHandle>,
    ) -> Result<ScrapHandle, crate::PadError> {
        let mark_id = self.pad.marks_mut().create_mark_at(hit.address.clone())?;
        self.pad.place_mark(&mark_id, label, pos, bundle)
    }

    /// Repair pass over quarantined marks: search every base document
    /// for each mark's saved excerpt and re-bind to the *unique* address
    /// whose current content equals it exactly. Zero matches leave the
    /// mark quarantined; multiple matches refuse to guess.
    pub fn repair_quarantined(&mut self) -> Result<RepairReport, crate::PadError> {
        let ids: Vec<MarkId> = self.pad.resolver().quarantined_marks();
        let mut report = RepairReport::default();
        for id in ids {
            let excerpt = self.pad.marks().get(&id)?.excerpt.clone();
            let candidates: Vec<MarkAddress> = if excerpt.is_empty() {
                Vec::new() // nothing to search for; try_rebind refuses anyway
            } else {
                self.search_all(&excerpt).base.into_iter().map(|h| h.address).collect()
            };
            let (resolver, marks) = self.pad.resolver_parts();
            report.actions.push(resolver.try_rebind(marks, &id, &candidates)?);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use crate::{DocKind, SuperimposedSystem};
    use basedocs::pdfdoc::PdfDocument;
    use basedocs::slides::SlideDeck;
    use basedocs::spreadsheet::Workbook;
    use basedocs::textdoc::TextDocument;

    fn loaded_system() -> SuperimposedSystem {
        let sys = SuperimposedSystem::new("Search").unwrap();
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "furosemide 40").unwrap();
        wb.sheet_mut("Sheet1").unwrap().set_a1("A2", "heparin").unwrap();
        sys.excel.borrow_mut().open(wb).unwrap();
        sys.xml
            .borrow_mut()
            .open_text("labs.xml", "<labs><note>gave furosemide at 06:00</note></labs>")
            .unwrap();
        sys.text
            .borrow_mut()
            .open(TextDocument::from_text("note.doc", "Plan: continue furosemide drip."))
            .unwrap();
        sys.html
            .borrow_mut()
            .load("guide.html", "<html><body><p>Furosemide is first-line.</p></body></html>")
            .unwrap();
        sys.pdf
            .borrow_mut()
            .open(PdfDocument::paginate("g.pdf", "Loop diuretics: furosemide, torsemide.", 50, 5))
            .unwrap();
        let mut deck = SlideDeck::new("d.ppt");
        deck.add_bullet_slide("Diuretics", &["furosemide dosing review"]);
        sys.slides.borrow_mut().open(deck).unwrap();
        sys
    }

    #[test]
    fn search_finds_hits_in_all_six_base_kinds() {
        let sys = loaded_system();
        let results = sys.search_all("furosemide");
        let kinds: Vec<DocKind> = results.base.iter().map(|h| h.address.kind()).collect();
        for kind in DocKind::all() {
            assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
        }
        assert!(results.base.iter().all(|h| h.excerpt.to_lowercase().contains("furosemide")));
    }

    #[test]
    fn search_is_case_insensitive_and_misses_cleanly() {
        let sys = loaded_system();
        assert!(!sys.search_all("FUROSEMIDE").is_empty());
        assert!(sys.search_all("digoxin").is_empty());
    }

    #[test]
    fn superimposed_layer_is_searched_too() {
        let mut sys = loaded_system();
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap();
        let scrap = sys
            .pad
            .place_selection(DocKind::Spreadsheet, Some("anticoagulation"), (10, 30), None)
            .unwrap();
        sys.pad.dmi_mut().add_annotation(scrap, "check platelets for HIT").unwrap();
        let results = sys.search_all("anticoagulation");
        assert_eq!(results.scraps, vec![scrap]);
        let results = sys.search_all("platelets");
        assert_eq!(results.annotated, vec![scrap]);
    }

    #[test]
    fn hits_are_markable_and_placeable() {
        let mut sys = loaded_system();
        let results = sys.search_all("furosemide");
        let hit = results.base[0].clone();
        let scrap = sys.place_hit(&hit, None, (40, 90), None).unwrap();
        // The scrap's wire resolves back to the hit content.
        let content = sys.pad.extract(scrap).unwrap();
        assert!(content.to_lowercase().contains("furosemide"), "{content}");
    }

    #[test]
    fn repair_pass_rebinds_unique_excerpt_match() {
        use marks::{BreakerConfig, MockClock, ResilientResolver, RetryPolicy};
        use std::rc::Rc;
        let mut sys = loaded_system();
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap(); // "heparin"
        let scrap = sys.pad.place_selection(DocKind::Spreadsheet, None, (0, 0), None).unwrap();
        sys.pad.set_resolver(ResilientResolver::with_config(
            Rc::new(MockClock::new()),
            RetryPolicy::default(),
            BreakerConfig::default(),
            1, // quarantine on the first dangle
        ));
        sys.excel.borrow_mut().close("meds.xls").unwrap();
        assert!(sys.pad.activate_resilient(scrap).unwrap().is_degraded());
        assert_eq!(sys.pad.resolver().quarantined_marks().len(), 1);

        // The content resurfaces elsewhere; the repair pass finds it by
        // searching for the saved excerpt.
        let mut wb = Workbook::new("archive.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("B7", "heparin").unwrap();
        sys.excel.borrow_mut().open(wb).unwrap();
        let report = sys.repair_quarantined().unwrap();
        assert_eq!(report.rebound(), 1, "{report}");
        assert_eq!(report.unrepaired(), 0);
        assert!(report.to_string().contains("archive.xls"), "{report}");

        let resolved = sys.pad.activate_resilient(scrap).unwrap();
        assert!(!resolved.is_degraded(), "rebound mark resolves live again");
        assert!(resolved.resolution.display.contains("heparin"));
    }

    #[test]
    fn repair_pass_refuses_ambiguous_excerpt_matches() {
        use marks::{BreakerConfig, MockClock, ResilientResolver, RetryPolicy};
        use std::rc::Rc;
        let mut sys = loaded_system();
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap();
        let scrap = sys.pad.place_selection(DocKind::Spreadsheet, None, (0, 0), None).unwrap();
        sys.pad.set_resolver(ResilientResolver::with_config(
            Rc::new(MockClock::new()),
            RetryPolicy::default(),
            BreakerConfig::default(),
            1,
        ));
        sys.excel.borrow_mut().close("meds.xls").unwrap();
        assert!(sys.pad.activate_resilient(scrap).unwrap().is_degraded());

        // Two cells now hold the excerpt: re-binding would be a guess.
        let mut wb = Workbook::new("archive.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("B7", "heparin").unwrap();
        wb.sheet_mut("Sheet1").unwrap().set_a1("C9", "heparin").unwrap();
        sys.excel.borrow_mut().open(wb).unwrap();
        let report = sys.repair_quarantined().unwrap();
        assert_eq!(report.rebound(), 0, "{report}");
        assert_eq!(report.unrepaired(), 1);
        assert!(sys.pad.resolver().quarantined_marks().len() == 1, "still quarantined");
        assert!(report.to_string().contains("refusing to guess"), "{report}");
    }

    #[test]
    fn results_count_both_layers() {
        let mut sys = loaded_system();
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        sys.pad
            .place_selection(DocKind::Spreadsheet, Some("furosemide 40"), (0, 0), None)
            .unwrap();
        let results = sys.search_all("furosemide");
        assert_eq!(results.len(), results.base.len() + 1);
    }
}
