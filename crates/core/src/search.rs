//! System-wide search: one query over every base application *and* the
//! superimposed layer.
//!
//! The architecture makes this almost free: every base hit is expressed
//! as a typed [`MarkAddress`], so a search result is directly
//! mark-able — select it, wire it, drop it on the pad. Superimposed hits
//! (scrap labels, annotations) come back as scrap handles.

use crate::SuperimposedSystem;
use marks::MarkAddress;
use slimstore::ScrapHandle;

/// One search hit in a base document: a mark-able address plus the
/// matching content.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseHit {
    pub address: MarkAddress,
    /// The matched element's content (what a result list shows).
    pub excerpt: String,
}

/// All hits for one query.
#[derive(Debug, Clone, Default)]
pub struct SearchResults {
    /// Hits in base documents, grouped in kind order
    /// (spreadsheet, xml, text, html, pdf, slides).
    pub base: Vec<BaseHit>,
    /// Scraps whose label matches.
    pub scraps: Vec<ScrapHandle>,
    /// Scraps with a matching annotation.
    pub annotated: Vec<ScrapHandle>,
}

impl SearchResults {
    /// Total number of hits across layers.
    pub fn len(&self) -> usize {
        self.base.len() + self.scraps.len() + self.annotated.len()
    }

    /// True if nothing matched anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SuperimposedSystem {
    /// Search every open base document and the pad's superimposed data
    /// for `needle` (case-insensitive).
    pub fn search_all(&self, needle: &str) -> SearchResults {
        let mut base: Vec<BaseHit> = Vec::new();

        for addr in self.excel.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.excel.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Spreadsheet(addr), excerpt });
        }
        for addr in self.xml.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.xml.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Xml(addr), excerpt });
        }
        for addr in self.text.borrow().find_all(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.text.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Text(addr), excerpt });
        }
        for addr in self.html.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.html.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Html(addr), excerpt });
        }
        for addr in self.pdf.borrow().find_all(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.pdf.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Pdf(addr), excerpt });
        }
        for addr in self.slides.borrow().find_text(needle) {
            let excerpt = {
                use basedocs::BaseApplication;
                self.slides.borrow().extract_content(&addr).unwrap_or_default()
            };
            base.push(BaseHit { address: MarkAddress::Slides(addr), excerpt });
        }

        SearchResults {
            base,
            scraps: self.pad.dmi().find_scraps(needle),
            annotated: self.pad.dmi().find_annotated(needle),
        }
    }

    /// Turn a base hit into a scrap on the pad: create the mark at the
    /// hit's address and place it — search-to-bundle in one step.
    pub fn place_hit(
        &mut self,
        hit: &BaseHit,
        label: Option<&str>,
        pos: (i64, i64),
        bundle: Option<slimstore::BundleHandle>,
    ) -> Result<ScrapHandle, crate::PadError> {
        let mark_id = self.pad.marks_mut().create_mark_at(hit.address.clone())?;
        self.pad.place_mark(&mark_id, label, pos, bundle)
    }
}

#[cfg(test)]
mod tests {
    use crate::{DocKind, SuperimposedSystem};
    use basedocs::pdfdoc::PdfDocument;
    use basedocs::slides::SlideDeck;
    use basedocs::spreadsheet::Workbook;
    use basedocs::textdoc::TextDocument;

    fn loaded_system() -> SuperimposedSystem {
        let sys = SuperimposedSystem::new("Search").unwrap();
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "furosemide 40").unwrap();
        wb.sheet_mut("Sheet1").unwrap().set_a1("A2", "heparin").unwrap();
        sys.excel.borrow_mut().open(wb).unwrap();
        sys.xml
            .borrow_mut()
            .open_text("labs.xml", "<labs><note>gave furosemide at 06:00</note></labs>")
            .unwrap();
        sys.text
            .borrow_mut()
            .open(TextDocument::from_text("note.doc", "Plan: continue furosemide drip."))
            .unwrap();
        sys.html
            .borrow_mut()
            .load("guide.html", "<html><body><p>Furosemide is first-line.</p></body></html>")
            .unwrap();
        sys.pdf
            .borrow_mut()
            .open(PdfDocument::paginate("g.pdf", "Loop diuretics: furosemide, torsemide.", 50, 5))
            .unwrap();
        let mut deck = SlideDeck::new("d.ppt");
        deck.add_bullet_slide("Diuretics", &["furosemide dosing review"]);
        sys.slides.borrow_mut().open(deck).unwrap();
        sys
    }

    #[test]
    fn search_finds_hits_in_all_six_base_kinds() {
        let sys = loaded_system();
        let results = sys.search_all("furosemide");
        let kinds: Vec<DocKind> = results.base.iter().map(|h| h.address.kind()).collect();
        for kind in DocKind::all() {
            assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
        }
        assert!(results.base.iter().all(|h| h.excerpt.to_lowercase().contains("furosemide")));
    }

    #[test]
    fn search_is_case_insensitive_and_misses_cleanly() {
        let sys = loaded_system();
        assert!(!sys.search_all("FUROSEMIDE").is_empty());
        assert!(sys.search_all("digoxin").is_empty());
    }

    #[test]
    fn superimposed_layer_is_searched_too() {
        let mut sys = loaded_system();
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap();
        let scrap = sys
            .pad
            .place_selection(DocKind::Spreadsheet, Some("anticoagulation"), (10, 30), None)
            .unwrap();
        sys.pad.dmi_mut().add_annotation(scrap, "check platelets for HIT").unwrap();
        let results = sys.search_all("anticoagulation");
        assert_eq!(results.scraps, vec![scrap]);
        let results = sys.search_all("platelets");
        assert_eq!(results.annotated, vec![scrap]);
    }

    #[test]
    fn hits_are_markable_and_placeable() {
        let mut sys = loaded_system();
        let results = sys.search_all("furosemide");
        let hit = results.base[0].clone();
        let scrap = sys.place_hit(&hit, None, (40, 90), None).unwrap();
        // The scrap's wire resolves back to the hit content.
        let content = sys.pad.extract(scrap).unwrap();
        assert!(content.to_lowercase().contains("furosemide"), "{content}");
    }

    #[test]
    fn results_count_both_layers() {
        let mut sys = loaded_system();
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        sys.pad
            .place_selection(DocKind::Spreadsheet, Some("furosemide 40"), (0, 0), None)
            .unwrap();
        let results = sys.search_all("furosemide");
        assert_eq!(results.len(), results.base.len() + 1);
    }
}
