//! `superimposed` — the facade crate for the SLIM architecture.
//!
//! This crate wires together the full system of the paper's Figure 5:
//!
//! ```text
//!        Superimposed Application (slimpad)
//!        /                        \
//!   Superimposed Info Mgmt     Mark Management (marks)
//!   (slimstore + metamodel          |
//!        + trim + xmlkit)      Base Applications (basedocs)
//! ```
//!
//! [`SuperimposedSystem`] is the one-call bootstrap: all six simulated
//! base applications, an in-context and an in-place mark module for each
//! (twelve modules total), and a live [`PadSession`]. Examples and
//! integration tests build on it; library users who want finer control
//! can assemble the pieces from the re-exported crates directly.
//!
//! # Quickstart
//!
//! ```
//! use superimposed::{DocKind, SuperimposedSystem};
//! use superimposed::basedocs::spreadsheet::Workbook;
//!
//! // Boot the system and open a medication list in the spreadsheet app.
//! let mut sys = SuperimposedSystem::new("Rounds").unwrap();
//! let mut wb = Workbook::new("meds.xls");
//! wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40 IV bid").unwrap();
//! sys.excel.borrow_mut().open(wb).unwrap();
//!
//! // Select a cell in the base app, then place it on the pad.
//! sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
//! let scrap = sys.pad.place_selection(DocKind::Spreadsheet, None, (40, 90), None).unwrap();
//!
//! // Double-click: the mark resolves and the base app highlights the cell.
//! let res = sys.pad.activate(scrap).unwrap();
//! assert!(res.display.contains("[Lasix 40 IV bid]"));
//! ```

pub mod search;
pub use search::{BaseHit, SearchResults};

pub use basedocs;
pub use marks;
pub use metamodel;
pub use slimio;
pub use slimpad;
pub use slimstore;
pub use trim;
pub use xmlkit;

pub use basedocs::{BaseApplication, DocKind};
pub use marks::{MarkManager, ResolutionStyle};
pub use slimpad::{PadError, PadSession, ViewingStyle};
pub use slimstore::{GenericDmi, SlimPadDmi};

use basedocs::{HtmlApp, PdfApp, SlidesApp, SpreadsheetApp, TextApp, XmlApp};
use marks::AppModule;
use std::cell::RefCell;
use std::rc::Rc;

/// The fully wired system: six base applications, twelve mark modules,
/// one pad.
pub struct SuperimposedSystem {
    /// The Excel stand-in.
    pub excel: Rc<RefCell<SpreadsheetApp>>,
    /// The XML viewer.
    pub xml: Rc<RefCell<XmlApp>>,
    /// The Word stand-in.
    pub text: Rc<RefCell<TextApp>>,
    /// The web browser.
    pub html: Rc<RefCell<HtmlApp>>,
    /// The PDF reader.
    pub pdf: Rc<RefCell<PdfApp>>,
    /// The PowerPoint stand-in.
    pub slides: Rc<RefCell<SlidesApp>>,
    /// The live SLIMPad (owns the Mark Manager).
    pub pad: PadSession,
}

impl SuperimposedSystem {
    /// Boot the system with an empty pad named `pad_name`.
    ///
    /// Each base application gets two modules, mirroring the paper's
    /// Moniker discussion: `"<kind>"` resolves in context (drives the
    /// application), `"<kind>-viewer"` resolves in place (extracts
    /// content without disturbing it).
    pub fn new(pad_name: &str) -> Result<Self, PadError> {
        let excel = Rc::new(RefCell::new(SpreadsheetApp::new()));
        let xml = Rc::new(RefCell::new(XmlApp::new()));
        let text = Rc::new(RefCell::new(TextApp::new()));
        let html = Rc::new(RefCell::new(HtmlApp::new()));
        let pdf = Rc::new(RefCell::new(PdfApp::new()));
        let slides = Rc::new(RefCell::new(SlidesApp::new()));
        let mut pad = PadSession::new(pad_name)?;
        register_all(pad.marks_mut(), &excel, &xml, &text, &html, &pdf, &slides)?;
        Ok(SuperimposedSystem { excel, xml, text, html, pdf, slides, pad })
    }

    /// A fresh [`MarkManager`] wired to the *same* live applications —
    /// what [`PadSession::load_xml`] needs to reopen a saved pad against
    /// this system.
    pub fn fresh_manager(&self) -> Result<MarkManager, PadError> {
        let mut manager = MarkManager::new();
        register_all(
            &mut manager,
            &self.excel,
            &self.xml,
            &self.text,
            &self.html,
            &self.pdf,
            &self.slides,
        )?;
        Ok(manager)
    }

    /// Replace the current pad by one loaded from combined XML, resolved
    /// against this system's base applications.
    pub fn reopen_pad(&mut self, xml_text: &str) -> Result<(), PadError> {
        let manager = self.fresh_manager()?;
        self.pad = PadSession::load_xml(xml_text, manager)?;
        Ok(())
    }

    /// Replace the current pad by one loaded from a pad file (strict:
    /// refuses a file that fails its integrity check).
    pub fn reopen_pad_file(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), PadError> {
        let manager = self.fresh_manager()?;
        self.pad = PadSession::load(path, manager)?;
        Ok(())
    }

    /// Replace the current pad by whatever can be salvaged from a
    /// damaged pad file, returning the recovery report. The report's
    /// accounting (salvaged/lost/notes) is what a status bar would show
    /// after a crash recovery.
    pub fn recover_pad_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<slimio::Recovered<()>, PadError> {
        let manager = self.fresh_manager()?;
        let recovered = PadSession::load_salvage(path, manager)?;
        Ok(recovered.map(|pad| {
            self.pad = pad;
        }))
    }
}

fn register_all(
    manager: &mut MarkManager,
    excel: &Rc<RefCell<SpreadsheetApp>>,
    xml: &Rc<RefCell<XmlApp>>,
    text: &Rc<RefCell<TextApp>>,
    html: &Rc<RefCell<HtmlApp>>,
    pdf: &Rc<RefCell<PdfApp>>,
    slides: &Rc<RefCell<SlidesApp>>,
) -> Result<(), PadError> {
    manager.register_module(Box::new(AppModule::in_context("spreadsheet", Rc::clone(excel))))?;
    manager
        .register_module(Box::new(AppModule::in_place("spreadsheet-viewer", Rc::clone(excel))))?;
    manager.register_module(Box::new(AppModule::in_context("xml", Rc::clone(xml))))?;
    manager.register_module(Box::new(AppModule::in_place("xml-viewer", Rc::clone(xml))))?;
    manager.register_module(Box::new(AppModule::in_context("text", Rc::clone(text))))?;
    manager.register_module(Box::new(AppModule::in_place("text-viewer", Rc::clone(text))))?;
    manager.register_module(Box::new(AppModule::in_context("html", Rc::clone(html))))?;
    manager.register_module(Box::new(AppModule::in_place("html-viewer", Rc::clone(html))))?;
    manager.register_module(Box::new(AppModule::in_context("pdf", Rc::clone(pdf))))?;
    manager.register_module(Box::new(AppModule::in_place("pdf-viewer", Rc::clone(pdf))))?;
    manager.register_module(Box::new(AppModule::in_context("slides", Rc::clone(slides))))?;
    manager.register_module(Box::new(AppModule::in_place("slides-viewer", Rc::clone(slides))))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_boots_with_all_six_kinds() {
        let sys = SuperimposedSystem::new("Rounds").unwrap();
        assert_eq!(sys.pad.marks().supported_kinds(), DocKind::all().to_vec());
    }

    #[test]
    fn fresh_manager_matches_pad_manager() {
        let sys = SuperimposedSystem::new("Rounds").unwrap();
        let manager = sys.fresh_manager().unwrap();
        assert_eq!(manager.supported_kinds(), sys.pad.marks().supported_kinds());
    }

    #[test]
    fn reopen_pad_roundtrips() {
        let mut sys = SuperimposedSystem::new("Rounds").unwrap();
        sys.pad.create_bundle("John Smith", (10, 10), 400, 300, None).unwrap();
        let saved = sys.pad.save_xml();
        sys.pad.create_bundle("Transient", (500, 10), 100, 100, None).unwrap();
        sys.reopen_pad(&saved).unwrap();
        let root = sys.pad.root_bundle();
        let nested = sys.pad.dmi().bundle(root).unwrap().nested;
        assert_eq!(nested.len(), 1, "the transient bundle is gone");
        assert_eq!(sys.pad.dmi().bundle(nested[0]).unwrap().name, "John Smith");
    }
}
