//! slimgen — the hospital-scale workload generator.
//!
//! The paper's motivating deployment is clinicians superimposing marks
//! over *thousands* of heterogeneous charts; the hand-written scenarios
//! elsewhere in this repository are tens of marks. This crate closes
//! that gap with three seeded, fully deterministic building blocks:
//!
//! * [`corpus`] — synthesize a hospital-scale corpus: thousands of base
//!   documents across all six base-application kinds, hundreds of
//!   thousands of marks with realistic skew (hot documents, clustered
//!   excerpt targets), and a pad world with deep bundle nesting.
//! * [`trace`] — generate and drive replayable traffic: mixed
//!   read/write/resolve/undo/commit operation streams through
//!   [`PadSession`](superimposed::slimpad::PadSession) against the
//!   WAL-logged store, with a running outcome digest and a count oracle.
//! * [`soak`] — the stress/soak harness: drive a trace against a
//!   generated corpus with invariant checkpoints (metamodel conformance
//!   plus the count oracle) and a mid-run crash/recovery through the
//!   fault-injecting VFS.
//! * [`chaos`] — the concurrent-service chaos soak: N interleaved
//!   sessions of trace traffic through `slimserve` with injected
//!   panics, I/O faults, clock stalls, and a mid-run crash,
//!   differentially checked against a serialized single-session model.
//! * [`chaos_pad`] — the same discipline one layer up: pad-level
//!   sessions (marks, excerpts, undo, repair) through
//!   `slimserve::PadService` with a base-layer fault storm on top of
//!   the full menu, verdict = live pad digest == serialized replay of
//!   acked pad ops == post-crash on-disk state.
//!
//! Everything is a pure function of `(profile, seed)`: the same pair
//! reproduces the same corpus XML byte for byte and the same trace
//! digest, which is what lets the soak suite, the macro-bench reporter,
//! and slimcheck's seed corpora share one replayable workload. Replay a
//! report's seed with `cargo run -p slimgen -- --profile quick --seed
//! 0x…`.

pub mod chaos;
pub mod chaos_pad;
pub mod corpus;
pub mod seed_ops;
pub mod soak;
pub mod trace;

/// Workload size presets. `Quick` is the CI profile the acceptance
/// numbers are stated at (≥ 1,000 documents, ≥ 100,000 marks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Seconds-fast: unit tests and the `cargo test` soak.
    Smoke,
    /// The hospital-scale CI profile: ≥ 1,000 docs, ≥ 100,000 marks.
    Quick,
    /// Several times `Quick`, for manual stress runs.
    Full,
}

impl Profile {
    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "smoke" => Some(Profile::Smoke),
            "quick" => Some(Profile::Quick),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    /// Base documents generated per kind (six kinds).
    pub fn docs_per_kind(self) -> usize {
        match self {
            Profile::Smoke => 4,
            Profile::Quick => 170,
            Profile::Full => 500,
        }
    }

    /// Total marks created over the corpus.
    pub fn marks(self) -> usize {
        match self {
            Profile::Smoke => 600,
            Profile::Quick => 100_500,
            Profile::Full => 300_000,
        }
    }

    /// Bundles created in the pad world (beyond the root).
    pub fn bundles(self) -> usize {
        match self {
            Profile::Smoke => 24,
            Profile::Quick => 1_200,
            Profile::Full => 4_000,
        }
    }

    /// Scraps placed in the pad world.
    pub fn scraps(self) -> usize {
        match self {
            Profile::Smoke => 80,
            Profile::Quick => 4_000,
            Profile::Full => 12_000,
        }
    }

    /// Operations in a generated traffic trace.
    pub fn trace_ops(self) -> usize {
        match self {
            Profile::Smoke => 300,
            Profile::Quick => 1_500,
            Profile::Full => 6_000,
        }
    }
}

/// FNV-1a 64-bit — the digest all determinism claims are stated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(pub u64);

impl Digest {
    /// The FNV offset basis.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Fold bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a u64 (little-endian) into the digest.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.update(b"ab");
        let mut b = Digest::new();
        b.update(b"ba");
        assert_ne!(a, b);
        let mut c = Digest::new();
        c.update(b"a");
        c.update(b"b");
        let mut d = Digest::new();
        d.update(b"ab");
        assert_eq!(c, d, "digest folds a stream, not messages");
    }

    #[test]
    fn quick_profile_meets_the_acceptance_floor() {
        assert!(Profile::Quick.docs_per_kind() * 6 >= 1_000);
        assert!(Profile::Quick.marks() >= 100_000);
    }
}
