//! The stress/soak harness: drive a generated trace against a generated
//! corpus with invariant checkpoints and a mid-run crash/recovery.
//!
//! Every `checkpoint_every` operations the harness runs two oracles:
//!
//! * **conformance** — [`SlimPadDmi::check`] validates the whole store
//!   against the Bundle/Scrap metamodel (the same check slimcheck's
//!   model layers apply);
//! * **counts** — the trace driver's mirror of live bundles and scraps
//!   must equal the store's ([`Driver::counts_match`]).
//!
//! With `crash: true` the harness injects a halting append failure at
//! ~60% of the trace, drops the session, reopens the log with
//! [`PadSession::open_logged`], and verifies the recovered state is the
//! last acknowledged commit before finishing the remaining operations —
//! the crash path of PR 5's write-ahead log under hospital-scale data.
//!
//! [`SlimPadDmi::check`]: superimposed::slimstore::SlimPadDmi::check
//! [`PadSession::open_logged`]: superimposed::slimpad::PadSession::open_logged
//! [`Driver::counts_match`]: crate::trace::Driver::counts_match

use std::path::Path;

use superimposed::slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
use superimposed::slimpad::PadSession;

use crate::corpus::{self, CorpusStats};
use crate::trace::{self, Driver, Mix};
use crate::{Digest, Profile};

/// What to run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    pub profile: Profile,
    pub seed: u64,
    pub mix: Mix,
    /// Oracle cadence in operations.
    pub checkpoint_every: usize,
    /// Inject a crash at ~60% of the trace and recover from the log.
    pub crash: bool,
}

impl SoakConfig {
    /// The defaults the CI soak job runs: mixed traffic, checkpoints
    /// every 100 ops, crash/recovery on.
    pub fn new(profile: Profile, seed: u64) -> SoakConfig {
        SoakConfig { profile, seed, mix: Mix::Mixed, checkpoint_every: 100, crash: true }
    }
}

/// What happened.
#[derive(Debug, Clone)]
pub struct SoakReport {
    pub stats: CorpusStats,
    /// Digest of all generated base-document content.
    pub input_digest: Digest,
    /// Digest of every observable trace outcome.
    pub outcome_digest: Digest,
    /// Operations applied (crash-interrupted ops are not counted).
    pub ops: usize,
    /// Oracle checkpoints evaluated.
    pub checkpoints: usize,
    /// Checkpoints where an oracle disagreed with the store. Must be 0.
    pub divergences: Vec<String>,
    /// Whether the mid-run crash was injected and recovered.
    pub crash_recovered: bool,
}

impl SoakReport {
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

const PAD_PATH: &str = "soak.pad";

/// Run a soak: generate corpus and trace from `config.seed`, drive the
/// trace with checkpointed oracles (and a crash in the middle), report.
pub fn run(config: &SoakConfig) -> SoakReport {
    let mut corpus = corpus::generate(config.profile, config.seed);
    let path = Path::new(PAD_PATH);
    let mut vfs = MemVfs::new();
    corpus
        .system
        .pad
        .enable_logging(&vfs, path)
        .expect("snapshot a fresh corpus to the mem vfs");

    let ops = trace::generate(config.seed, config.profile.trace_ops(), config.mix);
    let mut driver = Driver::new(&corpus.system);
    let crash_at = if config.crash { Some(ops.len() * 3 / 5) } else { None };

    let mut report = SoakReport {
        stats: corpus.stats,
        input_digest: corpus.input_digest,
        outcome_digest: Digest::new(),
        ops: 0,
        checkpoints: 0,
        divergences: Vec::new(),
        crash_recovered: false,
    };

    for (i, op) in ops.iter().enumerate() {
        if Some(i) == crash_at {
            vfs = crash_and_recover(&mut corpus, &mut driver, vfs, path, &mut report);
        }
        driver.apply(&mut corpus.system, &corpus.mark_ids, &vfs, op);
        report.ops += 1;
        if (i + 1) % config.checkpoint_every.max(1) == 0 {
            checkpoint(&corpus, &driver, i + 1, &mut report);
        }
    }

    // Final commit, then one last full check.
    corpus.system.pad.commit(&vfs).expect("final commit");
    checkpoint(&corpus, &driver, report.ops, &mut report);
    report.outcome_digest = driver.digest;
    report
}

fn checkpoint(corpus: &corpus::Corpus, driver: &Driver, at: usize, report: &mut SoakReport) {
    report.checkpoints += 1;
    let conformance = corpus.system.pad.dmi().check();
    if !conformance.is_conformant() {
        report
            .divergences
            .push(format!("op {at}: store violates the Bundle/Scrap metamodel: {conformance:?}"));
    }
    if !driver.counts_match(&corpus.system) {
        report.divergences.push(format!(
            "op {at}: count model mismatch: model {}b/{}s, store {}b/{}s",
            driver.bundles.len(),
            driver.scraps.len(),
            corpus.system.pad.dmi().bundles().len(),
            corpus.system.pad.dmi().all_scraps().len(),
        ));
    }
}

/// Commit what we have, then crash the *next* commit mid-append (the
/// frame never lands), reopen the log, and verify the recovered store
/// is exactly the acknowledged state.
fn crash_and_recover(
    corpus: &mut corpus::Corpus,
    driver: &mut Driver,
    vfs: MemVfs,
    path: &Path,
    report: &mut SoakReport,
) -> MemVfs {
    // Ack a commit so the crash has a well-defined state to return to,
    // then arm the fault: the next append (the crash commit's frame)
    // never lands.
    corpus.system.pad.commit(&vfs).expect("ack the pre-crash state");
    let acked_bundles = corpus.system.pad.dmi().bundles().len();
    let acked_scraps = corpus.system.pad.dmi().all_scraps().len();

    let faulty = FaultVfs::new(
        vfs,
        FaultConfig::new(FaultOp::Append, FaultMode::Fail, 0, 0).halting(),
    );

    corpus
        .system
        .pad
        .create_bundle("doomed by crash", (1, 1), 10, 10, None)
        .expect("pre-crash mutation");
    let crashed = corpus.system.pad.commit(&faulty);
    assert!(crashed.is_err(), "commit must fail when the append faults");
    assert!(faulty.fault_fired(), "the injected fault must be the failure cause");

    // "Reboot": discard the session, reopen from what's on disk.
    let vfs = faulty.into_inner();
    let manager = corpus.system.fresh_manager().expect("rebuild mark modules");
    let (session, _log_report) =
        PadSession::open_logged(&vfs, path, manager).expect("recover from the log");
    corpus.system.pad = session;

    let got_bundles = corpus.system.pad.dmi().bundles().len();
    let got_scraps = corpus.system.pad.dmi().all_scraps().len();
    if (got_bundles, got_scraps) != (acked_bundles, acked_scraps) {
        report.divergences.push(format!(
            "recovery: expected acked {acked_bundles}b/{acked_scraps}s, \
             recovered {got_bundles}b/{got_scraps}s"
        ));
    }
    if !corpus.system.pad.dmi().check().is_conformant() {
        report.divergences.push("recovery: recovered store violates the metamodel".into());
    }

    driver.resync(&corpus.system);
    report.crash_recovered = true;
    vfs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_is_clean_without_crash() {
        let mut config = SoakConfig::new(Profile::Smoke, 11);
        config.crash = false;
        config.checkpoint_every = 50;
        let report = run(&config);
        assert!(report.passed(), "divergences: {:?}", report.divergences);
        assert_eq!(report.ops, Profile::Smoke.trace_ops());
        assert!(!report.crash_recovered);
    }
}
