//! Corpus synthesis: thousands of base documents across all six kinds,
//! hundreds of thousands of marks, and a pad world — all from one seed.
//!
//! ## Skew model
//!
//! Real chart traffic is nothing like uniform, so neither is ours:
//!
//! * **Hot documents** — a mark picks its document with a cubed-uniform
//!   draw (`(u³ · n)`), so the first few documents of every kind absorb
//!   most of the marks, a power-law-ish head with a long tail.
//! * **Clustered targets** — every document pre-selects a few *hot
//!   anchors* (a vitals row, a bookmark, a slide); 70% of its marks land
//!   on a hot anchor with small jitter, the rest anywhere valid.
//! * **Deep nesting** — new bundles parent into recently created bundles
//!   far more often than into the root, growing chains like a clinician
//!   filing patients → problems → evidence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use superimposed::basedocs::pdfdoc::PdfDocument;
use superimposed::basedocs::slides::SlideDeck;
use superimposed::basedocs::spreadsheet::gen::{flowsheet, FlowsheetSpec};
use superimposed::basedocs::spreadsheet::{CellRef, Range, SpreadsheetAddress};
use superimposed::basedocs::textdoc::{TextAddress, TextDocument, TextTarget};
use superimposed::basedocs::htmldoc::{HtmlAddress, HtmlTarget};
use superimposed::basedocs::pdfdoc::PdfAddress;
use superimposed::basedocs::xmldoc::XmlAddress;
use superimposed::basedocs::Span;
use superimposed::marks::MarkAddress;
use superimposed::slimstore::{BundleHandle, ScrapHandle};
use superimposed::xmlkit::XPath;
use superimposed::SuperimposedSystem;

use crate::{Digest, Profile};

/// Mark-worthy coordinates of one generated document, enough to draw a
/// valid in-bounds address without consulting the live application.
#[derive(Debug, Clone)]
pub enum DocTargets {
    Sheet {
        file: String,
        sheet: String,
        /// Per-vital column ranges over the data rows.
        columns: Vec<Range>,
        /// Computed summary cells (IFS-family / union / intersection).
        computed: Vec<CellRef>,
    },
    Xml {
        file: String,
        /// Element names addressable as `/labReport/<name>`.
        elems: Vec<String>,
    },
    Text {
        file: String,
        /// `(paragraph index, paragraph length)`.
        paragraphs: Vec<usize>,
        bookmarks: Vec<String>,
    },
    Html {
        url: String,
        anchors: Vec<String>,
    },
    Pdf {
        file: String,
        /// Line lengths per page: `lines[page][line]`.
        lines: Vec<Vec<usize>>,
    },
    Slides {
        file: String,
        /// `(slide index, shape ids)`.
        slides: Vec<Vec<String>>,
    },
}

/// One generated document plus its hot anchors (indices into the
/// document's target space; meaning depends on the kind).
#[derive(Debug, Clone)]
pub struct Doc {
    pub targets: DocTargets,
    hot: Vec<usize>,
}

/// Corpus-level counts for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    pub docs: usize,
    pub marks: usize,
    pub bundles: usize,
    pub scraps: usize,
}

/// A generated corpus: the live system, every mark id, the pad world
/// handles, and the digest of all generated document content.
pub struct Corpus {
    pub system: SuperimposedSystem,
    pub docs: Vec<Doc>,
    pub mark_ids: Vec<String>,
    pub bundles: Vec<BundleHandle>,
    pub scraps: Vec<ScrapHandle>,
    /// Digest folded over every string fed into the base applications —
    /// two runs with the same `(profile, seed)` must agree on it.
    pub input_digest: Digest,
    pub stats: CorpusStats,
}

impl Corpus {
    /// The full serialized pad (store + marks) — the byte-identical
    /// artifact of the determinism guarantee.
    pub fn corpus_xml(&self) -> String {
        self.system.pad.save_xml()
    }
}

/// Cubed-uniform index: heavy head, long tail.
fn skewed_index(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    ((u * u * u) * n as f64) as usize % n.max(1)
}

/// Generate the corpus for `(profile, seed)`.
pub fn generate(profile: Profile, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x005e_3dc0_4b0c_0de5_u64);
    let mut digest = Digest::new();
    let mut system = SuperimposedSystem::new("slimgen hospital").expect("boot system");
    let per_kind = profile.docs_per_kind();

    let mut docs = Vec::with_capacity(per_kind * 6);
    build_spreadsheets(&mut system, &mut rng, &mut digest, per_kind, &mut docs);
    build_xml(&mut system, &mut rng, &mut digest, per_kind, &mut docs);
    build_text(&mut system, &mut rng, &mut digest, per_kind, &mut docs);
    build_html(&mut system, &mut rng, &mut digest, per_kind, &mut docs);
    build_pdf(&mut system, &mut rng, &mut digest, per_kind, &mut docs);
    build_slides(&mut system, &mut rng, &mut digest, per_kind, &mut docs);

    // ---- marks: skewed over documents, clustered within ------------------
    let mut mark_ids = Vec::with_capacity(profile.marks());
    for _ in 0..profile.marks() {
        let doc = &docs[skewed_index(&mut rng, docs.len())];
        let address = random_address(doc, &mut rng);
        let id = system
            .pad
            .marks_mut()
            .create_mark_at(address)
            .expect("generated addresses are in bounds");
        mark_ids.push(id);
    }

    // ---- pad world: deep nesting, hot marks on scraps --------------------
    let mut bundles = Vec::with_capacity(profile.bundles());
    for i in 0..profile.bundles() {
        // 20% file under the root; otherwise under a recent bundle, which
        // grows chains instead of a flat fan.
        let parent = if bundles.is_empty() || rng.gen_bool(0.2) {
            None
        } else {
            let back = 1 + rng.gen_range(0..bundles.len().min(8));
            Some(bundles[bundles.len() - back])
        };
        let pos = (rng.gen_range(0..1200i64), rng.gen_range(0..900i64));
        let b = system
            .pad
            .create_bundle(&format!("bundle {i}"), pos, 400, 300, parent)
            .expect("bundle creation");
        bundles.push(b);
    }
    let mut scraps = Vec::with_capacity(profile.scraps());
    for i in 0..profile.scraps() {
        let mark = &mark_ids[skewed_index(&mut rng, mark_ids.len())];
        let bundle = bundles[rng.gen_range(0..bundles.len())];
        let pos = (rng.gen_range(0..380i64), rng.gen_range(0..280i64));
        let s = system
            .pad
            .place_mark(mark, Some(&format!("scrap {i}")), pos, Some(bundle))
            .expect("scrap placement");
        scraps.push(s);
    }

    let stats = CorpusStats {
        docs: docs.len(),
        marks: mark_ids.len(),
        bundles: bundles.len(),
        scraps: scraps.len(),
    };
    Corpus { system, docs, mark_ids, bundles, scraps, input_digest: digest, stats }
}

// ---- per-kind builders ----------------------------------------------------

fn pick_hot(rng: &mut StdRng, space: usize) -> Vec<usize> {
    let k = 1 + rng.gen_range(0..3usize.min(space.max(1)));
    (0..k).map(|_| rng.gen_range(0..space.max(1))).collect()
}

fn build_spreadsheets(
    system: &mut SuperimposedSystem,
    rng: &mut StdRng,
    digest: &mut Digest,
    n: usize,
    docs: &mut Vec<Doc>,
) {
    for i in 0..n {
        let spec = FlowsheetSpec {
            file_name: format!("flowsheet-{i:04}.xls"),
            patient: format!("Bed {}: patient {i}", i % 40),
            hours: 24,
            seed: rng.gen(),
        };
        let sheet_rows: u32 = spec.hours as u32;
        let f = flowsheet(&spec);
        digest.update(spec.file_name.as_bytes());
        digest.update_u64(spec.seed);
        let targets = DocTargets::Sheet {
            file: spec.file_name.clone(),
            sheet: f.sheet.clone(),
            columns: f.vital_columns.iter().map(|(_, r)| *r).collect(),
            computed: f.computed_cells.iter().map(|(_, c)| *c).collect(),
        };
        system.excel.borrow_mut().open(f.workbook).expect("open workbook");
        docs.push(Doc { targets, hot: pick_hot(rng, sheet_rows as usize) });
    }
}

fn build_xml(
    system: &mut SuperimposedSystem,
    rng: &mut StdRng,
    digest: &mut Digest,
    n: usize,
    docs: &mut Vec<Doc>,
) {
    const PANELS: [&str; 12] = [
        "sodium", "potassium", "chloride", "bicarb", "bun", "creatinine", "glucose", "calcium",
        "wbc", "hgb", "platelets", "lactate",
    ];
    for i in 0..n {
        let file = format!("labs-{i:04}.xml");
        let mut body = String::from("<labReport>");
        for name in PANELS {
            body.push_str(&format!("<{name}>{}</{name}>", rng.gen_range(1..500)));
        }
        body.push_str("</labReport>");
        digest.update(file.as_bytes());
        digest.update(body.as_bytes());
        system.xml.borrow_mut().open_text(&file, &body).expect("open xml");
        docs.push(Doc {
            targets: DocTargets::Xml {
                file,
                elems: PANELS.iter().map(|s| s.to_string()).collect(),
            },
            hot: pick_hot(rng, PANELS.len()),
        });
    }
}

fn build_text(
    system: &mut SuperimposedSystem,
    rng: &mut StdRng,
    digest: &mut Digest,
    n: usize,
    docs: &mut Vec<Doc>,
) {
    const BOOKMARKS: [&str; 3] = ["hpi", "assessment", "plan"];
    for i in 0..n {
        let file = format!("note-{i:04}.doc");
        let paras: Vec<String> = (0..16)
            .map(|p| format!("Progress note {i} paragraph {p}: stable overnight, case {}.",
                rng.gen_range(0..10_000)))
            .collect();
        let text = paras.join("\n\n");
        digest.update(file.as_bytes());
        digest.update(text.as_bytes());
        let mut doc = TextDocument::from_text(&file, &text);
        for (b, name) in BOOKMARKS.iter().enumerate() {
            doc.set_bookmark(*name, b * 5, Span::new(0, 13)).expect("bookmark in bounds");
        }
        let paragraphs = paras.iter().map(|p| p.len()).collect();
        system.text.borrow_mut().open(doc).expect("open note");
        docs.push(Doc {
            targets: DocTargets::Text {
                file,
                paragraphs,
                bookmarks: BOOKMARKS.iter().map(|s| s.to_string()).collect(),
            },
            hot: pick_hot(rng, 16),
        });
    }
}

fn build_html(
    system: &mut SuperimposedSystem,
    rng: &mut StdRng,
    digest: &mut Digest,
    n: usize,
    docs: &mut Vec<Doc>,
) {
    for i in 0..n {
        let url = format!("https://guidelines.example/page-{i:04}.html");
        let mut body = String::from("<html><body>");
        let anchors: Vec<String> = (0..12).map(|a| format!("sec{a}")).collect();
        for a in &anchors {
            body.push_str(&format!(
                "<p id='{a}'>Guideline {i} section {a}, revision {}.</p>",
                rng.gen_range(0..100)
            ));
        }
        body.push_str("</body></html>");
        digest.update(url.as_bytes());
        digest.update(body.as_bytes());
        system.html.borrow_mut().load(&url, &body).expect("load html");
        docs.push(Doc {
            targets: DocTargets::Html { url, anchors },
            hot: pick_hot(rng, 12),
        });
    }
}

fn build_pdf(
    system: &mut SuperimposedSystem,
    rng: &mut StdRng,
    digest: &mut Digest,
    n: usize,
    docs: &mut Vec<Doc>,
) {
    for i in 0..n {
        let file = format!("protocol-{i:04}.pdf");
        let prose: String = (0..40)
            .map(|s| format!("Protocol {i} step {s} dose {} mg as directed. ", rng.gen_range(1..500)))
            .collect();
        digest.update(file.as_bytes());
        digest.update(prose.as_bytes());
        let doc = PdfDocument::paginate(&file, &prose, 60, 24);
        let lines: Vec<Vec<usize>> =
            doc.pages().iter().map(|p| p.lines().iter().map(|l| l.len()).collect()).collect();
        system.pdf.borrow_mut().open(doc).expect("open pdf");
        let line_count: usize = lines.iter().map(|p| p.len()).sum();
        docs.push(Doc {
            targets: DocTargets::Pdf { file, lines },
            hot: pick_hot(rng, line_count),
        });
    }
}

fn build_slides(
    system: &mut SuperimposedSystem,
    rng: &mut StdRng,
    digest: &mut Digest,
    n: usize,
    docs: &mut Vec<Doc>,
) {
    for i in 0..n {
        let file = format!("rounds-{i:04}.ppt");
        let mut deck = SlideDeck::new(&file);
        let mut slides = Vec::new();
        digest.update(file.as_bytes());
        for s in 0..8 {
            let bullets: Vec<String> = (0..3)
                .map(|b| format!("Case {i} slide {s} point {b}: value {}", rng.gen_range(0..1000)))
                .collect();
            for b in &bullets {
                digest.update(b.as_bytes());
            }
            let refs: Vec<&str> = bullets.iter().map(|b| b.as_str()).collect();
            deck.add_bullet_slide(&format!("Case {i} — slide {s}"), &refs);
            let mut ids = vec!["title".to_string()];
            ids.extend((1..=3).map(|b| format!("bullet{b}")));
            slides.push(ids);
        }
        system.slides.borrow_mut().open(deck).expect("open deck");
        docs.push(Doc {
            targets: DocTargets::Slides { file, slides },
            hot: pick_hot(rng, 8),
        });
    }
}

// ---- address generation ---------------------------------------------------

/// Pick a clustered index in `0..space`: 70% a hot anchor ± jitter.
fn clustered(rng: &mut StdRng, hot: &[usize], space: usize) -> usize {
    if space == 0 {
        return 0;
    }
    if !hot.is_empty() && rng.gen_bool(0.7) {
        let base = hot[rng.gen_range(0..hot.len())];
        let jitter = rng.gen_range(0..3usize);
        (base + jitter) % space
    } else {
        rng.gen_range(0..space)
    }
}

/// Draw one valid address on `doc`, clustered around its hot anchors.
pub fn random_address(doc: &Doc, rng: &mut StdRng) -> MarkAddress {
    match &doc.targets {
        DocTargets::Sheet { file, sheet, columns, computed } => {
            // 1-in-5 marks target a computed summary cell; the rest take a
            // 1–3-row window of one vitals column near a hot row.
            let range = if !computed.is_empty() && rng.gen_bool(0.2) {
                let c = computed[rng.gen_range(0..computed.len())];
                Range::new(c, c)
            } else {
                let col = columns[rng.gen_range(0..columns.len())];
                let rows = (col.end.row - col.start.row + 1) as usize;
                let start = col.start.row + clustered(rng, &doc.hot, rows) as u32;
                let end = (start + rng.gen_range(0..3u32)).min(col.end.row);
                Range::new(
                    CellRef::new(start.min(col.end.row), col.start.col),
                    CellRef::new(end, col.start.col),
                )
            };
            MarkAddress::Spreadsheet(SpreadsheetAddress {
                file_name: file.clone(),
                sheet_name: sheet.clone(),
                range,
            })
        }
        DocTargets::Xml { file, elems } => {
            let elem = &elems[clustered(rng, &doc.hot, elems.len())];
            MarkAddress::Xml(XmlAddress {
                file_name: file.clone(),
                xml_path: XPath::parse(&format!("/labReport/{elem}")).expect("static path"),
            })
        }
        DocTargets::Text { file, paragraphs, bookmarks } => {
            let target = if rng.gen_bool(0.3) {
                TextTarget::Bookmark(bookmarks[rng.gen_range(0..bookmarks.len())].clone())
            } else {
                let p = clustered(rng, &doc.hot, paragraphs.len());
                let len = paragraphs[p];
                let start = rng.gen_range(0..len.max(1));
                let end = (start + rng.gen_range(1..20usize)).min(len);
                TextTarget::Span { paragraph: p, span: Span::new(start, end.max(start)) }
            };
            MarkAddress::Text(TextAddress { file_name: file.clone(), target })
        }
        DocTargets::Html { url, anchors } => {
            let a = &anchors[clustered(rng, &doc.hot, anchors.len())];
            MarkAddress::Html(HtmlAddress {
                url: url.clone(),
                target: HtmlTarget::Anchor(a.clone()),
            })
        }
        DocTargets::Pdf { file, lines } => {
            let total: usize = lines.iter().map(|p| p.len()).sum();
            let mut flat = clustered(rng, &doc.hot, total);
            let mut page = 0;
            while flat >= lines[page].len() {
                flat -= lines[page].len();
                page += 1;
            }
            let len = lines[page][flat];
            let start = rng.gen_range(0..len.max(1));
            let end = (start + rng.gen_range(1..16usize)).min(len);
            MarkAddress::Pdf(PdfAddress {
                file_name: file.clone(),
                page,
                line: flat,
                span: Span::new(start, end.max(start)),
            })
        }
        DocTargets::Slides { file, slides } => {
            let s = clustered(rng, &doc.hot, slides.len());
            let ids = &slides[s];
            MarkAddress::Slides(superimposed::basedocs::slides::SlideAddress {
                file_name: file.clone(),
                slide: s,
                shape_id: ids[rng.gen_range(0..ids.len())].clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_builds_with_live_marks() {
        let corpus = generate(Profile::Smoke, 0xdecaf);
        assert_eq!(corpus.stats.docs, Profile::Smoke.docs_per_kind() * 6);
        assert_eq!(corpus.stats.marks, Profile::Smoke.marks());
        // Every generated address extracted a non-empty excerpt — the
        // addresses really land on live content.
        let empty = corpus
            .mark_ids
            .iter()
            .filter(|id| corpus.system.pad.marks().get(id).unwrap().excerpt.is_empty())
            .count();
        assert_eq!(empty, 0, "{empty} marks extracted empty excerpts");
    }
}
