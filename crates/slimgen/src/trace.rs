//! Replayable traffic: seeded operation streams driven through
//! [`PadSession`] with a count oracle and an outcome digest.
//!
//! A trace is a `Vec<TraceOp>` — pure data, a function of `(seed, n,
//! mix)` only. Every op addresses its operands by *selector*: a `u64`
//! reduced modulo the live population at apply time (the slimcheck
//! convention), so the same trace replays cleanly against any corpus and
//! stays meaningful as the population grows and shrinks.
//!
//! The [`Driver`] applies a trace and maintains a *count model*: mirror
//! lists of live bundle/scrap handles with an undo stack that snapshots
//! them at every `BeginOp` exactly as the session checkpoints its store.
//! After each op the model must agree with the store
//! ([`Driver::counts_match`]); every observable outcome (extract text,
//! query hit counts, undo effectiveness, commit outcomes) folds into a
//! running [`Digest`], which is the replay-equality witness.
//!
//! Traces deliberately contain **no mark creation**: they reference only
//! corpus-created marks. The mark store therefore stays byte-stable
//! through a trace, so commits never re-ship the (large) marks sidecar —
//! matching the paper's observation that marks are created at the base
//! applications, while pad traffic rearranges scraps over them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use superimposed::slimio::Vfs;
use superimposed::slimstore::{BundleHandle, ScrapHandle};
use superimposed::trim::CommitOutcome;
use superimposed::SuperimposedSystem;

use crate::Digest;

/// One traffic operation. All operands are selectors reduced modulo the
/// live population when applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Push an undo checkpoint.
    BeginOp,
    /// Create a bundle nested under the selected live bundle.
    CreateBundle { parent: u64 },
    /// Place the selected corpus mark as a scrap in the selected bundle.
    PlaceMark { mark: u64, bundle: u64 },
    /// Annotate the selected scrap.
    Annotate { scrap: u64, note: u64 },
    /// Link two selected scraps.
    Link { from: u64, to: u64 },
    /// Delete the selected scrap.
    DeleteScrap { scrap: u64 },
    /// Roll back to the last checkpoint (no-op when none).
    Undo,
    /// Resolve the selected scrap's mark and extract its content.
    Extract { scrap: u64 },
    /// Full-text scrap query for a pooled needle.
    Query { needle: u64 },
    /// Group-commit to the write-ahead log.
    Commit,
}

/// Traffic mixes: op-class weights in the order
/// `[BeginOp, CreateBundle, PlaceMark, Annotate, Link, DeleteScrap,
/// Undo, Extract, Query, Commit]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Resolution and query traffic: ward rounds reading charts.
    ReadHeavy,
    /// Scrap and bundle churn: a clinician reorganizing a pad.
    WriteHeavy,
    /// Both, interleaved.
    Mixed,
}

const QUERY_NEEDLES: [&str; 6] = ["scrap", "icu", "note", "dose", "case", "section"];
const ANNOTATIONS: [&str; 5] =
    ["flagged on rounds", "verify with lab", "trending up", "stable", "call pharmacy"];

impl Mix {
    /// CLI name → mix.
    pub fn parse(name: &str) -> Option<Mix> {
        match name {
            "read" => Some(Mix::ReadHeavy),
            "write" => Some(Mix::WriteHeavy),
            "mixed" => Some(Mix::Mixed),
            _ => None,
        }
    }

    /// Stable lowercase name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read",
            Mix::WriteHeavy => "write",
            Mix::Mixed => "mixed",
        }
    }

    fn weights(self) -> [u32; 10] {
        match self {
            Mix::ReadHeavy => [2, 1, 2, 1, 1, 1, 1, 40, 20, 2],
            Mix::WriteHeavy => [8, 10, 30, 10, 6, 6, 6, 2, 2, 4],
            Mix::Mixed => [6, 5, 14, 5, 4, 4, 5, 14, 10, 3],
        }
    }
}

/// Generate a trace: pure function of `(seed, n, mix)`.
pub fn generate(seed: u64, n: usize, mix: Mix) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a5c_e0b5_u64);
    let weights = mix.weights();
    let total: u32 = weights.iter().sum();
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let mut class = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                class = i;
                break;
            }
            pick -= *w;
        }
        ops.push(match class {
            0 => TraceOp::BeginOp,
            1 => TraceOp::CreateBundle { parent: rng.gen() },
            2 => TraceOp::PlaceMark { mark: rng.gen(), bundle: rng.gen() },
            3 => TraceOp::Annotate { scrap: rng.gen(), note: rng.gen() },
            4 => TraceOp::Link { from: rng.gen(), to: rng.gen() },
            5 => TraceOp::DeleteScrap { scrap: rng.gen() },
            6 => TraceOp::Undo,
            7 => TraceOp::Extract { scrap: rng.gen() },
            8 => TraceOp::Query { needle: rng.gen() },
            _ => TraceOp::Commit,
        });
    }
    ops
}

/// Digest of a trace's *shape* (ops and selectors), before any replay.
pub fn trace_digest(ops: &[TraceOp]) -> Digest {
    let mut d = Digest::new();
    for op in ops {
        d.update(format!("{op:?}").as_bytes());
    }
    d
}

/// Applies a trace against a live session while mirroring it in a count
/// model, folding every observable outcome into [`Driver::digest`].
pub struct Driver {
    /// Live bundle handles (root included), store order.
    pub bundles: Vec<BundleHandle>,
    /// Live scrap handles, placement order.
    pub scraps: Vec<ScrapHandle>,
    undo_stack: Vec<(Vec<BundleHandle>, Vec<ScrapHandle>)>,
    /// Outcome digest — the replay-equality witness.
    pub digest: Digest,
    /// Ops applied so far.
    pub applied: usize,
}

/// `sel % len`, or `None` on an empty population.
fn pick(sel: u64, len: usize) -> Option<usize> {
    if len == 0 {
        None
    } else {
        Some((sel % len as u64) as usize)
    }
}

impl Driver {
    /// Mirror the session's current live population.
    pub fn new(system: &SuperimposedSystem) -> Driver {
        Driver {
            bundles: system.pad.dmi().bundles(),
            scraps: system.pad.dmi().all_scraps(),
            undo_stack: Vec::new(),
            digest: Digest::new(),
            applied: 0,
        }
    }

    /// Re-mirror the store after crash recovery: the recovered session
    /// is the last acknowledged commit, and recovery clears the undo
    /// stack ([`PadSession::open_logged`] adopts a fresh log).
    ///
    /// [`PadSession::open_logged`]: superimposed::slimpad::PadSession::open_logged
    pub fn resync(&mut self, system: &SuperimposedSystem) {
        self.bundles = system.pad.dmi().bundles();
        self.scraps = system.pad.dmi().all_scraps();
        self.undo_stack.clear();
        self.digest.update(b"resync");
        self.digest.update_u64(self.bundles.len() as u64);
        self.digest.update_u64(self.scraps.len() as u64);
    }

    /// The count oracle: model and store agree on live populations.
    pub fn counts_match(&self, system: &SuperimposedSystem) -> bool {
        system.pad.dmi().bundles().len() == self.bundles.len()
            && system.pad.dmi().all_scraps().len() == self.scraps.len()
    }

    /// Apply one op. `mark_ids` is the corpus mark pool; `vfs` backs
    /// `Commit` (skipped, and noted in the digest, on unlogged
    /// sessions).
    pub fn apply(
        &mut self,
        system: &mut SuperimposedSystem,
        mark_ids: &[String],
        vfs: &dyn Vfs,
        op: &TraceOp,
    ) {
        let pad = &mut system.pad;
        match op {
            TraceOp::BeginOp => {
                pad.begin_op();
                self.undo_stack.push((self.bundles.clone(), self.scraps.clone()));
                self.digest.update(b"begin");
            }
            TraceOp::CreateBundle { parent } => {
                let p = pick(*parent, self.bundles.len()).map(|i| self.bundles[i]);
                let pos = ((self.applied as i64 * 37) % 1200, (self.applied as i64 * 53) % 900);
                let b = pad
                    .create_bundle(&format!("trace bundle {}", self.applied), pos, 320, 240, p)
                    .expect("bundle creation cannot fail on live parents");
                self.bundles.push(b);
                self.digest.update(b"bundle");
                self.digest.update_u64(self.bundles.len() as u64);
            }
            TraceOp::PlaceMark { mark, bundle } => {
                let Some(m) = pick(*mark, mark_ids.len()) else {
                    self.digest.update(b"place-skip");
                    return self.done();
                };
                let b = pick(*bundle, self.bundles.len()).map(|i| self.bundles[i]);
                let s = pad
                    .place_mark(&mark_ids[m], None, (10, 10), b)
                    .expect("corpus marks are live");
                self.scraps.push(s);
                self.digest.update(b"place");
                self.digest.update_u64(self.scraps.len() as u64);
            }
            TraceOp::Annotate { scrap, note } => {
                let Some(i) = pick(*scrap, self.scraps.len()) else {
                    self.digest.update(b"annotate-skip");
                    return self.done();
                };
                let text = ANNOTATIONS[(*note % ANNOTATIONS.len() as u64) as usize];
                let ok = pad.dmi_mut().add_annotation(self.scraps[i], text).is_ok();
                self.digest.update(if ok { b"annotate1" } else { b"annotate0" });
            }
            TraceOp::Link { from, to } => {
                let (Some(f), Some(t)) =
                    (pick(*from, self.scraps.len()), pick(*to, self.scraps.len()))
                else {
                    self.digest.update(b"link-skip");
                    return self.done();
                };
                if f == t {
                    self.digest.update(b"link-self");
                    return self.done();
                }
                let ok = pad.dmi_mut().link_scraps(self.scraps[f], self.scraps[t]).is_ok();
                self.digest.update(if ok { b"link1" } else { b"link0" });
            }
            TraceOp::DeleteScrap { scrap } => {
                let Some(i) = pick(*scrap, self.scraps.len()) else {
                    self.digest.update(b"delete-skip");
                    return self.done();
                };
                let s = self.scraps.remove(i);
                pad.dmi_mut().delete_scrap(s).expect("modelled scraps are live");
                self.digest.update(b"delete");
                self.digest.update_u64(self.scraps.len() as u64);
            }
            TraceOp::Undo => {
                let undone = pad.undo().expect("rollback of a live checkpoint");
                if undone {
                    // The store rolled back to the checkpoint; restore
                    // the mirror taken at the matching BeginOp.
                    let (b, s) = self
                        .undo_stack
                        .pop()
                        .expect("session undo implies a modelled checkpoint");
                    self.bundles = b;
                    self.scraps = s;
                }
                self.digest.update(if undone { b"undo1" } else { b"undo0" });
            }
            TraceOp::Extract { scrap } => {
                let Some(i) = pick(*scrap, self.scraps.len()) else {
                    self.digest.update(b"extract-skip");
                    return self.done();
                };
                let (text, degraded) =
                    pad.extract_degraded(self.scraps[i]).expect("modelled scraps are live");
                self.digest.update(b"extract");
                self.digest.update(text.as_bytes());
                self.digest.update(if degraded { b"~" } else { b"=" });
            }
            TraceOp::Query { needle } => {
                let needle = QUERY_NEEDLES[(*needle % QUERY_NEEDLES.len() as u64) as usize];
                let hits = pad.dmi().find_scraps(needle).len();
                self.digest.update(b"query");
                self.digest.update_u64(hits as u64);
            }
            TraceOp::Commit => {
                if pad.log().is_none() {
                    self.digest.update(b"commit-unlogged");
                    return self.done();
                }
                let outcome = pad.commit(vfs).expect("commit against a healthy vfs");
                match outcome {
                    CommitOutcome::Clean => self.digest.update(b"commit-clean"),
                    CommitOutcome::Committed { ops, .. } => {
                        self.digest.update(b"commit");
                        self.digest.update_u64(ops as u64);
                    }
                    CommitOutcome::NeedsFullSnapshot => self.digest.update(b"commit-compacted"),
                }
            }
        }
        self.done();
    }

    fn done(&mut self) {
        self.applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, 500, Mix::Mixed);
        let b = generate(7, 500, Mix::Mixed);
        assert_eq!(a, b);
        assert_eq!(trace_digest(&a), trace_digest(&b));
        let c = generate(8, 500, Mix::Mixed);
        assert_ne!(trace_digest(&a), trace_digest(&c));
    }

    #[test]
    fn mixes_have_distinct_profiles() {
        let read = generate(1, 1000, Mix::ReadHeavy);
        let write = generate(1, 1000, Mix::WriteHeavy);
        let reads =
            |ops: &[TraceOp]| ops.iter().filter(|o| matches!(o, TraceOp::Extract { .. } | TraceOp::Query { .. })).count();
        assert!(reads(&read) > reads(&write) * 3);
    }
}
