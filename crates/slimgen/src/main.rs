//! slimgen CLI — generate, digest, and soak hospital-scale workloads.
//!
//! ```text
//! slimgen --digest --profile quick --seed 0xC0FFEE   # corpus + trace digests
//! slimgen --soak   --profile quick --seed 0xC0FFEE   # checkpointed soak + crash
//! slimgen --chaos  --profile quick --seed 0xC0FFEE   # concurrent service chaos
//! slimgen --chaos-pad --profile quick --seed 0xC0FFEE # pad-level service chaos
//! ```
//!
//! `--soak` and `--chaos` exit non-zero on any oracle divergence — that
//! exit code is the CI soak jobs' verdict. All modes print the seed so
//! any report can be replayed verbatim.

use std::process::ExitCode;

use slimgen::chaos::{self, ChaosConfig};
use slimgen::chaos_pad::{self, ChaosPadConfig};
use slimgen::soak::{self, SoakConfig};
use slimgen::trace::{self, Mix};
use slimgen::{corpus, Profile};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Digest,
    Soak,
    Chaos,
    ChaosPad,
}

struct Args {
    profile: Profile,
    seed: u64,
    mix: Mix,
    mode: Mode,
    no_crash: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        profile: Profile::Quick,
        seed: 0xC0FFEE,
        mix: Mix::Mixed,
        mode: Mode::Digest,
        no_crash: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--digest" => args.mode = Mode::Digest,
            "--soak" => args.mode = Mode::Soak,
            "--chaos" => args.mode = Mode::Chaos,
            "--chaos-pad" => args.mode = Mode::ChaosPad,
            "--no-crash" => args.no_crash = true,
            "--profile" => {
                let v = it.next().ok_or("--profile needs a value")?;
                args.profile =
                    Profile::parse(&v).ok_or(format!("unknown profile {v:?} (smoke|quick|full)"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = parse_seed(&v).ok_or(format!("bad seed {v:?}"))?;
            }
            "--mix" => {
                let v = it.next().ok_or("--mix needs a value")?;
                args.mix = Mix::parse(&v).ok_or(format!("unknown mix {v:?} (read|write|mixed)"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("slimgen: {message}");
            return ExitCode::from(2);
        }
    };

    if args.mode == Mode::ChaosPad {
        let mut config = ChaosPadConfig::new(args.profile, args.seed);
        config.mix = args.mix;
        config.crash = !args.no_crash;
        let report = chaos_pad::run(&config);
        println!("slimgen chaos-pad  seed={:#x}  mix={}", args.seed, args.mix.name());
        println!(
            "  {} sessions x {} ops x 2 epochs, crash: {}",
            report.sessions, report.ops_per_session, report.crash
        );
        let s = &report.stats;
        println!(
            "  {} attempts: {} acked, {} shed, {} timed out, {} panicked, {} engine-refused, \
             {} quarantined, {} io-refused, {} closed",
            report.attempts,
            s.acked,
            s.shed,
            s.timed_out,
            s.panicked,
            s.engine_refusals,
            s.quarantine_rejections,
            s.io_refusals,
            s.closed_refusals
        );
        println!(
            "  {} commits, {} compactions, {} degraded resolutions, {} repairs",
            s.commits, s.compactions, s.degraded_resolutions, s.repairs
        );
        println!(
            "  digests: live {:#018x}  replay {:#018x}  disk {:#018x}",
            report.live_digest, report.replay_digest, report.disk_digest
        );
        return if report.passed() {
            println!("  PASS: zero divergences");
            ExitCode::SUCCESS
        } else {
            for d in &report.divergences {
                eprintln!("  DIVERGENCE: {d}");
            }
            ExitCode::FAILURE
        };
    }

    if args.mode == Mode::Chaos {
        let mut config = ChaosConfig::new(args.profile, args.seed);
        config.mix = args.mix;
        config.crash = !args.no_crash;
        let report = chaos::run(&config);
        println!("slimgen chaos  seed={:#x}  mix={}", args.seed, args.mix.name());
        println!(
            "  {} sessions x {} ops x 2 epochs, crash: {}",
            report.sessions, report.ops_per_session, report.crash
        );
        let s = &report.stats;
        println!(
            "  {} attempts: {} acked, {} shed, {} timed out, {} panicked, {} quarantined, \
             {} io-refused, {} closed",
            report.attempts,
            s.acked,
            s.shed,
            s.timed_out,
            s.panicked,
            s.quarantine_rejections,
            s.io_refusals,
            s.closed_refusals
        );
        println!(
            "  {} commits, {} compactions, {} snapshots ({} rebuilt)",
            s.commits, s.compactions, s.snapshots_published, s.snapshot_rebuilds
        );
        if let Some(recovery) = &report.recovery {
            println!("  recovery: {recovery}");
        }
        println!(
            "  digests: service {:#018x}  model {:#018x}  disk {:#018x}",
            report.service_digest, report.model_digest, report.disk_digest
        );
        return if report.passed() {
            println!("  PASS: zero divergences");
            ExitCode::SUCCESS
        } else {
            for d in &report.divergences {
                eprintln!("  DIVERGENCE: {d}");
            }
            ExitCode::FAILURE
        };
    }

    if args.mode == Mode::Soak {
        let mut config = SoakConfig::new(args.profile, args.seed);
        config.mix = args.mix;
        config.crash = !args.no_crash;
        let report = soak::run(&config);
        println!("slimgen soak  seed={:#x}  mix={}", args.seed, args.mix.name());
        println!(
            "  corpus: {} docs, {} marks, {} bundles, {} scraps",
            report.stats.docs, report.stats.marks, report.stats.bundles, report.stats.scraps
        );
        println!("  input digest:   {}", report.input_digest);
        println!("  outcome digest: {}", report.outcome_digest);
        println!(
            "  {} ops, {} checkpoints, crash recovered: {}",
            report.ops, report.checkpoints, report.crash_recovered
        );
        if report.passed() {
            println!("  PASS: zero divergences");
            ExitCode::SUCCESS
        } else {
            for d in &report.divergences {
                eprintln!("  DIVERGENCE: {d}");
            }
            ExitCode::FAILURE
        }
    } else {
        let corpus = corpus::generate(args.profile, args.seed);
        let ops = trace::generate(args.seed, args.profile.trace_ops(), args.mix);
        let mut corpus_digest = slimgen::Digest::new();
        corpus_digest.update(corpus.corpus_xml().as_bytes());
        println!("slimgen digest  seed={:#x}  mix={}", args.seed, args.mix.name());
        println!(
            "  corpus: {} docs, {} marks, {} bundles, {} scraps",
            corpus.stats.docs, corpus.stats.marks, corpus.stats.bundles, corpus.stats.scraps
        );
        println!("  input digest:  {}", corpus.input_digest);
        println!("  corpus digest: {corpus_digest}");
        println!("  trace digest:  {} ({} ops)", trace::trace_digest(&ops), ops.len());
        ExitCode::SUCCESS
    }
}
