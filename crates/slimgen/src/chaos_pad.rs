//! Seeded chaos soak for the pad-level session service.
//!
//! The sibling [`crate::chaos`] soak batters the *triple-level*
//! [`slimserve::Service`]; this one drives the full application stack —
//! marks, excerpts, bundles, undo — through a
//! [`slimserve::PadService`], with every fault class the pad supervisor
//! claims to contain:
//!
//! * **worker panics** — [`PadOp::ChaosPanic`] spliced into each
//!   session's script on a seeded schedule;
//! * **base-layer faults** — a [`FlakyModule`] storm (transient errors,
//!   latency, dangling documents, content drift) armed through its
//!   shared [`FlakyControl`] while the module itself lives inside the
//!   writer-owned mark manager;
//! * **I/O faults** — one-shot append failures plus a halting
//!   *torn-append* fault that plays a full crash (service aborted, disk
//!   reopened, WAL + marks sidecar recovered);
//! * **slow-clock stalls** — a thread yanking the shared [`MockClock`]
//!   forward so queued ops age past their deadlines;
//! * **deterministic drills** — quarantine-and-repair of dangling
//!   marks, a parked writer forcing `Overloaded` shedding (with its
//!   retry hint) and `Timeout` expiry, and a serially-panicking session
//!   forcing session quarantine.
//!
//! The oracle is differential and three-way: every acknowledged op is
//! recorded with its writer-assigned serialization order, replayed in
//! `(epoch, order)` order into a fresh single-threaded
//! [`PadMachine`] mirror, and the mirror's *logical* digest must equal
//! both the live service's final published digest and the digest of a
//! from-disk reopen. Injected faults may only touch what the digest
//! deliberately excludes (excerpts, resolver bookkeeping) — structure,
//! mark identity, and addresses must come out exactly equal. The stats
//! ledger must balance: every submission ends in exactly one typed
//! bucket, nothing is silently dropped.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs, Vfs};
use slimserve::{
    ward_doc, ward_factory, ward_mirror, Gate, PadConfig, PadOp, PadOutcome, PadService,
    PadServeStats, PadSessionHandle, ServeError, WARD_PARAGRAPHS,
};
use superimposed::marks::resilience::{mix64, BreakerConfig, MockClock};
use superimposed::marks::{FaultProfile, FlakyControl, RetryPolicy};
use superimposed::slimpad::PadEngine;

use crate::trace::{self, Mix, TraceOp};
use crate::Profile;

/// Where the pad service's snapshot + log live on the in-memory VFS.
const PAD_PATH: &str = "chaos/pad.xml";

/// Tuning for one chaos-pad run. Everything observable is a pure
/// function of this config — re-running with the same seed replays the
/// same per-session scripts and fault schedules.
#[derive(Debug, Clone)]
pub struct ChaosPadConfig {
    /// Concurrent session threads per epoch.
    pub sessions: usize,
    /// Pad ops per session per epoch.
    pub ops_per_session: usize,
    /// Master seed; fans out per session and per fault schedule.
    pub seed: u64,
    /// Inject the mid-run torn-append crash + recovery.
    pub crash: bool,
    /// Traffic mix for the underlying trace generator.
    pub mix: Mix,
}

impl ChaosPadConfig {
    /// Profile-scaled defaults (crash on, mixed traffic).
    pub fn new(profile: Profile, seed: u64) -> Self {
        let (sessions, ops_per_session) = match profile {
            Profile::Smoke => (4, 40),
            Profile::Quick => (8, 120),
            Profile::Full => (16, 400),
        };
        ChaosPadConfig { sessions, ops_per_session, seed, crash: true, mix: Mix::Mixed }
    }
}

/// What a chaos-pad run observed. [`ChaosPadReport::passed`] is the
/// verdict the CI job gates on.
#[derive(Debug)]
pub struct ChaosPadReport {
    /// The seed that replays this run.
    pub seed: u64,
    /// Session threads per epoch.
    pub sessions: usize,
    /// Pad ops per session per epoch.
    pub ops_per_session: usize,
    /// Whether the torn-append crash was injected.
    pub crash: bool,
    /// Submissions the harness made (soak traffic + drills).
    pub attempts: u64,
    /// Service counters summed across every incarnation and drill rig.
    pub stats: PadServeStats,
    /// The live service's final published logical digest.
    pub live_digest: u64,
    /// Digest of the serialized mirror replay of every acked op.
    pub replay_digest: u64,
    /// Digest of a fresh from-disk reopen after shutdown.
    pub disk_digest: u64,
    /// Every invariant violation observed; empty means PASS.
    pub divergences: Vec<String>,
}

impl ChaosPadReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// What one session thread observed.
struct Outcome {
    /// Acknowledged ops with their writer serialization order.
    acked: Vec<(u64, PadOp)>,
    /// Submissions made.
    attempts: u64,
    /// Invariant violations (unexpected verdict shapes).
    divergences: Vec<String>,
}

/// The storm profile the soak arms: every fault kind, biased towards
/// the retryable ones so the resolver's whole state machine cycles.
fn storm() -> FaultProfile {
    FaultProfile { transient_pct: 20, latency_pct: 8, gone_pct: 6, drift_pct: 6, latency_ms: 150 }
}

fn pad_config() -> PadConfig {
    PadConfig {
        queue_capacity: 64,
        max_batch: 16,
        op_deadline_ms: 1_000,
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 5_000,
            probe_budget: 3,
            probe_successes: 1,
        },
        // Small enough that the soak exercises compaction repeatedly.
        compact_threshold: 1 << 15,
    }
}

fn resolver_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 1,
        max_backoff_ms: 8,
        deadline_ms: 120,
        jitter_seed: 0x9ad,
    }
}

fn module_breaker() -> BreakerConfig {
    BreakerConfig { failure_threshold: 4, cooldown_ms: 400, probe_budget: 2, probe_successes: 1 }
}

/// Open a pad service over `disk` with the ward universe and the given
/// flaky-control handle.
fn open_service(
    disk: &Arc<FaultVfs<MemVfs>>,
    clock: &Arc<MockClock>,
    control: &FlakyControl,
    profile: FaultProfile,
    config: PadConfig,
) -> Result<PadService, ServeError> {
    let factory = ward_factory(
        (**clock).clone(),
        profile,
        control.clone(),
        resolver_policy(),
        module_breaker(),
        2,
    );
    PadService::open(disk.clone(), Path::new(PAD_PATH), config, clock.clone(), factory)
}

/// Run the chaos-pad soak to completion and report.
pub fn run(config: &ChaosPadConfig) -> ChaosPadReport {
    let disk = Arc::new(FaultVfs::unarmed(MemVfs::new()));
    let clock = Arc::new(MockClock::new());
    let control = FlakyControl::new(config.seed);
    let serve_config = pad_config();

    let mut divergences: Vec<String> = Vec::new();
    let mut acked: Vec<(u64, u64, PadOp)> = Vec::new();
    let mut attempts = 0u64;
    let mut stats = PadServeStats::default();
    let mut drill_acks = 0u64;

    // Slow-clock chaos: stalls big enough that ops queued across a few
    // ticks blow their deadlines, small enough that breaker cooldowns
    // still elapse.
    let stop_stall = Arc::new(AtomicBool::new(false));
    let stall = {
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop_stall);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                clock.advance(700);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // ---- Epoch 1: storm traffic, then (optionally) a torn crash -----
    let service = open_service(&disk, &clock, &control, storm(), serve_config.clone())
        .expect("fresh chaos pad opens");
    let epoch1 = spawn_epoch(&service, config, 1);
    if config.crash {
        // Let some traffic commit, then tear an append mid-frame and
        // halt the disk: every later commit fails with a typed Io
        // refusal until the "machine" reboots.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.stats().acked < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        disk.rearm(FaultConfig::new(FaultOp::Append, FaultMode::Torn, 0, config.seed).halting());
    }
    join_epoch(epoch1, 1, &mut acked, &mut attempts, &mut divergences);

    let service = if config.crash {
        stats += service.abort(); // the crash: queued work refused, writer gone
        disk.disarm();
        let epoch1_replay = replay_digest(&acked, &mut divergences);
        let service = open_service(&disk, &clock, &control, storm(), serve_config.clone())
            .expect("chaos pad recovers after torn-append crash");
        let recovered = service.digest();
        if recovered != epoch1_replay {
            divergences.push(format!(
                "post-crash pad digest {recovered:#018x} != epoch-1 acked replay \
                 {epoch1_replay:#018x} — an acked pad op was lost or a refused one survived"
            ));
        }
        service
    } else {
        service
    };

    // ---- Epoch 2: traffic with one-shot I/O faults sprinkled in -----
    let epoch2 = spawn_epoch(&service, config, 2);
    for burst in 0..3u64 {
        std::thread::sleep(Duration::from_millis(2));
        disk.rearm(FaultConfig::new(
            FaultOp::Append,
            FaultMode::Fail,
            burst,
            mix64(config.seed, burst),
        ));
    }
    join_epoch(epoch2, 2, &mut acked, &mut attempts, &mut divergences);

    // The drills below need a working disk, a frozen clock, and a
    // disarmed storm.
    disk.disarm();
    control.disarm();
    stop_stall.store(true, Ordering::Relaxed);
    stall.join().expect("stall thread exits");

    // ---- Drill: dangling marks quarantine, then repair online -------
    // (On its own rig: repair re-derives addresses from quarantine
    // state, which injected faults steer — it must stay out of the
    // differential soak above.)
    run_repair_drill(
        config.seed,
        &mut attempts,
        &mut drill_acks,
        &mut stats,
        &mut divergences,
    );

    // ---- Drill: panics quarantine a session; shed + expiry are loud -
    run_containment_drill(&mut attempts, &mut drill_acks, &mut stats, &mut divergences);

    // ---- Final differential: live == replay == disk -----------------
    let live_digest = service.digest();
    let replay = replay_digest(&acked, &mut divergences);
    if live_digest != replay {
        divergences.push(format!(
            "final live digest {live_digest:#018x} != serialized replay {replay:#018x}"
        ));
    }
    stats += service.shutdown();
    let disk_digest = reopen_digest(&*disk, &mut divergences);
    if disk_digest != replay {
        divergences.push(format!(
            "from-disk digest {disk_digest:#018x} != serialized replay {replay:#018x}"
        ));
    }

    // ---- The books must balance: every attempt, one typed verdict ---
    let buckets = stats.acked
        + stats.shed
        + stats.timed_out
        + stats.panicked
        + stats.engine_refusals
        + stats.quarantine_rejections
        + stats.io_refusals
        + stats.closed_refusals;
    if attempts != buckets {
        divergences.push(format!(
            "ledger imbalance: {attempts} submissions vs {buckets} accounted verdicts"
        ));
    }
    if stats.unaccounted() != 0 {
        divergences.push(format!(
            "queue ledger imbalance: {} enqueued ops unaccounted",
            stats.unaccounted()
        ));
    }
    if acked.len() as u64 + drill_acks != stats.acked {
        divergences.push(format!(
            "ack mismatch: harness observed {} acks, service counted {}",
            acked.len() as u64 + drill_acks,
            stats.acked
        ));
    }
    if stats.acked == 0 {
        divergences.push("no traffic survived the chaos at all".into());
    }
    if stats.panicked == 0 {
        divergences.push("injected panics were never observed as Panicked".into());
    }
    if stats.quarantine_rejections == 0 {
        divergences.push("no session was ever quarantined".into());
    }
    if stats.shed == 0 {
        divergences.push("overload never shed".into());
    }
    if stats.shed_backoff_ms == 0 {
        divergences.push("overload refusals never carried a retry hint".into());
    }
    if stats.timed_out == 0 {
        divergences.push("expired deadlines were never refused as Timeout".into());
    }
    if stats.commits == 0 {
        divergences.push("nothing was ever group-committed".into());
    }
    if stats.degraded_resolutions == 0 {
        divergences.push("the storm never produced a degraded resolution".into());
    }
    if stats.repairs == 0 {
        divergences.push("the repair drill never re-bound a quarantined mark".into());
    }

    ChaosPadReport {
        seed: config.seed,
        sessions: config.sessions,
        ops_per_session: config.ops_per_session,
        crash: config.crash,
        attempts,
        stats,
        live_digest,
        replay_digest: replay,
        disk_digest,
        divergences,
    }
}

/// Quarantine-and-repair, deterministically: a mark is created against
/// live text (capturing its excerpt), its resolutions are then faulted
/// with `DocumentGone` until the resolver quarantines it, the storm is
/// disarmed, and an online [`PadOp::Repair`] must find the excerpt in
/// the base layer and re-bind the mark.
fn run_repair_drill(
    seed: u64,
    attempts: &mut u64,
    drill_acks: &mut u64,
    stats: &mut PadServeStats,
    divergences: &mut Vec<String>,
) {
    let disk = Arc::new(FaultVfs::unarmed(MemVfs::new()));
    let clock = Arc::new(MockClock::new());
    let control = FlakyControl::new(seed);
    control.disarm();
    let gone = FaultProfile { transient_pct: 0, latency_pct: 0, gone_pct: 100, drift_pct: 0, latency_ms: 0 };
    let service = open_service(&disk, &clock, &control, gone, pad_config())
        .expect("repair drill pad opens");
    let session = service.session();
    let target = "Ward 1 paragraph 2";
    let submit = |op: PadOp,
                      what: &str,
                      attempts: &mut u64,
                      drill_acks: &mut u64,
                      divergences: &mut Vec<String>|
     -> Option<PadOutcome> {
        *attempts += 1;
        match session.submit(op) {
            Ok(ack) => {
                *drill_acks += 1;
                Some(ack.outcome)
            }
            Err(e) => {
                divergences.push(format!("repair drill: {what} refused: {e}"));
                None
            }
        }
    };
    submit(
        PadOp::CreateMark {
            doc: ward_doc(1),
            paragraph: 2,
            start: 0,
            len: target.len() as u64,
            label: "drill mark".into(),
            pos: (0, 0),
            bundle: None,
        },
        "create",
        attempts,
        drill_acks,
        divergences,
    );
    control.arm(); // every base-layer drive now reports DocumentGone
    let mut quarantined = false;
    for k in 0..3 {
        match submit(PadOp::Resolve { scrap: 0 }, "faulted resolve", attempts, drill_acks, divergences)
        {
            Some(PadOutcome::Resolved { degraded: true, quarantined: q, .. }) => {
                quarantined = q;
            }
            Some(other) => {
                divergences.push(format!("repair drill: resolve {k} not degraded: {other:?}"))
            }
            None => {}
        }
    }
    if !quarantined {
        divergences.push("repair drill: dangling mark never quarantined".into());
    }
    control.disarm();
    match submit(PadOp::Repair, "repair", attempts, drill_acks, divergences) {
        Some(PadOutcome::Repaired { rebound: 1, still_quarantined: 0 }) => {}
        Some(other) => divergences.push(format!("repair drill: unexpected repair {other:?}")),
        None => {}
    }
    match submit(PadOp::Resolve { scrap: 0 }, "post-repair resolve", attempts, drill_acks, divergences)
    {
        Some(PadOutcome::Resolved { degraded: false, quarantined: false, display })
            if !display.contains(target) =>
        {
            divergences.push(format!("repair drill: repaired mark resolves to {display:?}"));
        }
        Some(PadOutcome::Resolved { degraded: false, quarantined: false, .. }) => {}
        Some(other) => {
            divergences.push(format!("repair drill: post-repair resolve {other:?}"))
        }
        None => {}
    }
    *stats += service.shutdown();
}

/// Session-level containment, deterministically: empty-journal undo is
/// a typed refusal, repeated panics quarantine their session (and only
/// it), a parked writer sheds with a retry hint, and aged ops expire.
fn run_containment_drill(
    attempts: &mut u64,
    drill_acks: &mut u64,
    stats: &mut PadServeStats,
    divergences: &mut Vec<String>,
) {
    let disk = Arc::new(FaultVfs::unarmed(MemVfs::new()));
    let clock = Arc::new(MockClock::new());
    let control = FlakyControl::new(0);
    control.disarm();
    let drill_config = PadConfig {
        queue_capacity: 8,
        max_batch: 4,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 500,
            probe_budget: 3,
            probe_successes: 1,
        },
        ..pad_config()
    };
    let service = open_service(&disk, &clock, &control, FaultProfile::healthy(), drill_config)
        .expect("containment drill pad opens");

    // Undo on an empty journal is refused, typed, and never acked.
    let session = service.session();
    *attempts += 1;
    match session.submit(PadOp::Undo) {
        Err(ServeError::Engine { .. }) => {}
        other => divergences.push(format!("containment drill: empty undo got {other:?}")),
    }

    // Repeated panics must land the session in quarantine.
    let bad = service.session();
    for k in 0..2 {
        *attempts += 1;
        let verdict = bad.submit(PadOp::ChaosPanic { detail: format!("drill panic {k}") });
        if !matches!(verdict, Err(ServeError::Panicked { .. })) {
            divergences.push(format!("containment drill: panic {k} got {verdict:?}"));
        }
    }
    *attempts += 1;
    match bad.submit(PadOp::Inspect) {
        Err(ServeError::Quarantined { .. }) => {}
        other => {
            divergences.push(format!("containment drill: expected Quarantined, got {other:?}"))
        }
    }

    // A parked writer must shed (with a retry hint) and expire, loudly.
    let driller = service.session();
    let gate = Gate::new();
    *attempts += 1;
    let park = match driller.enqueue(PadOp::ChaosPark(gate.clone())) {
        Ok(ticket) => Some(ticket),
        Err(e) => {
            divergences.push(format!("containment drill: park refused at admission: {e}"));
            None
        }
    };
    gate.wait_arrived(); // the writer is parked; the queue is all ours
    let mut fills = Vec::new();
    for k in 0..8 {
        *attempts += 1;
        match driller.enqueue(PadOp::Inspect) {
            Ok(ticket) => fills.push(ticket),
            Err(e) => divergences.push(format!("containment drill: fill {k} refused: {e}")),
        }
    }
    *attempts += 1;
    match driller.enqueue(PadOp::Inspect) {
        Err(ServeError::Overloaded { retry_after_ms, .. }) => {
            if retry_after_ms == 0 {
                divergences.push("containment drill: overload hint was zero".into());
            }
        }
        other => {
            divergences.push(format!("containment drill: expected Overloaded, got {other:?}"))
        }
    }
    clock.advance(1_001); // age the queue past its deadlines
    gate.open();
    match park.map(|t| t.wait()) {
        Some(Ok(_)) => *drill_acks += 1,
        Some(Err(e)) => divergences.push(format!("containment drill: park op refused: {e}")),
        None => {}
    }
    for (k, ticket) in fills.into_iter().enumerate() {
        match ticket.wait() {
            Err(ServeError::Timeout { .. }) => {}
            other => divergences.push(format!(
                "containment drill: fill {k} expected Timeout, got {other:?}"
            )),
        }
    }
    *stats += service.shutdown();
}

/// Spawn one epoch's session threads. The caller keeps the service and
/// may inject faults while they run.
fn spawn_epoch(
    service: &PadService,
    config: &ChaosPadConfig,
    epoch: u64,
) -> Vec<JoinHandle<Outcome>> {
    (0..config.sessions)
        .map(|s| {
            let session = service.session();
            let script = session_script(config, s as u64, epoch);
            std::thread::spawn(move || drive(session, script))
        })
        .collect()
}

fn join_epoch(
    threads: Vec<JoinHandle<Outcome>>,
    epoch: u64,
    acked: &mut Vec<(u64, u64, PadOp)>,
    attempts: &mut u64,
    divergences: &mut Vec<String>,
) {
    for t in threads {
        let out = t.join().expect("session threads never panic");
        *attempts += out.attempts;
        divergences.extend(out.divergences);
        acked.extend(out.acked.into_iter().map(|(order, op)| (epoch, order, op)));
    }
}

/// One session's whole workload: the hospital trace translated to
/// pad-level ops, with seeded panic and redo injections spliced in.
fn session_script(config: &ChaosPadConfig, sess: u64, epoch: u64) -> Vec<PadOp> {
    let trace =
        trace::generate(mix64(config.seed, sess * 2 + epoch), config.ops_per_session, config.mix);
    trace
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let sel = mix64(config.seed ^ sess.rotate_left(17), epoch << 32 | i as u64);
            if sel.is_multiple_of(13) {
                return PadOp::ChaosPanic { detail: format!("chaos panic s{sess} e{epoch} i{i}") };
            }
            if sel % 13 == 1 {
                return PadOp::Redo;
            }
            translate(sess, epoch, i as u64, op)
        })
        .collect()
}

/// Map one trace verb onto the pad-op alphabet. Names and labels carry
/// `(session, epoch, index)` so every acked mutation is attributable in
/// the digest; selectors stay raw (the service resolves them modulo the
/// live population, and the mirror replays that resolution exactly).
fn translate(sess: u64, epoch: u64, i: u64, op: &TraceOp) -> PadOp {
    match op {
        TraceOp::BeginOp => {
            if i.is_multiple_of(3) {
                PadOp::Compact
            } else {
                PadOp::Inspect
            }
        }
        TraceOp::CreateBundle { parent } => PadOp::CreateBundle {
            name: format!("bundle s{sess}e{epoch}i{i}"),
            pos: ((i as i64 % 40) * 12, (sess as i64 % 8) * 18),
            width: 160,
            height: 120,
            parent: Some(*parent),
        },
        TraceOp::PlaceMark { mark, bundle } => PadOp::CreateMark {
            doc: ward_doc(*mark),
            paragraph: mark % WARD_PARAGRAPHS as u64,
            start: (mark % 4) * 5,
            len: 6 + mark % 12,
            label: format!("mark s{sess}e{epoch}i{i}"),
            pos: ((i as i64 % 50) * 9, ((mark % 16) as i64) * 11),
            bundle: Some(*bundle),
        },
        TraceOp::Annotate { scrap, note } => PadOp::Annotate {
            scrap: *scrap,
            text: format!("note {note} s{sess}e{epoch}i{i}"),
        },
        TraceOp::Link { from, to } => PadOp::Link { from: *from, to: *to },
        // The pad service has no destructive delete; the closest churn
        // is re-pointing the scrap's mark at a fresh address.
        TraceOp::DeleteScrap { scrap } => PadOp::Rebind {
            scrap: *scrap,
            doc: ward_doc(scrap ^ i),
            paragraph: (scrap ^ i) % WARD_PARAGRAPHS as u64,
            start: 0,
            len: 10,
        },
        TraceOp::Undo => PadOp::Undo,
        TraceOp::Extract { scrap } => PadOp::Extract { scrap: *scrap },
        TraceOp::Query { needle } => PadOp::Resolve { scrap: *needle },
        TraceOp::Commit => PadOp::Commit,
    }
}

/// Run one session's script to completion, tolerating every typed
/// refusal (that is the point) but recording invariant violations.
fn drive(session: PadSessionHandle, script: Vec<PadOp>) -> Outcome {
    let mut out = Outcome { acked: Vec::new(), attempts: 0, divergences: Vec::new() };
    for op in script {
        out.attempts += 1;
        match session.submit(op.clone()) {
            Ok(ack) => out.acked.push((ack.order, op)),
            // Every refusal is typed and guarantees the op was not
            // applied; the mirror replay proves it.
            Err(ServeError::Overloaded { .. })
            | Err(ServeError::Timeout { .. })
            | Err(ServeError::Quarantined { .. })
            | Err(ServeError::Panicked { .. })
            | Err(ServeError::Io { .. })
            | Err(ServeError::Engine { .. })
            | Err(ServeError::Closed) => {}
        }
    }
    out
}

/// The serialized mirror oracle: replay every acknowledged op in
/// `(epoch, order)` order into a fresh unlogged [`PadMachine`] over the
/// same ward universe and return its logical digest. An acked op that
/// the mirror refuses is itself a divergence (the ack promised it
/// applied).
fn replay_digest(acked: &[(u64, u64, PadOp)], divergences: &mut Vec<String>) -> u64 {
    let mut ordered: Vec<&(u64, u64, PadOp)> = acked.iter().collect();
    ordered.sort_by_key(|(epoch, order, _)| (*epoch, *order));
    let mut mirror = ward_mirror();
    for (epoch, order, op) in ordered {
        if let Err(e) = mirror.apply(op) {
            divergences.push(format!(
                "acked op (epoch {epoch}, order {order}) {op:?} refused in mirror replay: {e}"
            ));
        }
    }
    mirror.digest()
}

/// Digest of the durable on-disk state: reopen the pad (snapshot + WAL
/// + marks sidecar) into a fresh engine and take its logical digest.
fn reopen_digest(disk: &dyn Vfs, divergences: &mut Vec<String>) -> u64 {
    let mut factory = ward_factory(
        MockClock::new(),
        FaultProfile::healthy(),
        FlakyControl::new(0),
        resolver_policy(),
        module_breaker(),
        2,
    );
    let parts = match factory() {
        Ok(parts) => parts,
        Err(e) => {
            divergences.push(format!("reopen: ward universe failed: {e}"));
            return 0;
        }
    };
    match PadEngine::open_logged(disk, Path::new(PAD_PATH), parts.manager) {
        Ok((engine, _report)) => slimserve::PadMachine::new(engine, parts.search).digest(),
        Err(e) => {
            divergences.push(format!("reopen: post-shutdown pad failed to open: {e}"));
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 chaos-pad gate: a smoke-profile run with the full
    /// fault menu (panics, base-layer storm, I/O faults, clock stalls,
    /// torn-append crash) must come out differentially clean.
    #[test]
    fn smoke_chaos_pad_soak_passes() {
        let config = ChaosPadConfig::new(Profile::Smoke, 0xC0FFEE);
        let report = run(&config);
        assert!(
            report.passed(),
            "chaos-pad divergences: {:#?}\nstats: {:?}",
            report.divergences,
            report.stats
        );
        assert_eq!(report.live_digest, report.replay_digest);
        assert_eq!(report.disk_digest, report.replay_digest);
    }

    /// Crash-free variant: one service incarnation end to end.
    #[test]
    fn chaos_pad_soak_without_crash_passes() {
        let mut config = ChaosPadConfig::new(Profile::Smoke, 0xFEED);
        config.crash = false;
        let report = run(&config);
        assert!(report.passed(), "chaos-pad divergences: {:#?}", report.divergences);
    }

    /// Two runs with one seed must make identical scripts (the report
    /// depends on thread interleaving, the workload must not).
    #[test]
    fn pad_scripts_are_seed_deterministic() {
        let config = ChaosPadConfig::new(Profile::Smoke, 7);
        let a = session_script(&config, 3, 1);
        let b = session_script(&config, 3, 1);
        assert_eq!(a, b);
        let c = session_script(&config, 3, 2);
        assert_ne!(a, c, "epochs get distinct scripts");
    }
}


