//! Seeded chaos soak for the concurrent session service.
//!
//! Drives N interleaved sessions of trace-derived traffic through a
//! [`slimserve::Service`] while injecting every fault class the
//! supervisor claims to contain:
//!
//! * **worker panics** — [`ServeOp::ChaosPanic`] ops spliced into each
//!   session's script on a seeded schedule;
//! * **I/O faults** — one-shot [`FaultVfs`] append failures armed
//!   mid-traffic, plus a halting *torn-append* fault that plays a full
//!   crash (service aborted, disk reopened, WAL salvaged);
//! * **slow-clock stalls** — a thread yanking the shared [`MockClock`]
//!   forward so queued ops age past their deadlines;
//! * **deterministic drills** — a parked writer to force `Overloaded`
//!   shedding and `Timeout` expiry, and a serially-panicking session to
//!   force quarantine, independent of scheduling luck.
//!
//! The oracle is differential: every acknowledged op is recorded with
//! its writer-assigned serialization order, replayed in `(epoch,
//! order)` order into a fresh **single-session** [`TripleStore`], and
//! the model's snapshot digest must equal both the live service's final
//! snapshot and a from-disk reopen. Refusals are checked the other way
//! around — refused drill markers must be absent, and the stats ledger
//! must balance: every submission ends in exactly one typed bucket,
//! nothing is silently dropped.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
use slimserve::{Gate, ServeConfig, ServeError, ServeOp, ServeStats, Service, SessionHandle};
use superimposed::marks::resilience::{mix64, BreakerConfig, MockClock};
use superimposed::trim::{SnapTriple, SnapValue, SnapshotPublisher, TripleStore};

use crate::trace::{self, Mix, TraceOp};
use crate::Profile;

/// Where the chaos service's snapshot + log live on the in-memory VFS.
const STORE_PATH: &str = "chaos/store.xml";

/// Tuning for one chaos run. Everything observable is a pure function
/// of this config — re-running with the same seed replays the same
/// per-session scripts and fault schedules.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Concurrent session threads per epoch.
    pub sessions: usize,
    /// Trace ops per session per epoch.
    pub ops_per_session: usize,
    /// Master seed; fans out per session and per fault schedule.
    pub seed: u64,
    /// Inject the mid-run torn-append crash + recovery.
    pub crash: bool,
    /// Traffic mix for the underlying trace generator.
    pub mix: Mix,
}

impl ChaosConfig {
    /// Profile-scaled defaults (crash on, mixed traffic).
    pub fn new(profile: Profile, seed: u64) -> Self {
        let (sessions, ops_per_session) = match profile {
            Profile::Smoke => (4, 48),
            Profile::Quick => (8, 160),
            Profile::Full => (16, 512),
        };
        ChaosConfig { sessions, ops_per_session, seed, crash: true, mix: Mix::Mixed }
    }
}

/// What a chaos run observed. [`ChaosReport::passed`] is the verdict
/// the CI job gates on.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed that replays this run.
    pub seed: u64,
    /// Session threads per epoch.
    pub sessions: usize,
    /// Trace ops per session per epoch.
    pub ops_per_session: usize,
    /// Whether the torn-append crash was injected.
    pub crash: bool,
    /// Write submissions the harness made (reads not counted).
    pub attempts: u64,
    /// Service counters summed across both incarnations.
    pub stats: ServeStats,
    /// The WAL's recovery summary after the injected crash.
    pub recovery: Option<String>,
    /// Final snapshot digest of the live service.
    pub service_digest: u64,
    /// Digest of the serialized single-session model replay.
    pub model_digest: u64,
    /// Digest of a fresh from-disk reopen after shutdown.
    pub disk_digest: u64,
    /// Every invariant violation observed; empty means PASS.
    pub divergences: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// One step of a session's script.
enum Action {
    /// Submit a write op and record its verdict.
    Write(ServeOp),
    /// Take a snapshot and scan a subject — readers under a hot writer.
    Read { subject: String },
}

/// What one session thread observed.
struct Outcome {
    /// Acknowledged ops with their writer serialization order.
    acked: Vec<(u64, ServeOp)>,
    /// Write submissions made.
    attempts: u64,
    /// Invariant violations (read-your-writes, unexpected verdicts).
    divergences: Vec<String>,
}

/// Run the chaos soak to completion and report.
pub fn run(config: &ChaosConfig) -> ChaosReport {
    let disk = Arc::new(FaultVfs::unarmed(MemVfs::new()));
    let clock = Arc::new(MockClock::new());
    let path = Path::new(STORE_PATH);
    let serve_config = ServeConfig {
        queue_capacity: 64,
        max_batch: 16,
        op_deadline_ms: 1_000,
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 5_000,
            probe_budget: 3,
            probe_successes: 1,
        },
        // Small enough that the soak exercises compaction repeatedly.
        compact_threshold: 1 << 15,
    };

    let mut divergences: Vec<String> = Vec::new();
    let mut acked: Vec<(u64, u64, ServeOp)> = Vec::new();
    let mut attempts = 0u64;
    let mut stats = ServeStats::default();
    let mut recovery = None;

    // Slow-clock chaos: stalls big enough that ops queued across a few
    // ticks blow their deadlines, small enough that quarantine cooldowns
    // still elapse and breakers cycle through half-open probes.
    let stop_stall = Arc::new(AtomicBool::new(false));
    let stall = {
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop_stall);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                clock.advance(700);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // ---- Epoch 1: traffic, then (optionally) a torn-append crash ----
    let (service, _) = Service::open(disk.clone(), path, serve_config.clone(), clock.clone())
        .expect("fresh chaos store opens");
    let epoch1 = spawn_epoch(&service, config, 1);
    if config.crash {
        // Let some traffic commit, then tear an append mid-frame and
        // halt the disk: every later commit fails with a typed Io
        // refusal until the "machine" reboots.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.stats().acked < 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        disk.rearm(FaultConfig::new(FaultOp::Append, FaultMode::Torn, 0, config.seed).halting());
    }
    join_epoch(epoch1, 1, &mut acked, &mut attempts, &mut divergences);

    let service = if config.crash {
        stats += service.abort(); // the crash: queued work refused, writer gone
        disk.disarm();
        let epoch1_model = model_digest(&acked);
        let (service, report) =
            Service::open(disk.clone(), path, serve_config.clone(), clock.clone())
                .expect("chaos store recovers after torn-append crash");
        recovery = Some(report.to_string());
        let recovered = service.snapshot().digest();
        if recovered != epoch1_model {
            divergences.push(format!(
                "post-crash recovery digest {recovered:#018x} != epoch-1 acked model \
                 {epoch1_model:#018x} — an acked commit was lost or a refused op survived"
            ));
        }
        service
    } else {
        service
    };

    // ---- Epoch 2: traffic with one-shot I/O faults sprinkled in ----
    let epoch2 = spawn_epoch(&service, config, 2);
    for burst in 0..3u64 {
        std::thread::sleep(Duration::from_millis(2));
        disk.rearm(FaultConfig::new(
            FaultOp::Append,
            FaultMode::Fail,
            burst,
            mix64(config.seed, burst),
        ));
    }
    join_epoch(epoch2, 2, &mut acked, &mut attempts, &mut divergences);

    // The drills below need a working disk and a frozen clock.
    disk.disarm();
    stop_stall.store(true, Ordering::Relaxed);
    stall.join().expect("stall thread exits");

    // ---- Drill: repeated panics must land a session in quarantine ----
    let bad = service.session();
    for k in 0..serve_config.breaker.failure_threshold {
        attempts += 1;
        let verdict = bad.submit(ServeOp::ChaosPanic { detail: format!("drill panic {k}") });
        if !matches!(verdict, Err(ServeError::Panicked { .. })) {
            divergences.push(format!("quarantine drill: panic {k} got {verdict:?}"));
        }
    }
    attempts += 1;
    match bad.submit(ServeOp::insert("drill:quarantined", "p", "v")) {
        Err(ServeError::Quarantined { .. }) => {}
        other => {
            divergences.push(format!("quarantine drill: expected Quarantined, got {other:?}"))
        }
    }

    // ---- Drill: a parked writer must shed and expire, loudly --------
    let driller = service.session();
    let gate = Gate::new();
    attempts += 1;
    let park = driller
        .enqueue(ServeOp::ChaosPark(gate.clone()))
        .expect("park admits into an empty queue");
    gate.wait_arrived(); // the writer is parked; the queue is all ours
    let mut fills = Vec::new();
    for k in 0..serve_config.queue_capacity {
        attempts += 1;
        match driller.enqueue(ServeOp::insert(&format!("drill:fill{k}"), "p", "v")) {
            Ok(ticket) => fills.push(ticket),
            Err(e) => divergences.push(format!("backpressure drill: fill {k} refused: {e}")),
        }
    }
    attempts += 1;
    match driller.enqueue(ServeOp::insert("drill:overflow", "p", "v")) {
        Err(ServeError::Overloaded { .. }) => {}
        other => {
            divergences.push(format!("backpressure drill: expected Overloaded, got {other:?}"))
        }
    }
    clock.advance(serve_config.op_deadline_ms + 1); // age the queue past its deadlines
    gate.open();
    match park.wait() {
        Ok(ack) => acked.push((2, ack.order, ServeOp::ChaosPark(gate.clone()))),
        Err(e) => divergences.push(format!("park op refused: {e}")),
    }
    for (k, ticket) in fills.into_iter().enumerate() {
        match ticket.wait() {
            Err(ServeError::Timeout { .. }) => {}
            other => {
                divergences.push(format!("deadline drill: fill {k} expected Timeout, got {other:?}"))
            }
        }
    }

    // Refused markers must be observably absent — shed is loud, not lossy.
    let snap = service.snapshot();
    for subject in ["drill:quarantined", "drill:overflow", "drill:fill0", "drill:fill63"] {
        if snap.scan_subject(subject).next().is_some() {
            divergences.push(format!("refused op {subject:?} leaked into the store"));
        }
    }

    // ---- Final differential: service == model == disk ---------------
    let service_digest = service.snapshot().digest();
    let model = model_digest(&acked);
    if service_digest != model {
        divergences.push(format!(
            "final service digest {service_digest:#018x} != serialized model {model:#018x}"
        ));
    }
    stats += service.shutdown();
    let (mut store, _, _) =
        TripleStore::open_logged(&disk, path).expect("post-shutdown reopen succeeds");
    let disk_digest = SnapshotPublisher::new(&mut store).publish(&mut store).0.digest();
    if disk_digest != model {
        divergences.push(format!(
            "from-disk digest {disk_digest:#018x} != serialized model {model:#018x}"
        ));
    }

    // ---- The books must balance: every attempt, one typed verdict ---
    let buckets = stats.acked
        + stats.shed
        + stats.timed_out
        + stats.panicked
        + stats.quarantine_rejections
        + stats.io_refusals
        + stats.closed_refusals;
    if attempts != buckets {
        divergences.push(format!(
            "ledger imbalance: {attempts} submissions vs {buckets} accounted verdicts"
        ));
    }
    if acked.len() as u64 != stats.acked {
        divergences.push(format!(
            "ack mismatch: harness observed {} acks, service counted {}",
            acked.len(),
            stats.acked
        ));
    }
    if stats.acked == 0 {
        divergences.push("no traffic survived the chaos at all".into());
    }
    if stats.panicked < serve_config.breaker.failure_threshold as u64 {
        divergences.push("injected panics were not all observed as Panicked".into());
    }
    if stats.quarantine_rejections == 0 {
        divergences.push("no session was ever quarantined".into());
    }
    if stats.shed == 0 {
        divergences.push("overload never shed".into());
    }
    if stats.timed_out < serve_config.queue_capacity as u64 {
        divergences.push("expired deadlines were not all refused as Timeout".into());
    }
    if stats.commits == 0 {
        divergences.push("nothing was ever group-committed".into());
    }

    ChaosReport {
        seed: config.seed,
        sessions: config.sessions,
        ops_per_session: config.ops_per_session,
        crash: config.crash,
        attempts,
        stats,
        recovery,
        service_digest,
        model_digest: model,
        disk_digest,
        divergences,
    }
}

/// Spawn one epoch's session threads. The caller keeps the `Service`
/// and may inject faults while they run.
fn spawn_epoch(
    service: &Service,
    config: &ChaosConfig,
    epoch: u64,
) -> Vec<JoinHandle<Outcome>> {
    (0..config.sessions)
        .map(|s| {
            let session = service.session();
            let script = session_script(config, s as u64, epoch);
            let tag = format!("session {s} epoch {epoch}");
            std::thread::spawn(move || drive(session, script, tag))
        })
        .collect()
}

fn join_epoch(
    threads: Vec<JoinHandle<Outcome>>,
    epoch: u64,
    acked: &mut Vec<(u64, u64, ServeOp)>,
    attempts: &mut u64,
    divergences: &mut Vec<String>,
) {
    for t in threads {
        let out = t.join().expect("session threads never panic");
        *attempts += out.attempts;
        divergences.extend(out.divergences);
        acked.extend(out.acked.into_iter().map(|(order, op)| (epoch, order, op)));
    }
}

/// One session's whole workload: the hospital trace translated to
/// store-level service ops, with seeded panic injections spliced in.
fn session_script(config: &ChaosConfig, sess: u64, epoch: u64) -> Vec<Action> {
    let trace =
        trace::generate(mix64(config.seed, sess * 2 + epoch), config.ops_per_session, config.mix);
    trace
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let sel = mix64(config.seed ^ sess.rotate_left(17), epoch << 32 | i as u64);
            if sel.is_multiple_of(13) {
                return Action::Write(ServeOp::ChaosPanic {
                    detail: format!("chaos panic s{sess} e{epoch} i{i}"),
                });
            }
            translate(sess, epoch, i as u64, op)
        })
        .collect()
}

/// Map one trace verb onto the service alphabet. Subjects are scoped
/// `c{sess}e{epoch}:*` so every session's writes are attributable, plus
/// a small shared `hot:doc*` set so sessions genuinely contend.
fn translate(sess: u64, epoch: u64, i: u64, op: &TraceOp) -> Action {
    let bundle = |j: u64| format!("c{sess}e{epoch}:b{j}");
    let scrap = |j: u64| format!("c{sess}e{epoch}:s{j}");
    let hot = |j: u64| format!("hot:doc{}", j % 8);
    match op {
        TraceOp::BeginOp => Action::Write(ServeOp::insert(
            &format!("c{sess}e{epoch}:journal"),
            "checkpoint",
            &i.to_string(),
        )),
        TraceOp::CreateBundle { parent } => Action::Write(ServeOp::Insert {
            subject: bundle(i),
            property: "bundleName".into(),
            object: SnapValue::Literal(format!("bundle {sess}/{epoch}/{i} under {parent}")),
        }),
        TraceOp::PlaceMark { mark, bundle: b } => Action::Write(ServeOp::Insert {
            subject: bundle(b % (i + 1)),
            property: "containsScrap".into(),
            object: SnapValue::Resource(scrap(mark % (i + 1))),
        }),
        TraceOp::Annotate { scrap: s, note } => Action::Write(ServeOp::Insert {
            subject: scrap(s % (i + 1)),
            property: "annotation".into(),
            object: SnapValue::Literal(format!("note {note} @{i}")),
        }),
        TraceOp::Link { from, to } => Action::Write(ServeOp::Insert {
            subject: scrap(from % (i + 1)),
            property: "linksTo".into(),
            object: SnapValue::Resource(hot(*to)),
        }),
        TraceOp::DeleteScrap { scrap: s } => Action::Write(ServeOp::Remove {
            subject: bundle(s % (i + 1)),
            property: "containsScrap".into(),
            object: SnapValue::Resource(scrap(s % (i + 1))),
        }),
        TraceOp::Undo => Action::Write(ServeOp::SetUnique {
            subject: hot(i),
            property: "lastEditor".into(),
            object: SnapValue::Literal(format!("c{sess} @e{epoch}i{i}")),
        }),
        TraceOp::Extract { scrap: s } => Action::Read { subject: scrap(s % (i + 1)) },
        TraceOp::Query { needle } => Action::Read { subject: hot(*needle) },
        TraceOp::Commit => Action::Read { subject: format!("c{sess}e{epoch}:journal") },
    }
}

/// Run one session's script to completion, tolerating every typed
/// refusal (that is the point) but recording invariant violations.
fn drive(session: SessionHandle, script: Vec<Action>, tag: String) -> Outcome {
    let mut out = Outcome { acked: Vec::new(), attempts: 0, divergences: Vec::new() };
    for (i, action) in script.into_iter().enumerate() {
        match action {
            Action::Read { subject } => {
                // Readers never block: clone the snapshot, scan freely.
                let snap = session.snapshot();
                let _ = snap.scan_subject(&subject).count();
            }
            Action::Write(op) => {
                out.attempts += 1;
                match session.submit(op.clone()) {
                    Ok(ack) => {
                        // Read-your-writes: an ack implies a published
                        // snapshot at least as new as the op. Annotation
                        // triples are never removed, so they must be
                        // visible from here on.
                        if let ServeOp::Insert { subject, property, object } = &op {
                            if property == "annotation" {
                                let t = SnapTriple {
                                    subject: subject.clone(),
                                    property: property.clone(),
                                    object: object.clone(),
                                };
                                if !session.snapshot().contains(&t) {
                                    out.divergences.push(format!(
                                        "{tag}: acked op {i} invisible in the next snapshot"
                                    ));
                                }
                            }
                        }
                        out.acked.push((ack.order, op));
                    }
                    // Every refusal is typed and guarantees the op was
                    // not applied; the model replay below proves it.
                    Err(ServeError::Overloaded { .. })
                    | Err(ServeError::Timeout { .. })
                    | Err(ServeError::Quarantined { .. })
                    | Err(ServeError::Panicked { .. })
                    | Err(ServeError::Io { .. })
                    | Err(ServeError::Engine { .. })
                    | Err(ServeError::Closed) => {}
                }
            }
        }
    }
    out
}

/// The serialized single-session oracle: replay every acknowledged op
/// in `(epoch, order)` order into a fresh store and digest it.
fn model_digest(acked: &[(u64, u64, ServeOp)]) -> u64 {
    let mut ordered: Vec<&(u64, u64, ServeOp)> = acked.iter().collect();
    ordered.sort_by_key(|(epoch, order, _)| (*epoch, *order));
    let mut model = TripleStore::new();
    for (_, _, op) in ordered {
        op.apply_to(&mut model);
    }
    SnapshotPublisher::new(&mut model).publish(&mut model).0.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 chaos gate: a smoke-profile run with the full fault
    /// menu (panics, I/O faults, clock stalls, torn-append crash) must
    /// come out differentially clean.
    #[test]
    fn smoke_chaos_soak_passes() {
        let config = ChaosConfig::new(Profile::Smoke, 0xC0FFEE);
        let report = run(&config);
        assert!(
            report.passed(),
            "chaos divergences: {:#?}\nstats: {:?}",
            report.divergences,
            report.stats
        );
        assert!(report.recovery.is_some(), "the crash leg must actually run");
        assert_eq!(report.service_digest, report.model_digest);
        assert_eq!(report.disk_digest, report.model_digest);
    }

    /// Crash-free variant: one service incarnation end to end.
    #[test]
    fn chaos_soak_without_crash_passes() {
        let mut config = ChaosConfig::new(Profile::Smoke, 0xFEED);
        config.crash = false;
        let report = run(&config);
        assert!(report.passed(), "chaos divergences: {:#?}", report.divergences);
        assert!(report.recovery.is_none());
    }

    /// Two runs with one seed must make identical scripts (the report
    /// depends on thread interleaving, the workload must not).
    #[test]
    fn scripts_are_seed_deterministic() {
        let config = ChaosConfig::new(Profile::Smoke, 7);
        let a = session_script(&config, 3, 1);
        let b = session_script(&config, 3, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (Action::Write(p), Action::Write(q)) => assert_eq!(p, q),
                (Action::Read { subject: p }, Action::Read { subject: q }) => assert_eq!(p, q),
                _ => panic!("schedules diverged in shape"),
            }
        }
    }
}
