//! Seed corpora for slimcheck: deterministic operation prefixes.
//!
//! Property-based shrinking works best when the random suffix is small;
//! starting every case from an empty store means the generator spends
//! most of its budget rebuilding boring structure. This module emits a
//! seeded prefix of structure-building operations that slimcheck maps
//! onto its own per-layer op types (`DmiOp`, `PadOp`, …) and prepends
//! inside the check closure — the prefix is a constant of the run, so
//! the shrinker only ever shrinks the interesting suffix.
//!
//! [`SeedOp`] is deliberately tiny and selector-based (`u64` reduced
//! modulo live populations, the slimcheck convention) so each layer can
//! interpret it in its own vocabulary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One structure-building step. Selectors reduce modulo the live
/// population in whatever layer interprets the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedOp {
    /// Create a bundle under the selected existing bundle (or the root).
    CreateBundle { parent: u64 },
    /// Create a scrap in the selected bundle holding the selected mark.
    CreateScrap { bundle: u64, mark: u64 },
    /// Annotate the selected scrap with the selected pooled text.
    Annotate { scrap: u64, note: u64 },
    /// Link two selected scraps.
    Link { from: u64, to: u64 },
    /// Push an undo/rollback checkpoint.
    Checkpoint,
}

/// Generate a seed prefix: pure function of `(seed, n)`. Roughly
/// two-thirds creations, so populations grow fast enough for the
/// reference ops to land.
pub fn seed_ops(seed: u64, n: usize) -> Vec<SeedOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05ee_d0b5_u64);
    (0..n)
        .map(|_| match rng.gen_range(0..10u32) {
            0..=2 => SeedOp::CreateBundle { parent: rng.gen() },
            3..=6 => SeedOp::CreateScrap { bundle: rng.gen(), mark: rng.gen() },
            7 => SeedOp::Annotate { scrap: rng.gen(), note: rng.gen() },
            8 => SeedOp::Link { from: rng.gen(), to: rng.gen() },
            _ => SeedOp::Checkpoint,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_deterministic_and_seed_sensitive() {
        assert_eq!(seed_ops(3, 64), seed_ops(3, 64));
        assert_ne!(seed_ops(3, 64), seed_ops(4, 64));
        let creations = seed_ops(3, 200)
            .iter()
            .filter(|op| {
                matches!(op, SeedOp::CreateBundle { .. } | SeedOp::CreateScrap { .. })
            })
            .count();
        assert!(creations > 100, "prefixes must be creation-heavy, got {creations}");
    }
}
