//! The soak harness end to end at test scale: a mixed trace with a
//! mid-run crash and log recovery completes with zero oracle
//! divergences, and the whole run — crash included — is replayable.

use slimgen::soak::{run, SoakConfig};
use slimgen::trace::Mix;
use slimgen::Profile;

#[test]
fn mixed_soak_with_crash_recovery_has_zero_divergences() {
    let mut config = SoakConfig::new(Profile::Smoke, 0xBED5);
    config.checkpoint_every = 40;
    let report = run(&config);
    assert!(report.passed(), "oracle divergences: {:#?}", report.divergences);
    assert!(report.crash_recovered, "the mid-run crash must be injected and recovered");
    assert_eq!(report.ops, Profile::Smoke.trace_ops());
    assert!(report.checkpoints >= Profile::Smoke.trace_ops() / 40);
}

#[test]
fn soak_outcomes_are_replayable() {
    let config = SoakConfig::new(Profile::Smoke, 7);
    let a = run(&config);
    let b = run(&config);
    assert!(a.passed() && b.passed());
    assert_eq!(
        a.outcome_digest, b.outcome_digest,
        "the same seed must soak to the same outcome digest, crash and all"
    );
    let other = run(&SoakConfig::new(Profile::Smoke, 8));
    assert_ne!(a.outcome_digest, other.outcome_digest);
}

#[test]
fn every_mix_soaks_clean() {
    for mix in [Mix::ReadHeavy, Mix::WriteHeavy, Mix::Mixed] {
        let mut config = SoakConfig::new(Profile::Smoke, 21);
        config.mix = mix;
        let report = run(&config);
        assert!(
            report.passed(),
            "mix {:?} diverged: {:#?}",
            mix,
            report.divergences
        );
    }
}
