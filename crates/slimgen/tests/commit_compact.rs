//! Commit and compaction behaviour under a soak-sized store: log growth
//! stays proportional to the *changes*, never the store; the compaction
//! threshold is tunable and honoured; and the `NeedsFullSnapshot`
//! commit outcome auto-compacts into a durable state.

use std::path::Path;

use slimgen::corpus;
use slimgen::Profile;
use superimposed::slimio::MemVfs;
use superimposed::slimpad::PadSession;
use superimposed::trim::CommitOutcome;

const PAD: &str = "commit-compact.pad";

fn logged_corpus() -> (corpus::Corpus, MemVfs) {
    let mut corpus = corpus::generate(Profile::Smoke, 0xAC1D);
    let vfs = MemVfs::new();
    corpus.system.pad.enable_logging(&vfs, Path::new(PAD)).expect("enable logging");
    (corpus, vfs)
}

#[test]
fn log_growth_is_proportional_to_changes_not_store_size() {
    let (mut corpus, vfs) = logged_corpus();
    let pad = &mut corpus.system.pad;
    let snapshot_bytes = pad.save_xml().len() as u64;

    assert!(matches!(pad.commit(&vfs), Ok(CommitOutcome::Clean)));
    let base = pad.log().expect("logged").log_bytes();

    // A handful of bundle creations against a store holding hundreds of
    // marks and scraps: the committed frame must cost bytes on the
    // order of the delta, nowhere near the snapshot.
    for i in 0..5 {
        pad.create_bundle(&format!("delta {i}"), (i, i), 10, 10, None).expect("bundle");
    }
    let outcome = pad.commit(&vfs).expect("commit");
    assert!(matches!(outcome, CommitOutcome::Committed { .. }), "got {outcome:?}");
    let delta = pad.log().expect("logged").log_bytes() - base;
    assert!(delta > 0);
    assert!(
        delta * 10 < snapshot_bytes,
        "a 5-bundle commit cost {delta} log bytes against a {snapshot_bytes}-byte snapshot"
    );

    // Committing nothing costs nothing.
    let before = pad.log().expect("logged").log_bytes();
    assert!(matches!(pad.commit(&vfs), Ok(CommitOutcome::Clean)));
    assert_eq!(pad.log().expect("logged").log_bytes(), before);
}

#[test]
fn compaction_threshold_is_tunable_and_honoured() {
    let (mut corpus, vfs) = logged_corpus();
    let pad = &mut corpus.system.pad;

    // At the 1 MiB default a smoke-sized delta is nowhere near due.
    assert!(!pad.should_compact());

    pad.set_compact_threshold(256);
    let mut commits = 0;
    while !pad.should_compact() {
        pad.create_bundle(&format!("grow {commits}"), (1, 1), 10, 10, None).expect("bundle");
        pad.commit(&vfs).expect("commit");
        commits += 1;
        assert!(commits < 1_000, "log never crossed a 256-byte threshold");
    }

    pad.compact(&vfs).expect("compact");
    assert!(!pad.should_compact(), "compaction must reset the log below the threshold");

    // The compacted pad reopens with zero frames to replay.
    let manager = corpus.system.fresh_manager().expect("fresh manager");
    let (reopened, report) =
        PadSession::open_logged(&vfs, Path::new(PAD), manager).expect("reopen");
    assert_eq!(report.frames_replayed, 0, "a compacted log replays nothing");
    assert_eq!(
        reopened.dmi().bundles().len(),
        corpus.system.pad.dmi().bundles().len(),
        "compaction must preserve the store"
    );
}

#[test]
fn needs_full_snapshot_auto_compacts_into_a_durable_state() {
    let (mut corpus, vfs) = logged_corpus();
    let pad = &mut corpus.system.pad;
    pad.commit(&vfs).expect("baseline commit");

    // Undo across the commit boundary: the incremental path cannot
    // persist this, so commit() reports NeedsFullSnapshot and compacts
    // internally (the PadSession contract: on Ok the state is durable).
    pad.begin_op();
    pad.create_bundle("inside the op", (2, 2), 10, 10, None).expect("bundle");
    pad.commit(&vfs).expect("commit mid-op");
    assert!(pad.undo().expect("undo"), "there was a checkpoint to undo to");
    pad.create_bundle("after the undo", (3, 3), 10, 10, None).expect("bundle");
    let outcome = pad.commit(&vfs).expect("commit after boundary-crossing undo");
    assert_eq!(outcome, CommitOutcome::NeedsFullSnapshot);

    let expected_bundles = pad.dmi().bundles().len();
    let manager = corpus.system.fresh_manager().expect("fresh manager");
    let (reopened, report) =
        PadSession::open_logged(&vfs, Path::new(PAD), manager).expect("reopen");
    assert_eq!(report.frames_replayed, 0, "auto-compaction folded the log");
    assert_eq!(
        reopened.dmi().bundles().len(),
        expected_bundles,
        "the post-undo state must be what recovery returns"
    );
    assert!(
        reopened.dmi().check().is_conformant(),
        "the recovered store must satisfy the metamodel"
    );
}
