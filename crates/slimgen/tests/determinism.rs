//! The determinism guarantee at the acceptance scale: the quick profile
//! generates ≥ 1,000 documents / ≥ 100,000 marks, and the same seed
//! reproduces the corpus XML byte for byte and the trace outcome digest
//! exactly; a different seed produces neither.

use slimgen::corpus::{self, CorpusStats};
use slimgen::trace::{self, Driver, Mix};
use slimgen::{Digest, Profile};
use superimposed::slimio::MemVfs;

/// Generate the quick corpus, snapshot its XML, then replay the quick
/// trace against it (unlogged — commits fold as skips) and return every
/// determinism witness.
fn run_once(seed: u64) -> (CorpusStats, String, Digest, Digest) {
    let mut corpus = corpus::generate(Profile::Quick, seed);
    let xml = corpus.corpus_xml();
    let ops = trace::generate(seed, Profile::Quick.trace_ops(), Mix::Mixed);
    let mut driver = Driver::new(&corpus.system);
    let vfs = MemVfs::new();
    for op in &ops {
        driver.apply(&mut corpus.system, &corpus.mark_ids, &vfs, op);
    }
    (corpus.stats, xml, corpus.input_digest, driver.digest)
}

#[test]
fn quick_profile_is_seed_stable_at_acceptance_scale() {
    let (stats, xml_a, input_a, outcome_a) = run_once(0xC0FFEE);

    // The acceptance floor: hospital scale, not toy scale.
    assert!(stats.docs >= 1_000, "expected ≥ 1,000 documents, got {}", stats.docs);
    assert!(stats.marks >= 100_000, "expected ≥ 100,000 marks, got {}", stats.marks);

    let (stats_b, xml_b, input_b, outcome_b) = run_once(0xC0FFEE);
    assert_eq!(stats, stats_b);
    assert_eq!(input_a, input_b, "same seed must feed identical document content");
    assert_eq!(xml_a.len(), xml_b.len());
    assert_eq!(xml_a, xml_b, "same seed must serialize a byte-identical corpus");
    assert_eq!(outcome_a, outcome_b, "same seed must replay to the same outcome digest");
}

#[test]
fn different_seeds_diverge() {
    let (_, xml_a, input_a, outcome_a) = run_once(1);
    let (_, xml_b, input_b, outcome_b) = run_once(2);
    assert_ne!(input_a, input_b);
    assert_ne!(outcome_a, outcome_b);
    assert_ne!(xml_a, xml_b);
}
