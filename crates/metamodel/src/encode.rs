//! Encoding models and instances as TRIM triples, and decoding models
//! back out — "the metamodel makes explicit the constructs of the model,
//! their structural definitions, and their connections" (paper §4.3).

use crate::model::{Cardinality, ConnectorDef, ConnectorKind, ConstructDef, ConstructKind, ModelDef};
use crate::vocab;
use trim::{Atom, Triple, TriplePattern, TripleStore, Value};

/// Write a model definition into a store. Returns the model's resource
/// atom. Idempotent for identical definitions (triples are a set).
///
/// All triples land through one [`TripleStore::insert_all`] batch: the
/// interning pass builds the triple list, the store indexes it in one go.
pub fn encode_model(store: &mut TripleStore, model: &ModelDef) -> Atom {
    let model_atom = store.atom(&vocab::model_res(&model.name));
    let type_p = store.atom(vocab::TYPE);
    let name_p = store.atom(vocab::NAME);
    let mut batch: Vec<Triple> = Vec::new();
    let push = |batch: &mut Vec<Triple>, s: Atom, p: Atom, o: Value| {
        batch.push(Triple { subject: s, property: p, object: o });
    };
    let model_class = store.atom(vocab::MODEL);
    push(&mut batch, model_atom, type_p, Value::Resource(model_class));
    let name_v = store.literal_value(&model.name);
    push(&mut batch, model_atom, name_p, name_v);

    for c in model.constructs() {
        let c_atom = store.atom(&vocab::construct_res(&model.name, &c.name));
        let construct_class = store.atom(vocab::CONSTRUCT);
        push(&mut batch, c_atom, type_p, Value::Resource(construct_class));
        let v = store.literal_value(&c.name);
        push(&mut batch, c_atom, name_p, v);
        let p = store.atom(vocab::CONSTRUCT_KIND);
        let v = store.literal_value(c.kind.id());
        push(&mut batch, c_atom, p, v);
        let p = store.atom(vocab::IN_MODEL);
        push(&mut batch, c_atom, p, Value::Resource(model_atom));
    }

    for c in model.connectors() {
        let c_atom = store.atom(&vocab::connector_res(&model.name, &c.name));
        let connector_class = store.atom(vocab::CONNECTOR);
        push(&mut batch, c_atom, type_p, Value::Resource(connector_class));
        let v = store.literal_value(&c.name);
        push(&mut batch, c_atom, name_p, v);
        let p = store.atom(vocab::CONNECTOR_KIND);
        let v = store.literal_value(c.kind.id());
        push(&mut batch, c_atom, p, v);
        let p = store.atom(vocab::FROM);
        let from_atom = store.atom(&vocab::construct_res(&model.name, &c.from));
        push(&mut batch, c_atom, p, Value::Resource(from_atom));
        let p = store.atom(vocab::TO);
        let to_atom = store.atom(&vocab::construct_res(&model.name, &c.to));
        push(&mut batch, c_atom, p, Value::Resource(to_atom));
        let p = store.atom(vocab::CARDINALITY);
        let v = store.literal_value(c.cardinality.id());
        push(&mut batch, c_atom, p, v);
        let p = store.atom(vocab::IN_MODEL);
        push(&mut batch, c_atom, p, Value::Resource(model_atom));
    }
    store.insert_all(batch);
    model_atom
}

/// Errors from decoding a model out of a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    NoSuchModel { name: String },
    MissingProperty { resource: String, property: String },
    BadKind { resource: String, value: String },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NoSuchModel { name } => write!(f, "no model {name:?} in store"),
            DecodeError::MissingProperty { resource, property } => {
                write!(f, "{resource} is missing {property}")
            }
            DecodeError::BadKind { resource, value } => {
                write!(f, "{resource} has unrecognized kind {value:?}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Read a model definition back out of a store by name — proof that the
/// model level is really *stored*, not just mirrored in code.
pub fn decode_model(store: &TripleStore, name: &str) -> Result<ModelDef, DecodeError> {
    let model_atom = store
        .find_atom(&vocab::model_res(name))
        .ok_or_else(|| DecodeError::NoSuchModel { name: name.to_string() })?;
    let in_model = store
        .find_atom(vocab::IN_MODEL)
        .ok_or_else(|| DecodeError::NoSuchModel { name: name.to_string() })?;

    let members = store.select_sorted(
        &TriplePattern::default().with_property(in_model).with_object(Value::Resource(model_atom)),
    );

    let get_literal = |subject: Atom, property: &str| -> Result<String, DecodeError> {
        let p = store.find_atom(property).ok_or_else(|| DecodeError::MissingProperty {
            resource: store.resolve(subject).to_string(),
            property: property.to_string(),
        })?;
        store
            .object_of(subject, p)
            .and_then(|v| store.value_str(v).map(str::to_string))
            .ok_or_else(|| DecodeError::MissingProperty {
                resource: store.resolve(subject).to_string(),
                property: property.to_string(),
            })
    };
    let get_resource = |subject: Atom, property: &str| -> Result<Atom, DecodeError> {
        let p = store.find_atom(property).ok_or_else(|| DecodeError::MissingProperty {
            resource: store.resolve(subject).to_string(),
            property: property.to_string(),
        })?;
        match store.object_of(subject, p) {
            Some(Value::Resource(a)) => Ok(a),
            _ => Err(DecodeError::MissingProperty {
                resource: store.resolve(subject).to_string(),
                property: property.to_string(),
            }),
        }
    };

    let mut constructs: Vec<ConstructDef> = Vec::new();
    let mut connectors: Vec<ConnectorDef> = Vec::new();
    for t in members {
        let subject = t.subject;
        let res_name = store.resolve(subject).to_string();
        if res_name.starts_with(&format!("{}:", vocab::prefix::CONSTRUCT)) {
            let kind_text = get_literal(subject, vocab::CONSTRUCT_KIND)?;
            let kind = ConstructKind::from_id(&kind_text)
                .ok_or_else(|| DecodeError::BadKind { resource: res_name.clone(), value: kind_text })?;
            constructs.push(ConstructDef { name: get_literal(subject, vocab::NAME)?, kind });
        } else if res_name.starts_with(&format!("{}:", vocab::prefix::CONNECTOR)) {
            let kind_text = get_literal(subject, vocab::CONNECTOR_KIND)?;
            let kind = ConnectorKind::from_id(&kind_text)
                .ok_or_else(|| DecodeError::BadKind { resource: res_name.clone(), value: kind_text })?;
            let card_text = get_literal(subject, vocab::CARDINALITY)?;
            let cardinality = Cardinality::from_id(&card_text)
                .ok_or_else(|| DecodeError::BadKind { resource: res_name.clone(), value: card_text })?;
            let from_atom = get_resource(subject, vocab::FROM)?;
            let to_atom = get_resource(subject, vocab::TO)?;
            connectors.push(ConnectorDef {
                name: get_literal(subject, vocab::NAME)?,
                kind,
                from: strip_construct_prefix(store.resolve(from_atom), name),
                to: strip_construct_prefix(store.resolve(to_atom), name),
                cardinality,
            });
        }
    }
    constructs.sort_by(|a, b| a.name.cmp(&b.name));
    connectors.sort_by(|a, b| a.name.cmp(&b.name));
    let mut model = ModelDef::new(name);
    for c in constructs {
        model = model.construct(c.name, c.kind).expect("store-decoded constructs are unique");
    }
    for c in connectors {
        model = model
            .connector(c.name, c.kind, &c.from, &c.to, c.cardinality)
            .expect("store-decoded connectors reference stored constructs");
    }
    Ok(model)
}

fn strip_construct_prefix(resource: &str, model: &str) -> String {
    resource
        .strip_prefix(&format!("{}:{model}.", vocab::prefix::CONSTRUCT))
        .unwrap_or(resource)
        .to_string()
}

/// Instance-level helpers: create typed instances and set their
/// connector values. The DMI layer builds on these.
pub struct InstanceWriter<'s> {
    store: &'s mut TripleStore,
    model: String,
}

impl<'s> InstanceWriter<'s> {
    /// A writer for instances of `model` in `store`.
    pub fn new(store: &'s mut TripleStore, model: &ModelDef) -> Self {
        // The model must be present so instances have something to
        // conform to.
        encode_model(store, model);
        InstanceWriter { store, model: model.name.clone() }
    }

    /// Create an instance of a construct; returns its resource atom.
    pub fn create(&mut self, construct: &str) -> Atom {
        let id = self.store.fresh_resource(construct);
        let type_p = self.store.atom(vocab::TYPE);
        let c_atom = self.store.atom(&vocab::construct_res(&self.model, construct));
        self.store.insert(id, type_p, Value::Resource(c_atom));
        let conf_p = self.store.atom(vocab::CONFORMS_TO);
        self.store.insert(id, conf_p, Value::Resource(c_atom));
        id
    }

    /// Set (append) a literal connector value.
    pub fn set_literal(&mut self, instance: Atom, connector: &str, value: &str) {
        let p = self.store.atom(connector);
        let v = self.store.literal_value(value);
        self.store.insert(instance, p, v);
    }

    /// Replace the single literal value of a connector.
    pub fn replace_literal(&mut self, instance: Atom, connector: &str, value: &str) {
        let p = self.store.atom(connector);
        let v = self.store.literal_value(value);
        self.store.set_unique(instance, p, v);
    }

    /// Set (append) a resource connector value.
    pub fn set_link(&mut self, instance: Atom, connector: &str, target: Atom) {
        let p = self.store.atom(connector);
        self.store.insert(instance, p, Value::Resource(target));
    }

    /// The underlying store.
    pub fn store(&mut self) -> &mut TripleStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn encode_then_decode_is_identity_on_builtin_models() {
        for model in builtin::all_models() {
            let mut store = TripleStore::new();
            encode_model(&mut store, &model);
            let decoded = decode_model(&store, &model.name).unwrap();
            // Compare as sorted sets (decode sorts by name).
            let mut expect_constructs = model.constructs().to_vec();
            expect_constructs.sort_by(|a, b| a.name.cmp(&b.name));
            let mut expect_connectors = model.connectors().to_vec();
            expect_connectors.sort_by(|a, b| a.name.cmp(&b.name));
            assert_eq!(decoded.constructs(), expect_constructs.as_slice(), "{}", model.name);
            assert_eq!(decoded.connectors(), expect_connectors.as_slice(), "{}", model.name);
        }
    }

    #[test]
    fn encode_is_idempotent() {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        encode_model(&mut store, &model);
        let n = store.len();
        encode_model(&mut store, &model);
        assert_eq!(store.len(), n, "re-encoding must not grow the store");
    }

    #[test]
    fn decode_missing_model_errors() {
        let store = TripleStore::new();
        assert!(matches!(
            decode_model(&store, "ghost"),
            Err(DecodeError::NoSuchModel { .. })
        ));
    }

    #[test]
    fn multiple_models_coexist_in_one_store() {
        let mut store = TripleStore::new();
        for model in builtin::all_models() {
            encode_model(&mut store, &model);
        }
        for model in builtin::all_models() {
            assert!(decode_model(&store, &model.name).is_ok(), "{}", model.name);
        }
    }

    #[test]
    fn instance_writer_creates_typed_instances() {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let b = w.create("Bundle");
        w.set_literal(b, "bundleName", "John Smith");
        let s = w.create("Scrap");
        w.set_link(b, "bundleContent", s);

        let type_p = store.find_atom(vocab::TYPE).unwrap();
        let bundle_c = store.find_atom(&vocab::construct_res("bundle-scrap", "Bundle")).unwrap();
        assert_eq!(store.object_of(b, type_p), Some(Value::Resource(bundle_c)));
        let name_p = store.find_atom("bundleName").unwrap();
        assert_eq!(
            store.object_of(b, name_p).and_then(|v| store.value_str(v).map(str::to_string)),
            Some("John Smith".to_string())
        );
    }

    #[test]
    fn replace_literal_is_single_valued() {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let b = w.create("Bundle");
        w.replace_literal(b, "bundleName", "one");
        w.replace_literal(b, "bundleName", "two");
        let p = store.find_atom("bundleName").unwrap();
        let hits = store.select(&TriplePattern::default().with_subject(b).with_property(p));
        assert_eq!(hits.len(), 1);
        assert_eq!(store.value_str(hits[0].object), Some("two"));
    }

    #[test]
    fn instances_roundtrip_through_xml_with_their_model() {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let b = w.create("Bundle");
        w.set_literal(b, "bundleName", "Rounds");
        let xml = store.to_xml();
        let reloaded = TripleStore::from_xml(&xml).unwrap();
        assert!(decode_model(&reloaded, "bundle-scrap").is_ok());
        let b2 = reloaded.find_atom(store.resolve(b)).unwrap();
        let p = reloaded.find_atom("bundleName").unwrap();
        assert!(reloaded.object_of(b2, p).is_some());
    }
}
