//! Rendering model definitions as UML-style text — regenerating the
//! *form* of paper Figure 3 ("SLIMPad's information model … represented
//! in UML") from the stored model itself.

use crate::model::{ConnectorKind, ConstructKind, ModelDef};

impl ModelDef {
    /// Render the model as UML-ish ASCII: one box per structural
    /// construct listing its attribute connectors (those targeting
    /// literal/mark constructs), then association lines for
    /// construct-to-construct connectors. Deterministic output.
    pub fn to_uml(&self) -> String {
        let mut out = format!("model {}\n", self.name);
        let mut structural: Vec<&str> = self
            .constructs()
            .iter()
            .filter(|c| c.kind == ConstructKind::Construct)
            .map(|c| c.name.as_str())
            .collect();
        structural.sort_unstable();

        for name in &structural {
            // Attribute connectors: declared directly on this construct
            // (not inherited) and targeting a leaf construct.
            let mut attrs: Vec<String> = self
                .connectors()
                .iter()
                .filter(|c| c.kind != ConnectorKind::Generalization)
                .filter(|c| &c.from == name)
                .filter(|c| {
                    self.find_construct(&c.to)
                        .map(|t| t.kind != ConstructKind::Construct)
                        .unwrap_or(false)
                })
                .map(|c| format!("{} : {} [{}]", c.name, c.to, c.cardinality))
                .collect();
            attrs.sort();
            let width = attrs
                .iter()
                .map(String::len)
                .chain(std::iter::once(name.len()))
                .max()
                .unwrap_or(0)
                + 2;
            let line = "-".repeat(width);
            out.push_str(&format!("+{line}+\n"));
            out.push_str(&format!("| {:width$}|\n", name, width = width - 1));
            out.push_str(&format!("+{line}+\n"));
            for a in &attrs {
                out.push_str(&format!("| {:width$}|\n", a, width = width - 1));
            }
            out.push_str(&format!("+{line}+\n"));
        }

        let mut associations: Vec<String> = self
            .connectors()
            .iter()
            .filter(|c| {
                self.find_construct(&c.to)
                    .map(|t| t.kind == ConstructKind::Construct)
                    .unwrap_or(false)
            })
            .map(|c| match c.kind {
                ConnectorKind::Generalization => {
                    format!("{} --|> {}  ({})", c.from, c.to, c.name)
                }
                ConnectorKind::Conformance => {
                    format!("{} ..> {}  ({}, {})", c.from, c.to, c.name, c.cardinality)
                }
                ConnectorKind::Connector => {
                    format!("{} --> {}  ({}, {})", c.from, c.to, c.name, c.cardinality)
                }
            })
            .collect();
        associations.sort();
        if !associations.is_empty() {
            out.push('\n');
            for a in associations {
                out.push_str(&a);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builtin;

    #[test]
    fn bundle_scrap_uml_reproduces_figure_3_content() {
        let uml = builtin::bundle_scrap().to_uml();
        // The four entity boxes.
        for entity in ["SlimPad", "Bundle", "Scrap", "MarkHandle"] {
            assert!(uml.contains(&format!("| {entity}")), "{uml}");
        }
        // Figure 3's attributes with their types.
        assert!(uml.contains("padName : String [1..1]"), "{uml}");
        assert!(uml.contains("bundlePos : Coordinate [1..1]"), "{uml}");
        assert!(uml.contains("bundleHeight : Number [1..1]"), "{uml}");
        assert!(uml.contains("markId : MarkRef [1..1]"), "{uml}");
        // Figure 3's associations with cardinalities.
        assert!(uml.contains("SlimPad --> Bundle  (rootBundle, 0..1)"), "{uml}");
        assert!(uml.contains("Bundle --> Scrap  (bundleContent, 0..*)"), "{uml}");
        assert!(uml.contains("Bundle --> Bundle  (nestedBundle, 0..*)"), "{uml}");
        assert!(uml.contains("Scrap --> MarkHandle  (scrapMark, 1..*)"), "{uml}");
    }

    #[test]
    fn generalization_and_conformance_use_distinct_arrows() {
        let uml = builtin::object_like().to_uml();
        assert!(uml.contains("Class --|> Class  (subClassOf)"), "{uml}");
        assert!(uml.contains("Object ..> Class  (instanceOf, 1..1)"), "{uml}");
    }

    #[test]
    fn output_is_deterministic() {
        let a = builtin::xlink_like().to_uml();
        let b = builtin::xlink_like().to_uml();
        assert_eq!(a, b);
    }

    #[test]
    fn decoded_models_render_identically() {
        // Encode to triples, decode, render: the stored model carries
        // everything the diagram needs.
        let model = builtin::bundle_scrap();
        let mut store = trim::TripleStore::new();
        crate::encode::encode_model(&mut store, &model);
        let decoded = crate::encode::decode_model(&store, "bundle-scrap").unwrap();
        assert_eq!(decoded.to_uml(), model.to_uml());
    }
}
