//! Conformance checking: does instance data in a store obey its model?
//!
//! The metamodel makes schema-instance relationships explicit
//! (conformance connectors), which is what makes checking possible at
//! all: every instance resource carries `slim:conformsTo` pointing at its
//! construct, and every construct declares its connectors and their
//! cardinalities.

use crate::model::{Cardinality, ConnectorKind, ConstructKind, ModelDef};
use crate::vocab;
use trim::{Atom, TriplePattern, TripleStore, Value};
use std::collections::HashSet;

/// One conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An instance claims conformance to a construct the model lacks.
    UnknownConstruct { instance: String, construct: String },
    /// An instance conforms to a literal or mark construct (only
    /// structural constructs have instances).
    LeafInstance { instance: String, construct: String },
    /// A connector's value count violates its cardinality.
    CardinalityViolation {
        instance: String,
        connector: String,
        expected: Cardinality,
        found: usize,
    },
    /// A literal-targeting connector holds a resource, or vice versa.
    WrongValueKind { instance: String, connector: String },
    /// A construct-targeting connector points at an instance of the
    /// wrong construct.
    WrongTargetType { instance: String, connector: String, target: String },
    /// An instance carries a property its construct does not declare.
    UndeclaredProperty { instance: String, property: String },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnknownConstruct { instance, construct } => {
                write!(f, "{instance}: conforms to unknown construct {construct:?}")
            }
            Violation::LeafInstance { instance, construct } => {
                write!(f, "{instance}: {construct:?} is a leaf construct and cannot have instances")
            }
            Violation::CardinalityViolation { instance, connector, expected, found } => write!(
                f,
                "{instance}: connector {connector:?} expects {expected} values, found {found}"
            ),
            Violation::WrongValueKind { instance, connector } => {
                write!(f, "{instance}: connector {connector:?} holds the wrong kind of value")
            }
            Violation::WrongTargetType { instance, connector, target } => {
                write!(f, "{instance}: connector {connector:?} points at ill-typed {target}")
            }
            Violation::UndeclaredProperty { instance, property } => {
                write!(f, "{instance}: undeclared property {property:?}")
            }
        }
    }
}

/// The result of checking a store against a model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Number of instances checked.
    pub instances: usize,
    /// All violations found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// True when no violations were found.
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check every instance of `model` in `store`.
///
/// An *instance* is any resource with a `slim:conformsTo` triple pointing
/// at a construct resource of this model. "Schema-later" data entry
/// (paper §1) falls out naturally: untyped resources are simply not
/// checked.
pub fn check_conformance(store: &TripleStore, model: &ModelDef) -> ConformanceReport {
    let mut report = ConformanceReport::default();
    let Some(conforms_p) = store.find_atom(vocab::CONFORMS_TO) else {
        return report; // no typed instances at all
    };
    let construct_prefix = format!("{}:{}.", vocab::prefix::CONSTRUCT, model.name);

    // Instance → construct-name, for this model only.
    let mut instances: Vec<(Atom, String)> = Vec::new();
    for t in store.select_sorted(&TriplePattern::default().with_property(conforms_p)) {
        if let Value::Resource(c) = t.object {
            let c_name = store.resolve(c);
            if let Some(short) = c_name.strip_prefix(&construct_prefix) {
                instances.push((t.subject, short.to_string()));
            }
        }
    }
    report.instances = instances.len();

    // Constructs assignable to each target via generalization edges:
    // X assignable-to Y if X == Y or X --generalization--> … --> Y.
    let assignable_to = |target: &str, candidate: &str| -> bool {
        if target == candidate {
            return true;
        }
        let mut frontier = vec![candidate.to_string()];
        let mut seen: HashSet<String> = frontier.iter().cloned().collect();
        while let Some(cur) = frontier.pop() {
            for conn in model.connectors() {
                if conn.kind == ConnectorKind::Generalization && conn.from == cur {
                    if conn.to == target {
                        return true;
                    }
                    if seen.insert(conn.to.clone()) {
                        frontier.push(conn.to.clone());
                    }
                }
            }
        }
        false
    };

    let construct_of = |resource: Atom| -> Option<String> {
        store.object_of(resource, conforms_p).and_then(|v| match v {
            Value::Resource(c) => {
                store.resolve(c).strip_prefix(&construct_prefix).map(str::to_string)
            }
            Value::Literal(_) => None,
        })
    };

    for (instance, construct_name) in &instances {
        let instance_name = store.resolve(*instance).to_string();
        let Some(construct) = model.find_construct(construct_name) else {
            report.violations.push(Violation::UnknownConstruct {
                instance: instance_name,
                construct: construct_name.clone(),
            });
            continue;
        };
        if construct.kind != ConstructKind::Construct {
            report.violations.push(Violation::LeafInstance {
                instance: instance_name,
                construct: construct_name.clone(),
            });
            continue;
        }
        let declared = model.connectors_from(construct_name);
        // Cardinality + value checks per declared connector.
        for conn in &declared {
            let Some(p) = store.find_atom(&conn.name) else {
                if !conn.cardinality.admits(0) {
                    report.violations.push(Violation::CardinalityViolation {
                        instance: instance_name.clone(),
                        connector: conn.name.clone(),
                        expected: conn.cardinality,
                        found: 0,
                    });
                }
                continue;
            };
            let values =
                store.select_sorted(&TriplePattern::default().with_subject(*instance).with_property(p));
            if !conn.cardinality.admits(values.len()) {
                report.violations.push(Violation::CardinalityViolation {
                    instance: instance_name.clone(),
                    connector: conn.name.clone(),
                    expected: conn.cardinality,
                    found: values.len(),
                });
            }
            let target_kind = model
                .find_construct(&conn.to)
                .map(|c| c.kind)
                .unwrap_or(ConstructKind::Construct);
            for v in &values {
                match (target_kind, v.object) {
                    (ConstructKind::Literal | ConstructKind::Mark, Value::Literal(_)) => {}
                    (ConstructKind::Literal | ConstructKind::Mark, Value::Resource(_)) => {
                        report.violations.push(Violation::WrongValueKind {
                            instance: instance_name.clone(),
                            connector: conn.name.clone(),
                        });
                    }
                    (ConstructKind::Construct, Value::Literal(_)) => {
                        report.violations.push(Violation::WrongValueKind {
                            instance: instance_name.clone(),
                            connector: conn.name.clone(),
                        });
                    }
                    (ConstructKind::Construct, Value::Resource(target)) => {
                        match construct_of(target) {
                            Some(tc) if assignable_to(&conn.to, &tc) => {}
                            _ => report.violations.push(Violation::WrongTargetType {
                                instance: instance_name.clone(),
                                connector: conn.name.clone(),
                                target: store.resolve(target).to_string(),
                            }),
                        }
                    }
                }
            }
        }
        // Undeclared-property check.
        let declared_names: HashSet<&str> =
            declared.iter().map(|c| c.name.as_str()).collect();
        let reserved = [vocab::TYPE, vocab::CONFORMS_TO];
        for t in store.select_sorted(&TriplePattern::default().with_subject(*instance)) {
            let p_name = store.resolve(t.property);
            if reserved.contains(&p_name) || declared_names.contains(p_name) {
                continue;
            }
            report.violations.push(Violation::UndeclaredProperty {
                instance: instance_name.clone(),
                property: p_name.to_string(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::encode::InstanceWriter;

    fn valid_pad_store() -> (TripleStore, Atom) {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let pad = w.create("SlimPad");
        w.set_literal(pad, "padName", "Rounds");
        let bundle = w.create("Bundle");
        w.set_literal(bundle, "bundleName", "John Smith");
        w.set_literal(bundle, "bundlePos", "10,10");
        w.set_literal(bundle, "bundleHeight", "200");
        w.set_literal(bundle, "bundleWidth", "300");
        w.set_link(pad, "rootBundle", bundle);
        let scrap = w.create("Scrap");
        w.set_literal(scrap, "scrapName", "Lasix 40");
        w.set_literal(scrap, "scrapPos", "20,40");
        let handle = w.create("MarkHandle");
        w.set_literal(handle, "markId", "mark:0");
        w.set_link(scrap, "scrapMark", handle);
        w.set_link(bundle, "bundleContent", scrap);
        (store, bundle)
    }

    #[test]
    fn valid_instances_conform() {
        let (store, _) = valid_pad_store();
        let report = check_conformance(&store, &builtin::bundle_scrap());
        assert_eq!(report.instances, 4);
        assert!(report.is_conformant(), "{:?}", report.violations);
    }

    #[test]
    fn missing_required_connector_is_flagged() {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let scrap = w.create("Scrap");
        w.set_literal(scrap, "scrapName", "nameless position");
        // Missing scrapPos (1..1) and scrapMark (1..*).
        let report = check_conformance(&store, &model);
        let card_violations: Vec<&Violation> = report
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::CardinalityViolation { .. }))
            .collect();
        assert_eq!(card_violations.len(), 2, "{:?}", report.violations);
    }

    #[test]
    fn too_many_values_for_single_valued_connector() {
        let (mut store, bundle) = valid_pad_store();
        let p = store.atom("bundleName");
        let v = store.literal_value("Second Name");
        store.insert(bundle, p, v);
        let report = check_conformance(&store, &builtin::bundle_scrap());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::CardinalityViolation { connector, found: 2, .. } if connector == "bundleName"
        )));
    }

    #[test]
    fn literal_connector_with_resource_value_is_flagged() {
        let (mut store, bundle) = valid_pad_store();
        let p = store.atom("bundleHeight");
        store.remove_matching(&TriplePattern::default().with_subject(bundle).with_property(p));
        let other = store.atom("rogue:1");
        store.insert(bundle, p, Value::Resource(other));
        let report = check_conformance(&store, &builtin::bundle_scrap());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::WrongValueKind { connector, .. } if connector == "bundleHeight"
        )));
    }

    #[test]
    fn construct_connector_with_wrong_target_type_is_flagged() {
        let model = builtin::bundle_scrap();
        let (mut store, bundle) = valid_pad_store();
        let mut w = InstanceWriter::new(&mut store, &model);
        let scrap = w.create("Scrap");
        w.set_literal(scrap, "scrapName", "s");
        w.set_literal(scrap, "scrapPos", "0,0");
        let handle = w.create("MarkHandle");
        w.set_literal(handle, "markId", "mark:9");
        w.set_link(scrap, "scrapMark", handle);
        // Nested "bundle" that is actually a scrap: type error.
        w.set_link(bundle, "nestedBundle", scrap);
        let report = check_conformance(&store, &model);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::WrongTargetType { connector, .. } if connector == "nestedBundle"
        )), "{:?}", report.violations);
    }

    #[test]
    fn undeclared_property_is_flagged() {
        let (mut store, bundle) = valid_pad_store();
        let p = store.atom("favoriteColor");
        let v = store.literal_value("teal");
        store.insert(bundle, p, v);
        let report = check_conformance(&store, &builtin::bundle_scrap());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::UndeclaredProperty { property, .. } if property == "favoriteColor"
        )));
    }

    #[test]
    fn generalization_allows_specialized_targets() {
        // xlink: Arc.arcFrom targets Locator (a mark leaf) — use the
        // object model instead: build a Class hierarchy and check an
        // Object typed to the subclass is accepted where the superclass
        // is expected. The object model has no construct-to-construct
        // connector with a specializable target, so craft a tiny model.
        use crate::model::{Cardinality, ConnectorKind, ConstructKind, ModelDef};
        let model = ModelDef::new("zoo")
            .construct("Pen", ConstructKind::Construct)
            .unwrap()
            .construct("Animal", ConstructKind::Construct)
            .unwrap()
            .construct("Bird", ConstructKind::Construct)
            .unwrap()
            .connector("holds", ConnectorKind::Connector, "Pen", "Animal", Cardinality::Many)
            .unwrap()
            .connector("isa", ConnectorKind::Generalization, "Bird", "Animal", Cardinality::One)
            .unwrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let pen = w.create("Pen");
        let bird = w.create("Bird");
        w.set_link(pen, "holds", bird);
        let report = check_conformance(&store, &model);
        assert!(report.is_conformant(), "{:?}", report.violations);
    }

    #[test]
    fn leaf_instances_are_flagged() {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        w.create("String"); // literals cannot have instances
        let report = check_conformance(&store, &model);
        assert!(matches!(report.violations.as_slice(), [Violation::LeafInstance { .. }]));
    }

    #[test]
    fn empty_store_is_vacuously_conformant() {
        let report = check_conformance(&TripleStore::new(), &builtin::bundle_scrap());
        assert_eq!(report.instances, 0);
        assert!(report.is_conformant());
    }

    #[test]
    fn instances_of_other_models_are_ignored() {
        let (mut store, _) = valid_pad_store();
        let other = builtin::relational_like();
        let mut w = InstanceWriter::new(&mut store, &other);
        let table = w.create("Table");
        w.set_literal(table, "tableName", "meds");
        // Table lacks hasAttribute (1..*): violates relational, but the
        // bundle-scrap check must not see it.
        let report = check_conformance(&store, &builtin::bundle_scrap());
        assert!(report.is_conformant(), "{:?}", report.violations);
        let rel_report = check_conformance(&store, &other);
        assert!(!rel_report.is_conformant());
    }
}
