//! `metamodel` — the SLIM metamodel: model-definition on top of triples.
//!
//! The SLIM Store is "flexible at the data-model level by providing
//! storage of superimposed information for various models" (paper §4.3).
//! That flexibility comes from a **metamodel** whose goal is "a basic set
//! of abstractions to define model constructs and relationships (called
//! connectors)". The paper enumerates the primitive set precisely, and
//! this crate implements exactly those primitives:
//!
//! * **constructs**, "which define a unit of structure" —
//!   [`ConstructKind::Construct`];
//! * **literal constructs** "for primitive type definitions" —
//!   [`ConstructKind::Literal`];
//! * **mark constructs** "for delineating marks" —
//!   [`ConstructKind::Mark`];
//! * **connectors**, "which describe basic relationships" —
//!   [`ConnectorKind::Connector`];
//! * **conformance connectors** "for schema-instance relationships" —
//!   [`ConnectorKind::Conformance`];
//! * **generalization connectors** "for specialization relationships" —
//!   [`ConnectorKind::Generalization`].
//!
//! Models ([`ModelDef`]), their instances, and the metamodel vocabulary
//! itself are all encoded as TRIM triples ([`encode`]), so "we can
//! describe superimposed information from various models uniformly using
//! RDF triples" and exchange them through TRIM's XML serialization.
//!
//! The crate ships the paper's named example models ([`builtin`]): the
//! Bundle-Scrap model of SLIMPad, a relational-like model, an
//! object-oriented-like model, and Topic-Map-like and XLink-like models —
//! the model space §4.3 and §5 discuss. [`conformance`] checks instance
//! data against a model; [`mapping`] implements the model-to-model and
//! schema-to-schema transformations of the paper's reference \[4\].

pub mod builtin;
pub mod conformance;
pub mod describe;
pub mod encode;
pub mod mapping;
pub mod model;
pub mod vocab;

pub use conformance::{check_conformance, ConformanceReport, Violation};
pub use mapping::{apply_mapping, Mapping};
pub use model::{
    Cardinality, ConnectorDef, ConnectorKind, ConstructDef, ConstructKind, ModelDef,
};
