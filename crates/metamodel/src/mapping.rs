//! Cross-model and cross-schema mappings.
//!
//! "We can leverage the generic representation directly, by defining
//! mappings between superimposed models, including model-to-model,
//! schema-to-schema and even schema-to-model mappings" (paper §4.3,
//! following reference \[4\]). A [`Mapping`] renames constructs and
//! connectors between two models; [`apply_mapping`] translates instance
//! data into a fresh store in the target model's vocabulary.

use crate::encode::encode_model;
use crate::model::{ConstructKind, ModelDef};
use crate::vocab;
use std::collections::HashMap;
use trim::{TriplePattern, TripleStore, Value};

/// A construct/connector renaming between two models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    pub name: String,
    /// `(source construct, target construct)` pairs.
    pub construct_map: Vec<(String, String)>,
    /// `(source connector, target connector)` pairs.
    pub connector_map: Vec<(String, String)>,
}

/// Errors from validating or applying a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    UnknownSourceConstruct { name: String },
    UnknownTargetConstruct { name: String },
    UnknownSourceConnector { name: String },
    UnknownTargetConnector { name: String },
    /// Mapped constructs disagree in kind (e.g. mark → literal is fine,
    /// construct → literal is not).
    KindClash { source: String, target: String },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::UnknownSourceConstruct { name } => {
                write!(f, "mapping names unknown source construct {name:?}")
            }
            MappingError::UnknownTargetConstruct { name } => {
                write!(f, "mapping names unknown target construct {name:?}")
            }
            MappingError::UnknownSourceConnector { name } => {
                write!(f, "mapping names unknown source connector {name:?}")
            }
            MappingError::UnknownTargetConnector { name } => {
                write!(f, "mapping names unknown target connector {name:?}")
            }
            MappingError::KindClash { source, target } => {
                write!(f, "constructs {source:?} and {target:?} have incompatible kinds")
            }
        }
    }
}

impl std::error::Error for MappingError {}

impl Mapping {
    /// A mapping with no entries.
    pub fn new(name: impl Into<String>) -> Self {
        Mapping { name: name.into(), construct_map: Vec::new(), connector_map: Vec::new() }
    }

    /// Map a source construct to a target construct.
    pub fn construct(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.construct_map.push((from.into(), to.into()));
        self
    }

    /// Map a source connector to a target connector.
    pub fn connector(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.connector_map.push((from.into(), to.into()));
        self
    }

    /// Check every entry against the two models.
    pub fn validate(&self, from: &ModelDef, to: &ModelDef) -> Result<(), MappingError> {
        for (s, t) in &self.construct_map {
            let sc = from
                .find_construct(s)
                .ok_or_else(|| MappingError::UnknownSourceConstruct { name: s.clone() })?;
            let tc = to
                .find_construct(t)
                .ok_or_else(|| MappingError::UnknownTargetConstruct { name: t.clone() })?;
            let compatible = match (sc.kind, tc.kind) {
                (a, b) if a == b => true,
                // A mark can degrade to a literal (the id string), but a
                // structural construct cannot become a leaf.
                (ConstructKind::Mark, ConstructKind::Literal) => true,
                _ => false,
            };
            if !compatible {
                return Err(MappingError::KindClash { source: s.clone(), target: t.clone() });
            }
        }
        for (s, t) in &self.connector_map {
            from.find_connector(s)
                .ok_or_else(|| MappingError::UnknownSourceConnector { name: s.clone() })?;
            to.find_connector(t)
                .ok_or_else(|| MappingError::UnknownTargetConnector { name: t.clone() })?;
        }
        Ok(())
    }
}

/// Translate all instances of `from` in `src` into a new store in `to`'s
/// vocabulary. Unmapped constructs' instances and unmapped connectors'
/// triples are dropped (a mapping is a projection, not a guarantee of
/// completeness); mapped ones keep their resource identities.
pub fn apply_mapping(
    src: &TripleStore,
    mapping: &Mapping,
    from: &ModelDef,
    to: &ModelDef,
) -> Result<TripleStore, MappingError> {
    mapping.validate(from, to)?;
    let construct_map: HashMap<&str, &str> =
        mapping.construct_map.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    let connector_map: HashMap<&str, &str> =
        mapping.connector_map.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();

    let mut out = TripleStore::new();
    encode_model(&mut out, to);

    let Some(conforms_p) = src.find_atom(vocab::CONFORMS_TO) else {
        return Ok(out);
    };
    let src_prefix = format!("{}:{}.", vocab::prefix::CONSTRUCT, from.name);

    // Which source instances are mapped, and to which target construct?
    // BTreeMap: output stores must be deterministic regardless of hash
    // seeds, so canonical serialization stays canonical across runs.
    let mut mapped_instances: std::collections::BTreeMap<trim::Atom, &str> = Default::default();
    for t in src.select_sorted(&TriplePattern::default().with_property(conforms_p)) {
        if let Value::Resource(c) = t.object {
            if let Some(short) = src.resolve(c).strip_prefix(&src_prefix) {
                if let Some(target) = construct_map.get(short) {
                    mapped_instances.insert(t.subject, target);
                }
            }
        }
    }

    let type_str = vocab::TYPE.to_string();
    let conforms_str = vocab::CONFORMS_TO.to_string();
    for (&instance, &target_construct) in &mapped_instances {
        let inst_name = src.resolve(instance).to_string();
        let inst_atom = out.atom(&inst_name);
        let c_atom = out.atom(&vocab::construct_res(&to.name, target_construct));
        let type_p = out.atom(&type_str);
        out.insert(inst_atom, type_p, Value::Resource(c_atom));
        let conf_p = out.atom(&conforms_str);
        out.insert(inst_atom, conf_p, Value::Resource(c_atom));
        for t in src.select_sorted(&TriplePattern::default().with_subject(instance)) {
            let p_name = src.resolve(t.property);
            let Some(&target_conn) = connector_map.get(p_name) else {
                continue;
            };
            let p = out.atom(target_conn);
            match t.object {
                Value::Literal(a) => {
                    let text = src.resolve(a).to_string();
                    let v = out.literal_value(&text);
                    out.insert(inst_atom, p, v);
                }
                Value::Resource(a) => {
                    // Only keep links whose target is itself mapped.
                    if mapped_instances.contains_key(&a) {
                        let name = src.resolve(a).to_string();
                        let target = out.atom(&name);
                        out.insert(inst_atom, p, Value::Resource(target));
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::conformance::check_conformance;
    use crate::encode::InstanceWriter;

    /// Bundle-Scrap → Topic-Map: bundles become topics, scrap marks
    /// become occurrences — the flagship cross-model mapping.
    fn bundle_to_topic_mapping() -> Mapping {
        Mapping::new("bundles-as-topics")
            .construct("Bundle", "Topic")
            .construct("Scrap", "Topic")
            .connector("bundleName", "topicName")
            .connector("scrapName", "topicName")
            .connector("nestedBundle", "relatedTo")
    }

    fn pad_store() -> TripleStore {
        let model = builtin::bundle_scrap();
        let mut store = TripleStore::new();
        let mut w = InstanceWriter::new(&mut store, &model);
        let b1 = w.create("Bundle");
        w.set_literal(b1, "bundleName", "John Smith");
        w.set_literal(b1, "bundlePos", "0,0");
        w.set_literal(b1, "bundleHeight", "100");
        w.set_literal(b1, "bundleWidth", "100");
        let b2 = w.create("Bundle");
        w.set_literal(b2, "bundleName", "Electrolyte");
        w.set_literal(b2, "bundlePos", "10,10");
        w.set_literal(b2, "bundleHeight", "50");
        w.set_literal(b2, "bundleWidth", "50");
        w.set_link(b1, "nestedBundle", b2);
        let s = w.create("Scrap");
        w.set_literal(s, "scrapName", "Na 140");
        w.set_literal(s, "scrapPos", "5,5");
        let h = w.create("MarkHandle");
        w.set_literal(h, "markId", "mark:0");
        w.set_link(s, "scrapMark", h);
        w.set_link(b2, "bundleContent", s);
        store
    }

    #[test]
    fn mapping_validates_against_both_models() {
        let m = bundle_to_topic_mapping();
        assert!(m.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()).is_ok());

        let bad = Mapping::new("bad").construct("Ghost", "Topic");
        assert!(matches!(
            bad.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()),
            Err(MappingError::UnknownSourceConstruct { .. })
        ));
        let bad = Mapping::new("bad").construct("Bundle", "Ghost");
        assert!(matches!(
            bad.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()),
            Err(MappingError::UnknownTargetConstruct { .. })
        ));
        let bad = Mapping::new("bad").connector("bundleName", "ghost");
        assert!(matches!(
            bad.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()),
            Err(MappingError::UnknownTargetConnector { .. })
        ));
        // Construct (structural) → String (literal) clashes.
        let bad = Mapping::new("bad").construct("Bundle", "String");
        assert!(matches!(
            bad.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()),
            Err(MappingError::KindClash { .. })
        ));
        // Mark → literal degradation is allowed.
        let ok = Mapping::new("ok").construct("MarkRef", "String");
        assert!(ok.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()).is_ok());
    }

    #[test]
    fn applied_mapping_produces_conformant_target_instances() {
        let src = pad_store();
        let mapping = bundle_to_topic_mapping();
        let out = apply_mapping(&src, &mapping, &builtin::bundle_scrap(), &builtin::topic_map_like())
            .unwrap();
        // Two bundles and a scrap became three topics.
        let conf = out.find_atom(vocab::CONFORMS_TO).unwrap();
        let topic_c = out.find_atom("construct:topic-map.Topic").unwrap();
        let topics = out.select(
            &TriplePattern::default().with_property(conf).with_object(Value::Resource(topic_c)),
        );
        assert_eq!(topics.len(), 3);
        // Names translated.
        let name_p = out.find_atom("topicName").unwrap();
        let names: Vec<String> = out
            .select_sorted(&TriplePattern::default().with_property(name_p))
            .iter()
            .filter_map(|t| out.value_str(t.object).map(str::to_string))
            .collect();
        assert!(names.contains(&"John Smith".to_string()), "{names:?}");
        assert!(names.contains(&"Na 140".to_string()), "{names:?}");
        // nestedBundle edge became a member edge between mapped resources.
        let member_p = out.find_atom("relatedTo").unwrap();
        assert_eq!(out.count(&TriplePattern::default().with_property(member_p)), 1);
        // Target instances conform to the topic-map model. (topicName is
        // 1..*, member 1..*: association instances don't exist here, so
        // only topics are checked.)
        let report = check_conformance(&out, &builtin::topic_map_like());
        assert!(report.is_conformant(), "{:?}", report.violations);
    }

    #[test]
    fn unmapped_content_is_dropped() {
        let src = pad_store();
        let mapping = Mapping::new("bundles-only")
            .construct("Bundle", "Topic")
            .connector("bundleName", "topicName");
        let out = apply_mapping(&src, &mapping, &builtin::bundle_scrap(), &builtin::topic_map_like())
            .unwrap();
        // Scraps and mark handles don't appear.
        assert!(out.find_atom("scrapName").is_none());
        assert!(out.find_atom("markId").is_none());
        // Positions were never mapped.
        assert!(out.find_atom("bundlePos").is_none());
    }

    #[test]
    fn links_to_unmapped_targets_are_dropped() {
        let src = pad_store();
        // Map bundles and nestedBundle but not scraps: bundleContent maps
        // to member, but its scrap targets are unmapped → edge dropped.
        let mapping = Mapping::new("partial")
            .construct("Bundle", "Topic")
            .connector("bundleName", "topicName")
            .connector("bundleContent", "relatedTo");
        let out = apply_mapping(&src, &mapping, &builtin::bundle_scrap(), &builtin::topic_map_like())
            .unwrap();
        let member_p = out.find_atom("relatedTo");
        let count = member_p
            .map(|p| out.count(&TriplePattern::default().with_property(p)))
            .unwrap_or(0);
        assert_eq!(count, 0, "bundleContent pointed only at unmapped scraps");
    }

    #[test]
    fn empty_source_yields_model_only_target() {
        let src = TripleStore::new();
        let mapping = bundle_to_topic_mapping();
        let out = apply_mapping(&src, &mapping, &builtin::bundle_scrap(), &builtin::topic_map_like())
            .unwrap();
        // Only the encoded target model is present.
        assert!(crate::encode::decode_model(&out, "topic-map").is_ok());
        let conf = out.find_atom(vocab::CONFORMS_TO);
        assert!(conf.is_none() || out.count(&TriplePattern::default().with_property(conf.unwrap())) == 0);
    }
}
