//! In-memory model definitions: the unit the metamodel describes.

use std::fmt;

/// The three construct primitives of the metamodel (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstructKind {
    /// "constructs, which define a unit of structure" — entity-like.
    Construct,
    /// "literal constructs for primitive type definitions".
    Literal,
    /// "mark constructs for delineating marks" — values are mark ids
    /// resolved through the Mark Manager.
    Mark,
}

impl ConstructKind {
    /// Stable identifier used in the triple encoding.
    pub fn id(self) -> &'static str {
        match self {
            ConstructKind::Construct => "construct",
            ConstructKind::Literal => "literal",
            ConstructKind::Mark => "mark",
        }
    }

    /// Parse a stable identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        Some(match id {
            "construct" => ConstructKind::Construct,
            "literal" => ConstructKind::Literal,
            "mark" => ConstructKind::Mark,
            _ => return None,
        })
    }
}

/// The three connector primitives of the metamodel (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectorKind {
    /// "connectors, which describe basic relationships".
    Connector,
    /// "conformance connectors for schema-instance relationships".
    Conformance,
    /// "generalization connectors for specialization relationships".
    Generalization,
}

impl ConnectorKind {
    /// Stable identifier used in the triple encoding.
    pub fn id(self) -> &'static str {
        match self {
            ConnectorKind::Connector => "connector",
            ConnectorKind::Conformance => "conformance",
            ConnectorKind::Generalization => "generalization",
        }
    }

    /// Parse a stable identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        Some(match id {
            "connector" => ConnectorKind::Connector,
            "conformance" => ConnectorKind::Conformance,
            "generalization" => ConnectorKind::Generalization,
            _ => return None,
        })
    }
}

/// How many target values a connector allows per source instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Exactly one (`1..1`).
    One,
    /// Zero or one (`0..1`).
    OptionalOne,
    /// Zero or more (`0..*`).
    Many,
    /// One or more (`1..*`).
    OneOrMore,
}

impl Cardinality {
    /// Stable identifier used in the triple encoding.
    pub fn id(self) -> &'static str {
        match self {
            Cardinality::One => "1..1",
            Cardinality::OptionalOne => "0..1",
            Cardinality::Many => "0..*",
            Cardinality::OneOrMore => "1..*",
        }
    }

    /// Parse a stable identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        Some(match id {
            "1..1" => Cardinality::One,
            "0..1" => Cardinality::OptionalOne,
            "0..*" => Cardinality::Many,
            "1..*" => Cardinality::OneOrMore,
            _ => return None,
        })
    }

    /// Is `n` occurrences acceptable?
    pub fn admits(self, n: usize) -> bool {
        match self {
            Cardinality::One => n == 1,
            Cardinality::OptionalOne => n <= 1,
            Cardinality::Many => true,
            Cardinality::OneOrMore => n >= 1,
        }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A construct of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructDef {
    pub name: String,
    pub kind: ConstructKind,
}

/// A connector of a model: a named relationship from one construct to
/// another, with a target cardinality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectorDef {
    pub name: String,
    pub kind: ConnectorKind,
    /// Source construct name.
    pub from: String,
    /// Target construct name.
    pub to: String,
    pub cardinality: Cardinality,
}

/// A complete model definition: what the SLIM Store's
/// "data-model-definition capability" defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelDef {
    pub name: String,
    constructs: Vec<ConstructDef>,
    connectors: Vec<ConnectorDef>,
}

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    DuplicateConstruct { name: String },
    DuplicateConnector { name: String },
    UnknownConstruct { connector: String, construct: String },
    /// A connector targets a literal/mark construct as its *source* —
    /// literals and marks are leaves.
    LeafSource { connector: String, construct: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateConstruct { name } => write!(f, "duplicate construct {name:?}"),
            ModelError::DuplicateConnector { name } => write!(f, "duplicate connector {name:?}"),
            ModelError::UnknownConstruct { connector, construct } => {
                write!(f, "connector {connector:?} references unknown construct {construct:?}")
            }
            ModelError::LeafSource { connector, construct } => write!(
                f,
                "connector {connector:?} cannot start from leaf construct {construct:?}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

impl ModelDef {
    /// An empty model.
    pub fn new(name: impl Into<String>) -> Self {
        ModelDef { name: name.into(), constructs: Vec::new(), connectors: Vec::new() }
    }

    /// Add a construct.
    pub fn construct(
        mut self,
        name: impl Into<String>,
        kind: ConstructKind,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        if self.constructs.iter().any(|c| c.name == name) {
            return Err(ModelError::DuplicateConstruct { name });
        }
        self.constructs.push(ConstructDef { name, kind });
        Ok(self)
    }

    /// Add a connector between two constructs.
    pub fn connector(
        mut self,
        name: impl Into<String>,
        kind: ConnectorKind,
        from: &str,
        to: &str,
        cardinality: Cardinality,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        if self.connectors.iter().any(|c| c.name == name) {
            return Err(ModelError::DuplicateConnector { name });
        }
        let source = self
            .find_construct(from)
            .ok_or_else(|| ModelError::UnknownConstruct {
                connector: name.clone(),
                construct: from.to_string(),
            })?;
        if source.kind != ConstructKind::Construct {
            return Err(ModelError::LeafSource {
                connector: name,
                construct: from.to_string(),
            });
        }
        if self.find_construct(to).is_none() {
            return Err(ModelError::UnknownConstruct {
                connector: name,
                construct: to.to_string(),
            });
        }
        self.connectors.push(ConnectorDef {
            name,
            kind,
            from: from.to_string(),
            to: to.to_string(),
            cardinality,
        });
        Ok(self)
    }

    /// Look up a construct by name.
    pub fn find_construct(&self, name: &str) -> Option<&ConstructDef> {
        self.constructs.iter().find(|c| c.name == name)
    }

    /// Look up a connector by name.
    pub fn find_connector(&self, name: &str) -> Option<&ConnectorDef> {
        self.connectors.iter().find(|c| c.name == name)
    }

    /// All constructs.
    pub fn constructs(&self) -> &[ConstructDef] {
        &self.constructs
    }

    /// All connectors.
    pub fn connectors(&self) -> &[ConnectorDef] {
        &self.connectors
    }

    /// Connectors whose source is the given construct, including those
    /// inherited through generalization connectors (a specialized
    /// construct accepts its general construct's connectors).
    pub fn connectors_from<'m>(&'m self, construct: &str) -> Vec<&'m ConnectorDef> {
        let mut names = vec![construct.to_string()];
        // Walk generalization edges: X --generalization--> Y means X
        // specializes Y, so X also has Y's connectors.
        let mut i = 0;
        while i < names.len() {
            let current = names[i].clone();
            for c in &self.connectors {
                if c.kind == ConnectorKind::Generalization
                    && c.from == current
                    && !names.contains(&c.to)
                {
                    names.push(c.to.clone());
                }
            }
            i += 1;
        }
        self.connectors
            .iter()
            .filter(|c| c.kind != ConnectorKind::Generalization && names.contains(&c.from))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelDef {
        ModelDef::new("tiny")
            .construct("Thing", ConstructKind::Construct)
            .unwrap()
            .construct("name", ConstructKind::Literal)
            .unwrap()
            .connector("thingName", ConnectorKind::Connector, "Thing", "name", Cardinality::One)
            .unwrap()
    }

    #[test]
    fn construct_and_connector_lookup() {
        let m = tiny_model();
        assert_eq!(m.find_construct("Thing").unwrap().kind, ConstructKind::Construct);
        assert_eq!(m.find_connector("thingName").unwrap().cardinality, Cardinality::One);
        assert!(m.find_construct("Nope").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = tiny_model().construct("Thing", ConstructKind::Literal).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateConstruct { .. }));
        let err = tiny_model()
            .connector("thingName", ConnectorKind::Connector, "Thing", "name", Cardinality::Many)
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateConnector { .. }));
    }

    #[test]
    fn connectors_validate_endpoints() {
        let err = tiny_model()
            .connector("bad", ConnectorKind::Connector, "Ghost", "name", Cardinality::Many)
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownConstruct { .. }));
        let err = tiny_model()
            .connector("bad", ConnectorKind::Connector, "name", "Thing", Cardinality::Many)
            .unwrap_err();
        assert!(matches!(err, ModelError::LeafSource { .. }));
    }

    #[test]
    fn cardinality_admits() {
        assert!(Cardinality::One.admits(1) && !Cardinality::One.admits(0));
        assert!(!Cardinality::One.admits(2));
        assert!(Cardinality::OptionalOne.admits(0) && Cardinality::OptionalOne.admits(1));
        assert!(!Cardinality::OptionalOne.admits(2));
        assert!(Cardinality::Many.admits(0) && Cardinality::Many.admits(99));
        assert!(Cardinality::OneOrMore.admits(1) && !Cardinality::OneOrMore.admits(0));
    }

    #[test]
    fn kind_ids_roundtrip() {
        for k in [ConstructKind::Construct, ConstructKind::Literal, ConstructKind::Mark] {
            assert_eq!(ConstructKind::from_id(k.id()), Some(k));
        }
        for k in
            [ConnectorKind::Connector, ConnectorKind::Conformance, ConnectorKind::Generalization]
        {
            assert_eq!(ConnectorKind::from_id(k.id()), Some(k));
        }
        for c in [
            Cardinality::One,
            Cardinality::OptionalOne,
            Cardinality::Many,
            Cardinality::OneOrMore,
        ] {
            assert_eq!(Cardinality::from_id(c.id()), Some(c));
        }
        assert_eq!(ConstructKind::from_id("x"), None);
        assert_eq!(ConnectorKind::from_id("x"), None);
        assert_eq!(Cardinality::from_id("x"), None);
    }

    #[test]
    fn generalization_inherits_connectors() {
        let m = ModelDef::new("gen")
            .construct("Base", ConstructKind::Construct)
            .unwrap()
            .construct("Special", ConstructKind::Construct)
            .unwrap()
            .construct("label", ConstructKind::Literal)
            .unwrap()
            .connector("baseLabel", ConnectorKind::Connector, "Base", "label", Cardinality::One)
            .unwrap()
            .connector(
                "isa",
                ConnectorKind::Generalization,
                "Special",
                "Base",
                Cardinality::One,
            )
            .unwrap();
        let from_special: Vec<&str> =
            m.connectors_from("Special").iter().map(|c| c.name.as_str()).collect();
        assert_eq!(from_special, vec!["baseLabel"], "inherited through generalization");
        let from_base: Vec<&str> =
            m.connectors_from("Base").iter().map(|c| c.name.as_str()).collect();
        assert_eq!(from_base, vec!["baseLabel"]);
    }
}
