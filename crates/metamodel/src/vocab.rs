//! The reserved RDF-style vocabulary the metamodel encodes with.
//!
//! Mirrors the paper's use of RDF Schema as the metamodel representation:
//! a small set of well-known property and class names, kept in one place
//! so encoders, decoders, and checkers cannot drift apart.

/// `rdf:type` — connects an individual to its type resource.
pub const TYPE: &str = "rdf:type";

/// Class of model resources.
pub const MODEL: &str = "slim:Model";
/// Class of construct resources.
pub const CONSTRUCT: &str = "slim:Construct";
/// Class of connector resources.
pub const CONNECTOR: &str = "slim:Connector";

/// Property: human-readable name of a model element.
pub const NAME: &str = "slim:name";
/// Property: a construct/connector's defining model.
pub const IN_MODEL: &str = "slim:inModel";
/// Property: the construct kind (`construct` / `literal` / `mark`).
pub const CONSTRUCT_KIND: &str = "slim:constructKind";
/// Property: the connector kind (`connector` / `conformance` /
/// `generalization`).
pub const CONNECTOR_KIND: &str = "slim:connectorKind";
/// Property: a connector's source construct.
pub const FROM: &str = "slim:from";
/// Property: a connector's target construct.
pub const TO: &str = "slim:to";
/// Property: a connector's cardinality at the target end.
pub const CARDINALITY: &str = "slim:cardinality";

/// Property: an instance's construct (instance-level `rdf:type` target is
/// the construct resource; this is its explicit conformance link).
pub const CONFORMS_TO: &str = "slim:conformsTo";

/// Resource-name prefixes for the three levels.
pub mod prefix {
    /// Model resources: `model:<name>`.
    pub const MODEL: &str = "model";
    /// Construct resources: `construct:<model>.<name>`.
    pub const CONSTRUCT: &str = "construct";
    /// Connector resources: `connector:<model>.<name>`.
    pub const CONNECTOR: &str = "connector";
}

/// Build the resource name for a model.
pub fn model_res(model: &str) -> String {
    format!("{}:{model}", prefix::MODEL)
}

/// Build the resource name for a construct of a model.
pub fn construct_res(model: &str, construct: &str) -> String {
    format!("{}:{model}.{construct}", prefix::CONSTRUCT)
}

/// Build the resource name for a connector of a model.
pub fn connector_res(model: &str, connector: &str) -> String {
    format!("{}:{model}.{connector}", prefix::CONNECTOR)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_names_are_namespaced() {
        assert_eq!(model_res("bundle-scrap"), "model:bundle-scrap");
        assert_eq!(construct_res("bundle-scrap", "Bundle"), "construct:bundle-scrap.Bundle");
        assert_eq!(connector_res("rel", "hasAttr"), "connector:rel.hasAttr");
    }
}
