//! The built-in model definitions: SLIMPad's Bundle-Scrap model plus the
//! superimposed-model space the paper discusses (§4.3, §5): relational,
//! object-oriented, Topic-Map-like, and XLink-like models.

use crate::model::{Cardinality, ConnectorKind, ConstructKind, ModelDef};

/// The Bundle-Scrap model, transcribed from paper Figure 3.
///
/// * `SlimPad` designates a root `Bundle`.
/// * A `Bundle` has a name, position, height, width, and contains any
///   number of `Scrap`s and nested `Bundle`s.
/// * A `Scrap` has a name and position and one or more `MarkHandle`s
///   (Figure 3's `scrapMark 1..*`).
/// * A `MarkHandle` carries a mark id — a [`ConstructKind::Mark`] leaf
///   resolved by the Mark Manager.
pub fn bundle_scrap() -> ModelDef {
    ModelDef::new("bundle-scrap")
        .construct("SlimPad", ConstructKind::Construct)
        .unwrap()
        .construct("Bundle", ConstructKind::Construct)
        .unwrap()
        .construct("Scrap", ConstructKind::Construct)
        .unwrap()
        .construct("MarkHandle", ConstructKind::Construct)
        .unwrap()
        .construct("String", ConstructKind::Literal)
        .unwrap()
        .construct("Number", ConstructKind::Literal)
        .unwrap()
        .construct("Coordinate", ConstructKind::Literal)
        .unwrap()
        .construct("MarkRef", ConstructKind::Mark)
        .unwrap()
        .connector("padName", ConnectorKind::Connector, "SlimPad", "String", Cardinality::One)
        .unwrap()
        .connector(
            "rootBundle",
            ConnectorKind::Connector,
            "SlimPad",
            "Bundle",
            Cardinality::OptionalOne,
        )
        .unwrap()
        .connector("bundleName", ConnectorKind::Connector, "Bundle", "String", Cardinality::One)
        .unwrap()
        .connector(
            "bundlePos",
            ConnectorKind::Connector,
            "Bundle",
            "Coordinate",
            Cardinality::One,
        )
        .unwrap()
        .connector(
            "bundleHeight",
            ConnectorKind::Connector,
            "Bundle",
            "Number",
            Cardinality::One,
        )
        .unwrap()
        .connector("bundleWidth", ConnectorKind::Connector, "Bundle", "Number", Cardinality::One)
        .unwrap()
        .connector(
            "bundleContent",
            ConnectorKind::Connector,
            "Bundle",
            "Scrap",
            Cardinality::Many,
        )
        .unwrap()
        .connector(
            "nestedBundle",
            ConnectorKind::Connector,
            "Bundle",
            "Bundle",
            Cardinality::Many,
        )
        .unwrap()
        .connector("scrapName", ConnectorKind::Connector, "Scrap", "String", Cardinality::One)
        .unwrap()
        .connector("scrapPos", ConnectorKind::Connector, "Scrap", "Coordinate", Cardinality::One)
        .unwrap()
        .connector(
            "scrapMark",
            ConnectorKind::Connector,
            "Scrap",
            "MarkHandle",
            Cardinality::OneOrMore,
        )
        .unwrap()
        .connector("markId", ConnectorKind::Connector, "MarkHandle", "MarkRef", Cardinality::One)
        .unwrap()
        // §6 extensions the paper contemplates "to its information model
        // that correspond to real world manipulations of bundled
        // information": annotations on scraps and linking among scraps.
        .connector(
            "scrapAnnotation",
            ConnectorKind::Connector,
            "Scrap",
            "String",
            Cardinality::Many,
        )
        .unwrap()
        .connector("scrapLink", ConnectorKind::Connector, "Scrap", "Scrap", Cardinality::Many)
        .unwrap()
}

/// A relational-like model: "in the relational model, tables, attributes,
/// keys and domains are constructs" (paper §4.3). `tupleOf` is the
/// conformance connector tying instance rows to their table.
pub fn relational_like() -> ModelDef {
    ModelDef::new("relational")
        .construct("Table", ConstructKind::Construct)
        .unwrap()
        .construct("Attribute", ConstructKind::Construct)
        .unwrap()
        .construct("Tuple", ConstructKind::Construct)
        .unwrap()
        .construct("String", ConstructKind::Literal)
        .unwrap()
        .construct("Domain", ConstructKind::Literal)
        .unwrap()
        .connector("tableName", ConnectorKind::Connector, "Table", "String", Cardinality::One)
        .unwrap()
        .connector(
            "hasAttribute",
            ConnectorKind::Connector,
            "Table",
            "Attribute",
            Cardinality::OneOrMore,
        )
        .unwrap()
        .connector("attrName", ConnectorKind::Connector, "Attribute", "String", Cardinality::One)
        .unwrap()
        .connector(
            "attrDomain",
            ConnectorKind::Connector,
            "Attribute",
            "Domain",
            Cardinality::One,
        )
        .unwrap()
        .connector(
            "primaryKey",
            ConnectorKind::Connector,
            "Table",
            "Attribute",
            Cardinality::OptionalOne,
        )
        .unwrap()
        .connector("tupleOf", ConnectorKind::Conformance, "Tuple", "Table", Cardinality::One)
        .unwrap()
        .connector("cellValue", ConnectorKind::Connector, "Tuple", "String", Cardinality::Many)
        .unwrap()
}

/// An object-oriented-like model: "classes, attributes, and objects are
/// constructs in an object-oriented model" (paper §4.3). `instanceOf` is
/// the conformance connector; `subClassOf` the generalization connector.
pub fn object_like() -> ModelDef {
    ModelDef::new("object")
        .construct("Class", ConstructKind::Construct)
        .unwrap()
        .construct("Attribute", ConstructKind::Construct)
        .unwrap()
        .construct("Object", ConstructKind::Construct)
        .unwrap()
        .construct("String", ConstructKind::Literal)
        .unwrap()
        .connector("className", ConnectorKind::Connector, "Class", "String", Cardinality::One)
        .unwrap()
        .connector(
            "classAttr",
            ConnectorKind::Connector,
            "Class",
            "Attribute",
            Cardinality::Many,
        )
        .unwrap()
        .connector("attrName", ConnectorKind::Connector, "Attribute", "String", Cardinality::One)
        .unwrap()
        .connector(
            "subClassOf",
            ConnectorKind::Generalization,
            "Class",
            "Class",
            Cardinality::OptionalOne,
        )
        .unwrap()
        .connector("instanceOf", ConnectorKind::Conformance, "Object", "Class", Cardinality::One)
        .unwrap()
        .connector("slotValue", ConnectorKind::Connector, "Object", "String", Cardinality::Many)
        .unwrap()
}

/// A Topic-Map-like model (ISO 13250, paper reference \[3\]): topics with
/// names, associations among topics, and occurrences pointing into base
/// documents — the occurrence is a mark construct.
pub fn topic_map_like() -> ModelDef {
    ModelDef::new("topic-map")
        .construct("Topic", ConstructKind::Construct)
        .unwrap()
        .construct("Association", ConstructKind::Construct)
        .unwrap()
        .construct("String", ConstructKind::Literal)
        .unwrap()
        .construct("Occurrence", ConstructKind::Mark)
        .unwrap()
        .connector("topicName", ConnectorKind::Connector, "Topic", "String", Cardinality::OneOrMore)
        .unwrap()
        .connector(
            "occurrence",
            ConnectorKind::Connector,
            "Topic",
            "Occurrence",
            Cardinality::Many,
        )
        .unwrap()
        .connector(
            "assocType",
            ConnectorKind::Connector,
            "Association",
            "String",
            Cardinality::One,
        )
        .unwrap()
        .connector(
            "member",
            ConnectorKind::Connector,
            "Association",
            "Topic",
            Cardinality::OneOrMore,
        )
        .unwrap()
        .connector("relatedTo", ConnectorKind::Connector, "Topic", "Topic", Cardinality::Many)
        .unwrap()
}

/// An XLink-like model (paper reference \[7\]): links bundling locators
/// (marks into documents) connected by arcs; `ExtendedLink` specializes
/// `Link` via a generalization connector.
pub fn xlink_like() -> ModelDef {
    ModelDef::new("xlink")
        .construct("Link", ConstructKind::Construct)
        .unwrap()
        .construct("ExtendedLink", ConstructKind::Construct)
        .unwrap()
        .construct("Arc", ConstructKind::Construct)
        .unwrap()
        .construct("String", ConstructKind::Literal)
        .unwrap()
        .construct("Locator", ConstructKind::Mark)
        .unwrap()
        .connector("linkTitle", ConnectorKind::Connector, "Link", "String", Cardinality::OptionalOne)
        .unwrap()
        .connector(
            "locator",
            ConnectorKind::Connector,
            "Link",
            "Locator",
            Cardinality::OneOrMore,
        )
        .unwrap()
        .connector("hasArc", ConnectorKind::Connector, "Link", "Arc", Cardinality::Many)
        .unwrap()
        .connector("arcFrom", ConnectorKind::Connector, "Arc", "Locator", Cardinality::One)
        .unwrap()
        .connector("arcTo", ConnectorKind::Connector, "Arc", "Locator", Cardinality::One)
        .unwrap()
        .connector(
            "extendsLink",
            ConnectorKind::Generalization,
            "ExtendedLink",
            "Link",
            Cardinality::One,
        )
        .unwrap()
        .connector(
            "arcRole",
            ConnectorKind::Connector,
            "Arc",
            "String",
            Cardinality::OptionalOne,
        )
        .unwrap()
}

/// All built-in models.
pub fn all_models() -> Vec<ModelDef> {
    vec![bundle_scrap(), relational_like(), object_like(), topic_map_like(), xlink_like()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConnectorKind;

    #[test]
    fn bundle_scrap_matches_figure_3() {
        let m = bundle_scrap();
        // Figure 3 entities.
        for c in ["SlimPad", "Bundle", "Scrap", "MarkHandle"] {
            assert_eq!(m.find_construct(c).unwrap().kind, ConstructKind::Construct, "{c}");
        }
        // Figure 3 attribute connectors.
        for conn in [
            "padName",
            "rootBundle",
            "bundleName",
            "bundlePos",
            "bundleHeight",
            "bundleWidth",
            "bundleContent",
            "nestedBundle",
            "scrapName",
            "scrapPos",
            "scrapMark",
            "markId",
        ] {
            assert!(m.find_connector(conn).is_some(), "{conn} missing");
        }
        // Figure 3 cardinalities.
        assert_eq!(m.find_connector("rootBundle").unwrap().cardinality, Cardinality::OptionalOne);
        assert_eq!(m.find_connector("scrapMark").unwrap().cardinality, Cardinality::OneOrMore);
        assert_eq!(m.find_connector("nestedBundle").unwrap().cardinality, Cardinality::Many);
        // The mark leaf.
        assert_eq!(m.find_construct("MarkRef").unwrap().kind, ConstructKind::Mark);
    }

    #[test]
    fn all_models_have_distinct_names() {
        let models = all_models();
        let mut names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), models.len());
    }

    #[test]
    fn paper_primitives_all_appear_somewhere() {
        let models = all_models();
        let has_construct_kind = |k: ConstructKind| {
            models.iter().any(|m| m.constructs().iter().any(|c| c.kind == k))
        };
        let has_connector_kind = |k: ConnectorKind| {
            models.iter().any(|m| m.connectors().iter().any(|c| c.kind == k))
        };
        assert!(has_construct_kind(ConstructKind::Construct));
        assert!(has_construct_kind(ConstructKind::Literal));
        assert!(has_construct_kind(ConstructKind::Mark));
        assert!(has_connector_kind(ConnectorKind::Connector));
        assert!(has_connector_kind(ConnectorKind::Conformance));
        assert!(has_connector_kind(ConnectorKind::Generalization));
    }

    #[test]
    fn topic_map_occurrences_are_marks() {
        let m = topic_map_like();
        assert_eq!(m.find_construct("Occurrence").unwrap().kind, ConstructKind::Mark);
    }

    #[test]
    fn xlink_generalization_inherits_link_connectors() {
        let m = xlink_like();
        let inherited: Vec<&str> =
            m.connectors_from("ExtendedLink").iter().map(|c| c.name.as_str()).collect();
        assert!(inherited.contains(&"locator"), "{inherited:?}");
        assert!(inherited.contains(&"linkTitle"), "{inherited:?}");
    }
}
