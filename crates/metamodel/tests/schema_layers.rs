//! Integration test: the three-level story of paper §4.3/§5.
//!
//! "Explicitly representing and storing model, schema, and instance,
//! along with being flexible in which is defined first, differs from
//! most other approaches. In common use, metadata storage systems only
//! represent two levels … and the schema must be defined prior to the
//! metadata instance."
//!
//! With the relational-like model: the *model* defines Table/Attribute/
//! Tuple constructs; a *schema* is a set of Table/Attribute instances;
//! the *data* is Tuple instances tied to their Table through the
//! `tupleOf` conformance connector. All three live in one store, and the
//! schema may be defined after the data.

use metamodel::encode::{decode_model, InstanceWriter};
use metamodel::{builtin, check_conformance};
use trim::{TriplePattern, TripleStore, Value};

/// Build the medications *schema*: one table with three attributes.
fn define_schema(w: &mut InstanceWriter<'_>) -> trim::Atom {
    let table = w.create("Table");
    w.set_literal(table, "tableName", "medications");
    for (name, domain) in [("drug", "string"), ("dose_mg", "number"), ("route", "string")] {
        let attr = w.create("Attribute");
        w.set_literal(attr, "attrName", name);
        w.set_literal(attr, "attrDomain", domain);
        w.set_link(table, "hasAttribute", attr);
    }
    table
}

/// Insert two rows of *data* for a table.
fn insert_rows(w: &mut InstanceWriter<'_>, table: trim::Atom) {
    for row in [["Furosemide", "40", "IV"], ["Captopril", "12.5", "PO"]] {
        let tuple = w.create("Tuple");
        w.set_link(tuple, "tupleOf", table);
        for cell in row {
            w.set_literal(tuple, "cellValue", cell);
        }
    }
}

#[test]
fn schema_first_then_data() {
    let model = builtin::relational_like();
    let mut store = TripleStore::new();
    let mut w = InstanceWriter::new(&mut store, &model);
    let table = define_schema(&mut w);
    insert_rows(&mut w, table);
    let report = check_conformance(&store, &model);
    assert!(report.is_conformant(), "{:?}", report.violations);
    assert_eq!(report.instances, 6, "1 table + 3 attributes + 2 tuples");
}

#[test]
fn data_first_then_schema() {
    // "Schema-later": tuples enter the store before any Table exists.
    let model = builtin::relational_like();
    let mut store = TripleStore::new();
    let mut w = InstanceWriter::new(&mut store, &model);
    let orphan_tuple = w.create("Tuple");
    w.set_literal(orphan_tuple, "cellValue", "Furosemide");
    // At this point the data violates tupleOf (1..1) — and the checker
    // says so rather than refusing entry.
    let report = check_conformance(&store, &model);
    assert!(!report.is_conformant());

    // The schema arrives later; wiring the tuple up heals the store.
    let mut w = InstanceWriter::new(&mut store, &model);
    let table = define_schema(&mut w);
    w.set_link(orphan_tuple, "tupleOf", table);
    let report = check_conformance(&store, &model);
    assert!(report.is_conformant(), "{:?}", report.violations);
}

#[test]
fn all_three_levels_travel_in_one_xml_file() {
    let model = builtin::relational_like();
    let mut store = TripleStore::new();
    let mut w = InstanceWriter::new(&mut store, &model);
    let table = define_schema(&mut w);
    insert_rows(&mut w, table);

    let xml = store.to_xml();
    let reloaded = TripleStore::from_xml(&xml).unwrap();
    // Level 1: the model itself decodes from the payload.
    let decoded = decode_model(&reloaded, "relational").unwrap();
    assert!(decoded.find_connector("tupleOf").is_some());
    // Level 2: the schema (table + attributes) is queryable.
    let name_p = reloaded.find_atom("tableName").unwrap();
    let tables = reloaded.select(&TriplePattern::default().with_property(name_p));
    assert_eq!(tables.len(), 1);
    // Level 3: the data is there and still conformant.
    let report = check_conformance(&reloaded, &model);
    assert!(report.is_conformant(), "{:?}", report.violations);
    assert_eq!(report.instances, 6);
}

#[test]
fn two_schemas_share_one_model_in_one_store() {
    // Two "deployments" (medications and labs) coexist: schema-level
    // multiplexing under one model, in one store.
    let model = builtin::relational_like();
    let mut store = TripleStore::new();
    let mut w = InstanceWriter::new(&mut store, &model);
    let meds = define_schema(&mut w);
    insert_rows(&mut w, meds);
    let labs = w.create("Table");
    w.set_literal(labs, "tableName", "electrolytes");
    let attr = w.create("Attribute");
    w.set_literal(attr, "attrName", "k");
    w.set_literal(attr, "attrDomain", "number");
    w.set_link(labs, "hasAttribute", attr);
    let row = w.create("Tuple");
    w.set_link(row, "tupleOf", labs);
    w.set_literal(row, "cellValue", "4.1");

    let report = check_conformance(&store, &model);
    assert!(report.is_conformant(), "{:?}", report.violations);

    // Tuples partition correctly by their conformance link.
    let tuple_of = store.find_atom("tupleOf").unwrap();
    let of_meds = store.count(
        &TriplePattern::default().with_property(tuple_of).with_object(Value::Resource(meds)),
    );
    let of_labs = store.count(
        &TriplePattern::default().with_property(tuple_of).with_object(Value::Resource(labs)),
    );
    assert_eq!((of_meds, of_labs), (2, 1));
}

#[test]
fn primary_key_is_optional_but_single() {
    let model = builtin::relational_like();
    let mut store = TripleStore::new();
    let table = {
        let mut w = InstanceWriter::new(&mut store, &model);
        define_schema(&mut w)
    };
    // No primary key: fine (0..1).
    assert!(check_conformance(&store, &model).is_conformant());
    // One primary key: fine.
    {
        let mut w = InstanceWriter::new(&mut store, &model);
        let attr = w.create("Attribute");
        w.set_literal(attr, "attrName", "id");
        w.set_literal(attr, "attrDomain", "number");
        w.set_link(table, "hasAttribute", attr);
        w.set_link(table, "primaryKey", attr);
    }
    assert!(check_conformance(&store, &model).is_conformant());
    // Two primary keys: cardinality violation.
    {
        let mut w = InstanceWriter::new(&mut store, &model);
        let attr2 = w.create("Attribute");
        w.set_literal(attr2, "attrName", "id2");
        w.set_literal(attr2, "attrDomain", "number");
        w.set_link(table, "hasAttribute", attr2);
        w.set_link(table, "primaryKey", attr2);
    }
    let report = check_conformance(&store, &model);
    assert!(!report.is_conformant());
}
