//! Supervised concurrent session front-end over the SLIM stack.
//!
//! Every layer below this crate is single-owner: one thread owns the
//! [`trim::TripleStore`], its [`trim::StoreLog`], and the VFS handle.
//! `slimserve` keeps that invariant — one **writer thread** owns the
//! mutable store — and multiplexes many concurrent sessions on top of
//! it:
//!
//! * **Readers never block.** Each durable commit publishes an
//!   immutable [`trim::Snapshot`] (copy-on-write base + delta, built by
//!   [`trim::SnapshotPublisher`]); sessions grab the latest snapshot
//!   with one mutex clone (three `Arc`s) and scan it freely on their
//!   own thread.
//! * **Writes funnel through a bounded queue.** Sessions submit
//!   [`ServeOp`]s; the writer drains them in batches and group-commits
//!   each batch as a single WAL frame (one append, one sync). An
//!   acknowledgement ([`Ack`]) is sent only after the frame is durable,
//!   and carries the writer-assigned serialization order so a
//!   differential harness can replay acknowledged ops into a
//!   single-session model.
//! * **The supervisor contains faults.** Every op application runs
//!   under `catch_unwind` with a journal checkpoint: a panicking op is
//!   rolled back and refused with [`ServeError::Panicked`] — the store,
//!   the batch's other ops, and the writer all survive. Ops carry
//!   deadlines stamped at submission ([`marks::resilience::Clock`]);
//!   an op dequeued past its deadline is refused with
//!   [`ServeError::Timeout`] and never applied. A full queue refuses
//!   admission with [`ServeError::Overloaded`] — load is shed loudly,
//!   never dropped silently. Sessions that repeatedly fault trip a
//!   per-session circuit breaker ([`marks::resilience::Breaker`]) and
//!   are quarantined: their submissions are refused with
//!   [`ServeError::Quarantined`] until the cooldown elapses.
//!
//! Durability is exactly the PR 5 write-ahead-log contract: an
//! acknowledged op is on disk; a refused op never is. A crashed
//! service reopens with [`Service::open`] — snapshot + log replay —
//! and resumes serving.

pub mod error;
pub mod op;
pub mod pad;
pub mod service;

pub use error::{suggested_backoff_ms, ServeError};
pub use op::{Ack, Gate, ServeOp, Ticket};
pub use pad::{
    ward_doc, ward_factory, ward_mirror, ExcerptSearch, PadAck, PadConfig, PadMachine, PadOp,
    PadOutcome, PadParts, PadPartsFactory, PadServeStats, PadService, PadSessionHandle, WARD_DOCS,
    WARD_PARAGRAPHS,
};
pub use service::{Service, ServeConfig, ServeStats, SessionHandle};
