//! The service's op alphabet and acknowledgement type.
//!
//! Ops travel from session threads to the writer thread, so they are
//! plain `Send` data: strings, not atoms (atoms index the writer's
//! private interning table). The chaos variants exist so harnesses can
//! inject faults *through the same front door* real traffic uses.

use std::sync::{Arc, Condvar, Mutex};

use trim::{Revision, SnapValue, Triple, TripleStore, Value};

use crate::error::ServeError;

/// One mutation submitted to the writer. All payloads are resolved
/// strings; the writer interns them on application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOp {
    /// Insert a triple (idempotent: inserting an existing triple is a
    /// successful no-op).
    Insert { subject: String, property: String, object: SnapValue },
    /// Remove a triple (idempotent: removing an absent triple is a
    /// successful no-op).
    Remove { subject: String, property: String, object: SnapValue },
    /// Replace all `(subject, property, *)` triples with exactly one.
    SetUnique { subject: String, property: String, object: SnapValue },
    /// Chaos: panic inside the writer's apply path. Exercises the
    /// supervisor's `catch_unwind` + rollback containment.
    ChaosPanic {
        /// Panic payload, echoed back in [`crate::ServeError::Panicked`].
        detail: String,
    },
    /// Chaos: park the writer on a [`Gate`] until the harness opens it.
    /// Exercises backpressure (the queue fills behind the parked
    /// writer) and deadline expiry (queued ops age while it sleeps).
    ChaosPark(Gate),
}

impl ServeOp {
    /// Convenience constructor for a literal-object insert.
    pub fn insert(subject: &str, property: &str, literal: &str) -> Self {
        ServeOp::Insert {
            subject: subject.to_string(),
            property: property.to_string(),
            object: SnapValue::Literal(literal.to_string()),
        }
    }

    /// Convenience constructor for a resource-object insert.
    pub fn link(subject: &str, property: &str, object: &str) -> Self {
        ServeOp::Insert {
            subject: subject.to_string(),
            property: property.to_string(),
            object: SnapValue::Resource(object.to_string()),
        }
    }

    /// Convenience constructor for a literal-object remove.
    pub fn remove(subject: &str, property: &str, literal: &str) -> Self {
        ServeOp::Remove {
            subject: subject.to_string(),
            property: property.to_string(),
            object: SnapValue::Literal(literal.to_string()),
        }
    }

    /// Convenience constructor for a literal-object set-unique.
    pub fn set_unique(subject: &str, property: &str, literal: &str) -> Self {
        ServeOp::SetUnique {
            subject: subject.to_string(),
            property: property.to_string(),
            object: SnapValue::Literal(literal.to_string()),
        }
    }

    /// Apply this op to a store — the *serialized reference semantics*.
    ///
    /// The writer thread uses exactly this to apply each op, and the
    /// chaos harness uses it to replay acknowledged ops (in ascending
    /// [`Ack::order`]) into a fresh single-session model store. The two
    /// agreeing is the differential invariant.
    ///
    /// [`ServeOp::ChaosPanic`] panics (that is its whole point — the
    /// writer contains it; a model replay never sees one because a
    /// panicking op is never acknowledged). [`ServeOp::ChaosPark`] is a
    /// store no-op: the writer handles the parking itself, outside the
    /// supervised apply.
    pub fn apply_to(&self, store: &mut TripleStore) {
        match self {
            ServeOp::Insert { subject, property, object } => {
                let s = store.atom(subject);
                let p = store.atom(property);
                let o = value_of(store, object);
                store.insert(s, p, o);
            }
            ServeOp::Remove { subject, property, object } => {
                // A remove of something never interned is a no-op by
                // definition — don't intern atoms just to miss.
                let (Some(s), Some(p), Some(o)) = (
                    store.find_atom(subject),
                    store.find_atom(property),
                    store.find_atom(object.text()),
                ) else {
                    return;
                };
                let object = match object {
                    SnapValue::Literal(_) => Value::Literal(o),
                    SnapValue::Resource(_) => Value::Resource(o),
                };
                store.remove(Triple { subject: s, property: p, object });
            }
            ServeOp::SetUnique { subject, property, object } => {
                let s = store.atom(subject);
                let p = store.atom(property);
                let o = value_of(store, object);
                store.set_unique(s, p, o);
            }
            ServeOp::ChaosPanic { detail } => {
                std::panic::panic_any(detail.clone());
            }
            ServeOp::ChaosPark(_) => {}
        }
    }
}

fn value_of(store: &mut TripleStore, v: &SnapValue) -> Value {
    match v {
        SnapValue::Literal(s) => store.literal_value(s),
        SnapValue::Resource(s) => {
            let a = store.atom(s);
            TripleStore::resource_value(a)
        }
    }
}

/// Acknowledgement of a durably committed op.
///
/// Sent only after the op's batch was group-committed through the WAL
/// (or proved a no-op against already-durable state). `order` is the
/// writer's serialization order: replaying every acknowledged op of a
/// run in ascending `order` into a fresh single-session store yields
/// exactly the service's final state — the invariant the chaos harness
/// checks differentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Writer-assigned position in the global serialization.
    pub order: u64,
    /// Store revision after this op's batch was applied.
    pub revision: Revision,
    /// WAL frame that made the batch durable; `None` when the batch
    /// turned out to be a no-op (nothing needed writing).
    pub durable_seq: Option<u64>,
}

/// A write submission's verdict mailbox, generic over the ack type so
/// the triple-level service ([`Ack`]) and the pad service share one
/// mechanism.
#[derive(Debug)]
pub(crate) struct Slot<A> {
    result: Mutex<Option<Result<A, ServeError>>>,
    cv: Condvar,
}

impl<A> Default for Slot<A> {
    fn default() -> Self {
        Slot { result: Mutex::new(None), cv: Condvar::new() }
    }
}

impl<A> Slot<A> {
    pub(crate) fn resolve(&self, verdict: Result<A, ServeError>) {
        let mut slot = lock(&self.result);
        *slot = Some(verdict);
        self.cv.notify_all();
    }
}

/// A claim on a submitted op's eventual verdict. [`Ticket::wait`]
/// blocks until the writer acknowledges or refuses the op.
#[derive(Debug)]
pub struct Ticket<A = Ack> {
    slot: Arc<Slot<A>>,
}

impl<A> Ticket<A> {
    pub(crate) fn new(slot: Arc<Slot<A>>) -> Self {
        Ticket { slot }
    }

    /// Block until the op's verdict arrives.
    pub fn wait(self) -> Result<A, ServeError> {
        let mut slot = lock(&self.slot.result);
        loop {
            if let Some(verdict) = slot.take() {
                return verdict;
            }
            slot = wait(&self.slot.cv, slot);
        }
    }
}

/// A rendezvous used by [`ServeOp::ChaosPark`]: the writer parks on it
/// and the harness releases it. Two-phase so tests are deterministic —
/// `wait_arrived` guarantees the writer is actually parked before the
/// harness proceeds to fill the queue or advance the clock.
#[derive(Debug, Clone, Default)]
pub struct Gate {
    inner: Arc<GateInner>,
}

#[derive(Debug, Default)]
struct GateInner {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    open: bool,
    arrived: bool,
}

impl PartialEq for Gate {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for Gate {}

impl Gate {
    /// A closed gate.
    pub fn new() -> Self {
        Gate::default()
    }

    /// Release whoever is (or will be) parked on the gate.
    pub fn open(&self) {
        let mut st = lock(&self.inner.state);
        st.open = true;
        self.inner.cv.notify_all();
    }

    /// Block until the writer has parked on this gate.
    pub fn wait_arrived(&self) {
        let mut st = lock(&self.inner.state);
        while !st.arrived {
            st = wait(&self.inner.cv, st);
        }
    }

    /// Writer side: announce arrival, then block until opened.
    pub(crate) fn pass(&self) {
        let mut st = lock(&self.inner.state);
        st.arrived = true;
        self.inner.cv.notify_all();
        while !st.open {
            st = wait(&self.inner.cv, st);
        }
    }
}

/// Poison-tolerant lock: a panic elsewhere must not cascade — the
/// supervisor's whole job is to outlive panics.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poison-tolerant condvar wait.
pub(crate) fn wait<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_two_phase_rendezvous() {
        let gate = Gate::new();
        let theirs = gate.clone();
        let handle = std::thread::spawn(move || {
            theirs.pass();
            7
        });
        gate.wait_arrived();
        gate.open();
        assert_eq!(handle.join().unwrap(), 7);
    }

    #[test]
    fn ops_are_send() {
        fn takes_send<T: Send + 'static>(_: T) {}
        takes_send(ServeOp::insert("s", "p", "v"));
        takes_send(ServeOp::ChaosPark(Gate::new()));
    }
}
