//! The pad service: many user-facing pad sessions over one supervised
//! pad engine.
//!
//! PR 8's [`crate::Service`] fronts the bare [`trim::TripleStore`]; the
//! paper's clinicians work a level up — marks, excerpts, bundles, undo.
//! `PadService` lifts the same supervision discipline to that layer:
//!
//! * **One writer owns the pad.** A [`slimpad::PadEngine`] (store +
//!   marks + resolver + WAL) lives on a single writer thread; sessions
//!   submit typed [`PadOp`]s through a bounded queue and get back a
//!   [`PadAck`] carrying the op's [`PadOutcome`].
//! * **Every op is contained.** The writer applies each op under
//!   `catch_unwind` with a journal checkpoint and a mark-store snapshot:
//!   a panicking or erroring op is rolled back to its pre-op state and
//!   refused with a typed [`ServeError`] — the pad, the batch's other
//!   ops, and the writer survive. Deadlines, overload shedding (with
//!   the retry hint), and per-session breakers work exactly as in the
//!   triple-level service.
//! * **Ack ⇒ durable.** The writer group-commits the engine (store
//!   delta + marks sidecar, one WAL frame, one sync) after every batch
//!   and acknowledges only afterwards, so replaying the acknowledged
//!   [`PadOp`]s of a run into a fresh [`PadMachine`] reproduces the
//!   live pad exactly — and so does reopening the on-disk state after a
//!   crash. That three-way equality is the `slimgen --chaos-pad`
//!   verdict.
//! * **Mark resolution degrades, never hangs.** Resolution runs through
//!   the PR 3 [`marks::ResilientResolver`] (deadlines, per-module
//!   breakers, quarantine); a [`marks::FlakyModule`] can be armed
//!   through its shared [`marks::FlakyControl`] from any thread, and
//!   readers observe `DegradedExcerpt` fallbacks in the ack rather than
//!   a hang or a panic.
//!
//! The digest the differential verdict compares is *logical*: bundle
//! and scrap content keyed by canonical position, mark identities and
//! addresses — never minted resource ids (which legitimately diverge
//! across rolled-back ops and crash recoveries) and never excerpts
//! (which legitimately diverge under injected base-layer faults).

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use basedocs::textdoc::TextTarget;
use basedocs::{DocKind, Span, TextAddress};
use marks::resilience::{Admit, Breaker, BreakerConfig, BreakerState, Clock};
use marks::{MarkAddress, MarkManager, ResilientResolver};
use slimio::Vfs;
use slimpad::{PadEngine, PadError};
use slimstore::{BundleHandle, ScrapHandle};

use crate::error::{suggested_backoff_ms, ServeError};
use crate::op::{lock, wait, Gate, Slot, Ticket};
use crate::service::quiet_catch_unwind;

impl From<PadError> for ServeError {
    /// A typed domain refusal from the pad engine: the op was rolled
    /// back to its pre-op checkpoint and never acknowledged.
    fn from(e: PadError) -> Self {
        ServeError::Engine { detail: e.to_string() }
    }
}

/// One pad-level mutation or query submitted to the pad writer.
///
/// Bundles and scraps are addressed by *selector*: an index taken
/// modulo the live population in canonical (creation) order, so ops are
/// plain `Send` data, survive crash recovery, and replay exactly in a
/// fresh [`PadMachine`].
#[derive(Debug, Clone, PartialEq)]
pub enum PadOp {
    /// Create a bundle; `parent` selects an existing bundle (the
    /// invisible root when `None`).
    CreateBundle { name: String, pos: (i64, i64), width: i64, height: i64, parent: Option<u64> },
    /// Create a mark at an explicit text address and place it on the
    /// pad as a labelled scrap — the paper's core gesture, addressed
    /// programmatically.
    CreateMark {
        doc: String,
        paragraph: u64,
        start: u64,
        len: u64,
        label: String,
        pos: (i64, i64),
        bundle: Option<u64>,
    },
    /// Attach an annotation to the selected scrap.
    Annotate { scrap: u64, text: String },
    /// Link two selected scraps (directed; self-links are refused by
    /// the engine as a typed error).
    Link { from: u64, to: u64 },
    /// Resolve the selected scrap's mark through the resilient
    /// resolver; the ack reports the display and whether it degraded.
    Resolve { scrap: u64 },
    /// Extract the selected scrap's marked content with excerpt
    /// fallback.
    Extract { scrap: u64 },
    /// Re-point the selected scrap's mark at a new text address.
    Rebind { scrap: u64, doc: String, paragraph: u64, start: u64, len: u64 },
    /// Online repair: search the base layer for each quarantined mark's
    /// saved excerpt and re-bind unique matches.
    Repair,
    /// Undo the most recent undoable op.
    Undo,
    /// Re-apply the most recently undone op.
    Redo,
    /// Read the pad's logical digest and population counts.
    Inspect,
    /// Force a durable commit (each batch commits anyway; this
    /// exercises the explicit path).
    Commit,
    /// Fold the WAL into a fresh snapshot generation.
    Compact,
    /// Chaos: panic inside the pad writer's apply path.
    ChaosPanic { detail: String },
    /// Chaos: park the pad writer on a gate (backpressure/deadline
    /// drills).
    ChaosPark(Gate),
}

/// What an acknowledged [`PadOp`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum PadOutcome {
    /// Structural mutation applied (create/annotate/link/rebind).
    Applied,
    /// Resolution result: the display text, whether it fell back to the
    /// stored excerpt, and whether the mark is quarantined.
    Resolved { display: String, degraded: bool, quarantined: bool },
    /// Extraction result and whether the excerpt fallback was used.
    Extracted { content: String, degraded: bool },
    /// How many quarantined marks a repair pass re-bound.
    Repaired { rebound: usize, still_quarantined: usize },
    /// An undo/redo happened (`true`) or there was nothing to do —
    /// refused, so replays never see `false` from the service itself.
    Stepped(bool),
    /// Pad introspection.
    Inspected { digest: u64, bundles: usize, scraps: usize, marks: usize },
    /// Commit/compact completed.
    Durable,
}

/// Acknowledgement of a durably committed pad op.
#[derive(Debug, Clone, PartialEq)]
pub struct PadAck {
    /// Writer-assigned position in the pad's global serialization.
    pub order: u64,
    /// WAL frame that made the op's batch durable; `None` when the
    /// batch was clean (nothing needed writing).
    pub durable_seq: Option<u64>,
    /// What the op did.
    pub outcome: PadOutcome,
}

/// Tuning for a [`PadService`].
#[derive(Debug, Clone)]
pub struct PadConfig {
    /// Op-queue bound; submissions beyond it are shed with
    /// [`ServeError::Overloaded`] (and its retry hint).
    pub queue_capacity: usize,
    /// Most ops the writer applies per group commit.
    pub max_batch: usize,
    /// Deadline stamped on each op at submission.
    pub op_deadline_ms: u64,
    /// Per-session circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Log size (bytes) past which the engine compacts.
    pub compact_threshold: u64,
}

impl Default for PadConfig {
    fn default() -> Self {
        PadConfig {
            queue_capacity: 256,
            max_batch: 32,
            op_deadline_ms: 1_000,
            breaker: BreakerConfig::default(),
            compact_threshold: 1 << 20,
        }
    }
}

/// Monotonic counters for everything the pad service did. Every
/// submission lands in exactly one of `acked`, `shed`, `timed_out`,
/// `panicked`, `engine_refusals`, `quarantine_rejections`,
/// `io_refusals`, or `closed_refusals` — the ledger the chaos harness
/// balances (zero silent drops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PadServeStats {
    /// Ops accepted into the queue.
    pub submitted: u64,
    /// Ops durably committed and acknowledged.
    pub acked: u64,
    /// Ops shed at admission (queue full).
    pub shed: u64,
    /// Sum of the [`ServeError::Overloaded`] retry hints handed out.
    pub shed_backoff_ms: u64,
    /// Ops refused because their deadline passed in the queue.
    pub timed_out: u64,
    /// Ops that panicked and were rolled back.
    pub panicked: u64,
    /// Ops the engine refused with a typed domain error (rolled back).
    pub engine_refusals: u64,
    /// Submissions refused because the session was quarantined.
    pub quarantine_rejections: u64,
    /// Ops refused because their batch's commit failed.
    pub io_refusals: u64,
    /// Ops refused because the service was closing.
    pub closed_refusals: u64,
    /// Durable group commits.
    pub commits: u64,
    /// Log compactions.
    pub compactions: u64,
    /// Acked resolutions that fell back to the stored excerpt.
    pub degraded_resolutions: u64,
    /// Quarantined marks re-bound by repair passes.
    pub repairs: u64,
}

impl std::ops::AddAssign for PadServeStats {
    /// Field-wise sum, for merging counters across crash incarnations.
    fn add_assign(&mut self, rhs: PadServeStats) {
        self.submitted += rhs.submitted;
        self.acked += rhs.acked;
        self.shed += rhs.shed;
        self.shed_backoff_ms += rhs.shed_backoff_ms;
        self.timed_out += rhs.timed_out;
        self.panicked += rhs.panicked;
        self.engine_refusals += rhs.engine_refusals;
        self.quarantine_rejections += rhs.quarantine_rejections;
        self.io_refusals += rhs.io_refusals;
        self.closed_refusals += rhs.closed_refusals;
        self.commits += rhs.commits;
        self.compactions += rhs.compactions;
        self.degraded_resolutions += rhs.degraded_resolutions;
        self.repairs += rhs.repairs;
    }
}

impl PadServeStats {
    /// Submissions minus every accounted verdict — zero when no op was
    /// silently dropped. Admission refusals (shed, quarantine, closed)
    /// never enter `submitted`, so the balance is over the queue only.
    pub fn unaccounted(&self) -> i64 {
        self.submitted as i64
            - (self.acked + self.timed_out + self.panicked + self.engine_refusals
                + self.io_refusals
                + self.closed_refusals) as i64
    }
}

#[derive(Default)]
struct AtomicPadStats {
    submitted: AtomicU64,
    acked: AtomicU64,
    shed: AtomicU64,
    shed_backoff_ms: AtomicU64,
    timed_out: AtomicU64,
    panicked: AtomicU64,
    engine_refusals: AtomicU64,
    quarantine_rejections: AtomicU64,
    io_refusals: AtomicU64,
    closed_refusals: AtomicU64,
    commits: AtomicU64,
    compactions: AtomicU64,
    degraded_resolutions: AtomicU64,
    repairs: AtomicU64,
}

impl AtomicPadStats {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn add(field: &AtomicU64, amount: u64) {
        field.fetch_add(amount, Ordering::Relaxed);
    }

    fn read(&self) -> PadServeStats {
        let get = |f: &AtomicU64| f.load(Ordering::Relaxed);
        PadServeStats {
            submitted: get(&self.submitted),
            acked: get(&self.acked),
            shed: get(&self.shed),
            shed_backoff_ms: get(&self.shed_backoff_ms),
            timed_out: get(&self.timed_out),
            panicked: get(&self.panicked),
            engine_refusals: get(&self.engine_refusals),
            quarantine_rejections: get(&self.quarantine_rejections),
            io_refusals: get(&self.io_refusals),
            closed_refusals: get(&self.closed_refusals),
            commits: get(&self.commits),
            compactions: get(&self.compactions),
            degraded_resolutions: get(&self.degraded_resolutions),
            repairs: get(&self.repairs),
        }
    }
}

// ---------------------------------------------------------------------
// PadMachine: the deterministic core shared by writer and replay
// ---------------------------------------------------------------------

/// Everything the writer thread needs beyond the engine itself, built
/// fresh by the [`PadService`] factory on (re)open: the mark manager
/// (with its live modules), the resilient resolver, and a base-layer
/// excerpt search for repair passes.
pub struct PadParts {
    /// The mark manager, modules registered.
    pub manager: MarkManager,
    /// The resolver the engine should use (typically driven by the same
    /// clock as the service).
    pub resolver: ResilientResolver,
    /// Search the base layer for addresses whose current content equals
    /// the needle exactly — repair-candidate discovery.
    pub search: ExcerptSearch,
}

/// Search the base layer for addresses whose current content equals the
/// needle exactly — the repair pass's candidate discovery.
pub type ExcerptSearch = Box<dyn FnMut(&str) -> Vec<MarkAddress>>;

/// The deterministic pad state machine: a [`PadEngine`] plus the undo /
/// redo op journals. The live writer drives one under supervision; a
/// differential harness replays acknowledged ops into a fresh one and
/// compares [`PadMachine::digest`].
pub struct PadMachine {
    engine: PadEngine,
    search: ExcerptSearch,
    /// `(pre-op checkpoint, the op)` for each applied undoable op.
    undo_ops: Vec<(trim::Revision, PadOp)>,
    /// Ops undone and eligible for redo (cleared by any new mutation).
    redo_ops: Vec<PadOp>,
}

impl PadMachine {
    /// Wrap an engine (live or replay) into a machine.
    pub fn new(engine: PadEngine, search: ExcerptSearch) -> Self {
        PadMachine { engine, search, undo_ops: Vec::new(), redo_ops: Vec::new() }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &PadEngine {
        &self.engine
    }

    /// The wrapped engine, mutably.
    pub fn engine_mut(&mut self) -> &mut PadEngine {
        &mut self.engine
    }

    /// Number of ops currently undoable / redoable.
    pub fn undo_len(&self) -> usize {
        self.undo_ops.len()
    }

    /// See [`PadMachine::undo_len`].
    pub fn redo_len(&self) -> usize {
        self.redo_ops.len()
    }

    /// Drop journal entries above the given lengths — the supervisor's
    /// resync after a contained fault (nothing an op pushed survives
    /// its refusal).
    pub fn resync_journals(&mut self, undo_len: usize, redo_len: usize) {
        self.undo_ops.truncate(undo_len);
        self.redo_ops.truncate(redo_len);
    }

    /// Live bundles in canonical (creation) order — selector space for
    /// [`PadOp`] bundle references.
    ///
    /// Canonical order is the numeric suffix of the persisted resource
    /// name (`Bundle:N`), *not* atom order: atoms are interned in
    /// creation order live but in serialization order after a snapshot
    /// reload, so atom order would permute selectors and the digest
    /// across compaction and crash recovery. Mint suffixes are
    /// monotonic within an incarnation and resume past the highest
    /// persisted suffix after a reload, so suffix order is creation
    /// order in every incarnation.
    pub fn bundles(&self) -> Vec<BundleHandle> {
        let mut pool = self.engine.dmi().bundles();
        pool.sort_by_key(|b| self.mint_rank(b.resource()));
        pool
    }

    /// Live scraps in canonical order — selector space for scrap refs.
    pub fn scraps(&self) -> Vec<ScrapHandle> {
        let mut pool = self.engine.dmi().all_scraps();
        pool.sort_by_key(|s| self.mint_rank(s.resource()));
        pool
    }

    /// The creation-order sort key for a minted resource: its numeric
    /// `name:N` suffix, with nameless oddities ranked last by raw atom.
    fn mint_rank(&self, resource: trim::Atom) -> (u64, u64) {
        let name = self.engine.dmi().store().atoms().resolve(resource);
        match name.rsplit_once(':').and_then(|(_, n)| n.parse::<u64>().ok()) {
            Some(n) => (n, 0),
            None => (u64::MAX, resource.index() as u64),
        }
    }

    fn bundle_at(&self, selector: Option<u64>) -> Option<BundleHandle> {
        let sel = selector?;
        let pool = self.bundles();
        if pool.is_empty() {
            return None; // fall back to the root bundle
        }
        Some(pool[(sel % pool.len() as u64) as usize])
    }

    fn scrap_at(&self, selector: u64) -> Result<ScrapHandle, PadError> {
        let pool = self.scraps();
        if pool.is_empty() {
            return Err(PadError::File { message: "no scraps on the pad".into() });
        }
        Ok(pool[(selector % pool.len() as u64) as usize])
    }

    fn text_address(doc: &str, paragraph: u64, start: u64, len: u64) -> MarkAddress {
        MarkAddress::Text(TextAddress {
            file_name: doc.to_string(),
            target: TextTarget::Span {
                paragraph: paragraph as usize,
                span: Span { start: start as usize, end: (start + len) as usize },
            },
        })
    }

    /// Apply one op. Errors are *typed domain refusals*: the caller
    /// (the supervised writer, or a replay harness) must roll the
    /// engine back to its pre-op checkpoint — [`PadMachine::apply`]
    /// itself performs no rollback so the live and replay paths share
    /// one code path.
    ///
    /// Commit/compact are no-ops *here* — durability belongs to the
    /// batch boundary. If apply persisted mid-batch, an op earlier in a
    /// batch whose group commit later failed would already be durable:
    /// refused by the ack but present on disk, breaking the
    /// refused-means-never-happened contract the differential verdict
    /// checks. The live writer honours these ops after the batch's own
    /// commit; the replay mirror has nothing to do.
    pub fn apply(&mut self, op: &PadOp) -> Result<PadOutcome, PadError> {
        match op {
            PadOp::CreateBundle { name, pos, width, height, parent } => {
                let cp = self.engine.dmi().checkpoint();
                let parent = self.bundle_at(*parent);
                self.engine.create_bundle(name, *pos, *width, *height, parent)?;
                self.record_undo(cp, op.clone());
                Ok(PadOutcome::Applied)
            }
            PadOp::CreateMark { doc, paragraph, start, len, label, pos, bundle } => {
                let cp = self.engine.dmi().checkpoint();
                let bundle = self.bundle_at(*bundle);
                let address = Self::text_address(doc, *paragraph, *start, *len);
                let mark_id = self.engine.marks_mut().create_mark_at(address)?;
                self.engine.place_mark(&mark_id, Some(label), *pos, bundle)?;
                self.record_undo(cp, op.clone());
                Ok(PadOutcome::Applied)
            }
            PadOp::Annotate { scrap, text } => {
                let cp = self.engine.dmi().checkpoint();
                let scrap = self.scrap_at(*scrap)?;
                self.engine.dmi_mut().add_annotation(scrap, text)?;
                self.record_undo(cp, op.clone());
                Ok(PadOutcome::Applied)
            }
            PadOp::Link { from, to } => {
                let cp = self.engine.dmi().checkpoint();
                let from = self.scrap_at(*from)?;
                let to = self.scrap_at(*to)?;
                self.engine.dmi_mut().link_scraps(from, to)?;
                self.record_undo(cp, op.clone());
                Ok(PadOutcome::Applied)
            }
            PadOp::Resolve { scrap } => {
                let scrap = self.scrap_at(*scrap)?;
                let r = self.engine.activate_resilient(scrap)?;
                Ok(PadOutcome::Resolved {
                    display: r.resolution.display,
                    degraded: r.outcome.degraded,
                    quarantined: r.outcome.quarantined,
                })
            }
            PadOp::Extract { scrap } => {
                let scrap = self.scrap_at(*scrap)?;
                let (content, degraded) = self.engine.extract_degraded(scrap)?;
                Ok(PadOutcome::Extracted { content, degraded })
            }
            PadOp::Rebind { scrap, doc, paragraph, start, len } => {
                let cp = self.engine.dmi().checkpoint();
                let scrap = self.scrap_at(*scrap)?;
                let mark_id = self.first_mark_id(scrap)?;
                let address = Self::text_address(doc, *paragraph, *start, *len);
                self.engine.marks_mut().rebind(&mark_id, address)?;
                self.record_undo(cp, op.clone());
                Ok(PadOutcome::Applied)
            }
            PadOp::Repair => {
                let quarantined = self.engine.resolver().quarantined_marks();
                let mut rebound = 0usize;
                for id in quarantined {
                    let excerpt = self.engine.marks().get(&id)?.excerpt.clone();
                    let candidates = if excerpt.is_empty() {
                        Vec::new()
                    } else {
                        (self.search)(&excerpt)
                    };
                    let (resolver, marks) = self.engine.resolver_parts();
                    if let marks::RebindOutcome::Rebound { .. } =
                        resolver.try_rebind(marks, &id, &candidates)?
                    {
                        rebound += 1;
                    }
                }
                let still = self.engine.resolver().quarantined_marks().len();
                Ok(PadOutcome::Repaired { rebound, still_quarantined: still })
            }
            PadOp::Undo => {
                let (cp, undone) = self
                    .undo_ops
                    .pop()
                    .ok_or_else(|| PadError::File { message: "nothing to undo".into() })?;
                if let Err(e) = self.engine.dmi_mut().rollback(cp) {
                    // The journal no longer reaches the checkpoint (a
                    // compaction truncated it): put the entry back and
                    // refuse; nothing changed.
                    self.undo_ops.push((cp, undone));
                    return Err(e.into());
                }
                self.redo_ops.push(undone);
                Ok(PadOutcome::Stepped(true))
            }
            PadOp::Redo => {
                let op = self
                    .redo_ops
                    .last()
                    .cloned()
                    .ok_or_else(|| PadError::File { message: "nothing to redo".into() })?;
                // Re-apply through the same code path; only pop the redo
                // entry once the re-application actually succeeded.
                self.apply(&op)?;
                self.redo_ops.pop();
                Ok(PadOutcome::Stepped(true))
            }
            // Population counts come from the conjunctive join engine
            // (the planner/merge-join path readers use), not a linear
            // instance scan; the invisible root bundle is excluded as
            // before.
            PadOp::Inspect => {
                let (bundles, scraps) = self.engine.dmi().population_by_join();
                Ok(PadOutcome::Inspected {
                    digest: self.digest(),
                    bundles: bundles.saturating_sub(1),
                    scraps,
                    marks: self.engine.marks().len(),
                })
            }
            // Durability hints: the live writer commits every batch and
            // compacts after the batch's commit; in apply (and so in a
            // replay mirror) they change nothing.
            PadOp::Commit | PadOp::Compact => Ok(PadOutcome::Durable),
            PadOp::ChaosPanic { detail } => {
                std::panic::panic_any(detail.clone());
            }
            // Parking is the writer's own affair; in a replay it is a
            // pure no-op.
            PadOp::ChaosPark(_) => Ok(PadOutcome::Applied),
        }
    }

    fn record_undo(&mut self, cp: trim::Revision, op: PadOp) {
        self.undo_ops.push((cp, op));
        self.redo_ops.clear();
    }

    fn first_mark_id(&self, scrap: ScrapHandle) -> Result<String, PadError> {
        let data = self.engine.dmi().scrap(scrap)?;
        let first = data
            .marks
            .first()
            .ok_or_else(|| PadError::File { message: "scrap has no mark handle".into() })?;
        Ok(self.engine.dmi().mark_handle(*first)?.mark_id)
    }

    /// The pad's *logical* digest: bundle and scrap content keyed by
    /// canonical position, plus mark identities, kinds, and addresses.
    ///
    /// Deliberately excluded, because they legitimately diverge between
    /// a live faulted run and a clean replay of its acked ops: minted
    /// resource ids (refused ops intern atoms that rollback cannot
    /// un-intern) and mark excerpts (captured through a possibly-flaky
    /// module at creation time).
    pub fn digest(&self) -> u64 {
        let dmi = self.engine.dmi();
        let bundles = self.bundles();
        let scraps = self.scraps();
        let bundle_index: BTreeMap<BundleHandle, usize> =
            bundles.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let scrap_index: BTreeMap<ScrapHandle, usize> =
            scraps.iter().enumerate().map(|(i, s)| (*s, i)).collect();

        let mut h = Fnv::new();
        h.write(b"pad-digest-v1");
        h.write_u64(bundles.len() as u64);
        for b in &bundles {
            let Ok(data) = dmi.bundle(*b) else { continue };
            h.write(b"B");
            h.write(data.name.as_bytes());
            h.write_u64(data.pos.0 as u64);
            h.write_u64(data.pos.1 as u64);
            h.write_u64(data.width as u64);
            h.write_u64(data.height as u64);
            // Membership lists come back in atom order, which is not
            // reload-stable; hash them as sorted sets of canonical
            // positions.
            let mut nested: Vec<u64> = data
                .nested
                .iter()
                .map(|n| bundle_index.get(n).map_or(u64::MAX, |i| *i as u64))
                .collect();
            nested.sort_unstable();
            for i in nested {
                h.write_u64(i);
            }
            let mut members: Vec<u64> = data
                .scraps
                .iter()
                .map(|s| scrap_index.get(s).map_or(u64::MAX, |i| *i as u64))
                .collect();
            members.sort_unstable();
            for i in members {
                h.write_u64(i);
            }
        }
        h.write_u64(scraps.len() as u64);
        for s in &scraps {
            let Ok(data) = dmi.scrap(*s) else { continue };
            h.write(b"S");
            h.write(data.name.as_bytes());
            h.write_u64(data.pos.0 as u64);
            h.write_u64(data.pos.1 as u64);
            h.write_u64(data.marks.len() as u64);
            let mut mark_ids: Vec<String> = data
                .marks
                .iter()
                .filter_map(|handle| dmi.mark_handle(*handle).ok().map(|mh| mh.mark_id))
                .collect();
            mark_ids.sort_unstable();
            for id in mark_ids {
                h.write(id.as_bytes());
            }
            if let Ok(mut notes) = dmi.annotations(*s) {
                notes.sort_unstable();
                for note in notes {
                    h.write(b"A");
                    h.write(note.as_bytes());
                }
            }
            if let Ok(links) = dmi.scrap_links(*s) {
                let mut targets: Vec<u64> = links
                    .into_iter()
                    .map(|to| scrap_index.get(&to).map_or(u64::MAX, |i| *i as u64))
                    .collect();
                targets.sort_unstable();
                for to in targets {
                    h.write(b"L");
                    h.write_u64(to);
                }
            }
        }
        let marks = self.engine.marks();
        h.write_u64(marks.len() as u64);
        for mark in marks.marks() {
            h.write(b"M");
            h.write(mark.mark_id.as_bytes());
            h.write(mark.kind().id().as_bytes());
            h.write(mark.address.to_string().as_bytes());
        }
        h.finish()
    }
}

/// FNV-1a, inlined so the digest is stable and dependency-free.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Delimit fields so ("ab","c") and ("a","bc") differ.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

/// A write submission waiting for its verdict.
struct PendingPad {
    session: u64,
    op: PadOp,
    deadline_ms: u64,
    slot: Arc<Slot<PadAck>>,
}

struct PadQueue {
    items: VecDeque<PendingPad>,
    closed: bool,
    aborted: bool,
}

struct PadShared {
    queue: Mutex<PadQueue>,
    not_empty: Condvar,
    sessions: Mutex<BTreeMap<u64, Breaker>>,
    next_session: AtomicU64,
    stats: AtomicPadStats,
    clock: Arc<dyn Clock + Send + Sync>,
    config: PadConfig,
    writer_gone: AtomicBool,
    /// Last published logical digest (readers never block on the
    /// writer; this is the pad-level analogue of the snapshot mutex).
    digest: AtomicU64,
}

/// The factory the writer calls to (re)build its mark layer: once at
/// startup and again after an I/O refusal forces a reopen from disk.
/// Runs on the writer thread, so the parts it returns may be `!Send`.
pub type PadPartsFactory = Box<dyn FnMut() -> Result<PadParts, PadError> + Send>;

/// A supervised, concurrent, crash-recoverable pad session service.
///
/// Created with [`PadService::open`]; handed out as
/// [`PadSessionHandle`]s. Dropping (or [`PadService::shutdown`]) drains
/// the queue gracefully; [`PadService::abort`] refuses everything still
/// queued — the durable state is whatever was last committed, exactly
/// like a crash.
pub struct PadService {
    shared: Arc<PadShared>,
    writer: Option<JoinHandle<()>>,
}

impl PadService {
    /// Open (or create) the logged pad at `path` on `vfs` and start the
    /// pad writer thread. `factory` builds the mark manager, resolver,
    /// and repair search — it is called on the writer thread at startup
    /// and again if a commit failure forces a reopen from disk.
    pub fn open(
        vfs: Arc<dyn Vfs + Send + Sync>,
        path: &Path,
        config: PadConfig,
        clock: Arc<dyn Clock + Send + Sync>,
        factory: PadPartsFactory,
    ) -> Result<PadService, ServeError> {
        let shared = Arc::new(PadShared {
            queue: Mutex::new(PadQueue {
                items: VecDeque::new(),
                closed: false,
                aborted: false,
            }),
            not_empty: Condvar::new(),
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU64::new(0),
            stats: AtomicPadStats::default(),
            clock,
            config,
            writer_gone: AtomicBool::new(false),
            digest: AtomicU64::new(0),
        });
        // The engine is !Send (its resolver holds an Rc clock), so it
        // is born, lives, and dies on the writer thread; the opener
        // only learns whether construction worked.
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<Result<(), String>>();
        let writer_shared = Arc::clone(&shared);
        let path = path.to_path_buf();
        let writer = std::thread::Builder::new()
            .name("slimserve-pad-writer".into())
            .spawn(move || pad_writer_loop(writer_shared, vfs, path, factory, ready_tx))
            .map_err(|e| ServeError::Io { detail: format!("spawn pad writer: {e}") })?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(PadService { shared, writer: Some(writer) }),
            Ok(Err(detail)) => {
                let _ = writer.join();
                Err(ServeError::Io { detail })
            }
            Err(_) => {
                let _ = writer.join();
                Err(ServeError::Io { detail: "pad writer died during startup".into() })
            }
        }
    }

    /// Register a new session and hand back its submission handle.
    pub fn session(&self) -> PadSessionHandle {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        lock(&self.shared.sessions)
            .insert(id, Breaker::new(self.shared.config.breaker.clone()));
        PadSessionHandle { shared: Arc::clone(&self.shared), id }
    }

    /// The most recently published logical pad digest (updated after
    /// every batch; readers never block on the writer).
    pub fn digest(&self) -> u64 {
        self.shared.digest.load(Ordering::Acquire)
    }

    /// Counters so far.
    pub fn stats(&self) -> PadServeStats {
        self.shared.stats.read()
    }

    /// Stop accepting work, let the writer drain and durably commit
    /// everything already queued, and join it.
    pub fn shutdown(mut self) -> PadServeStats {
        self.close(false);
        self.join_writer();
        self.shared.stats.read()
    }

    /// Stop immediately: everything still queued is refused with
    /// [`ServeError::Closed`]. Durable state = last committed batch,
    /// exactly like a crash.
    pub fn abort(mut self) -> PadServeStats {
        self.close(true);
        self.join_writer();
        self.shared.stats.read()
    }

    fn close(&self, abort: bool) {
        let mut q = lock(&self.shared.queue);
        q.closed = true;
        if abort {
            q.aborted = true;
        }
        self.shared.not_empty.notify_all();
    }

    fn join_writer(&mut self) {
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PadService {
    fn drop(&mut self) {
        if self.writer.is_some() {
            self.close(false);
            self.join_writer();
        }
    }
}

/// One session's capability to submit pad ops.
pub struct PadSessionHandle {
    shared: Arc<PadShared>,
    id: u64,
}

impl PadSessionHandle {
    /// This session's id (stable for its lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submit an op and wait for its verdict.
    pub fn submit(&self, op: PadOp) -> Result<PadAck, ServeError> {
        self.enqueue(op)?.wait()
    }

    /// Submit an op without waiting. Admission refusals (quarantine,
    /// overload, closed) surface immediately; the returned ticket
    /// carries the rest.
    pub fn enqueue(&self, op: PadOp) -> Result<Ticket<PadAck>, ServeError> {
        let shared = &self.shared;
        let now = shared.clock.now_ms();
        {
            let mut sessions = lock(&shared.sessions);
            let breaker =
                sessions.get_mut(&self.id).expect("session is registered for its lifetime");
            if let Admit::ShortCircuit { open_until } = breaker.admit(now) {
                AtomicPadStats::bump(&shared.stats.quarantine_rejections);
                return Err(ServeError::Quarantined {
                    session: self.id,
                    open_until_ms: open_until,
                });
            }
        }
        let mut q = lock(&shared.queue);
        if q.closed || shared.writer_gone.load(Ordering::Acquire) {
            AtomicPadStats::bump(&shared.stats.closed_refusals);
            return Err(ServeError::Closed);
        }
        if q.items.len() >= shared.config.queue_capacity {
            let retry_after_ms = suggested_backoff_ms(
                q.items.len(),
                shared.config.queue_capacity,
                shared.config.op_deadline_ms,
            );
            AtomicPadStats::bump(&shared.stats.shed);
            AtomicPadStats::add(&shared.stats.shed_backoff_ms, retry_after_ms);
            return Err(ServeError::Overloaded {
                queue_len: q.items.len(),
                capacity: shared.config.queue_capacity,
                retry_after_ms,
            });
        }
        let slot = Arc::new(Slot::default());
        q.items.push_back(PendingPad {
            session: self.id,
            op,
            deadline_ms: now.saturating_add(shared.config.op_deadline_ms),
            slot: Arc::clone(&slot),
        });
        AtomicPadStats::bump(&shared.stats.submitted);
        shared.not_empty.notify_one();
        Ok(Ticket::new(slot))
    }

    /// The most recently published logical pad digest.
    pub fn digest(&self) -> u64 {
        self.shared.digest.load(Ordering::Acquire)
    }

    /// This session's breaker state (quarantine observability).
    pub fn breaker_state(&self) -> BreakerState {
        lock(&self.shared.sessions)
            .get(&self.id)
            .expect("session is registered for its lifetime")
            .state()
    }
}

// ---------------------------------------------------------------------
// Pad writer thread
// ---------------------------------------------------------------------

/// Build (or reopen) the machine from disk. A missing file means a
/// brand-new pad: create, register the factory's mark layer, enable
/// logging.
fn build_machine(
    vfs: &Arc<dyn Vfs + Send + Sync>,
    path: &Path,
    factory: &mut PadPartsFactory,
) -> Result<PadMachine, PadError> {
    let parts = factory()?;
    let mut engine = if vfs.exists(path) {
        let (engine, _report) = PadEngine::open_logged(&**vfs, path, parts.manager)?;
        engine
    } else {
        let mut engine = PadEngine::new("service-pad")?;
        *engine.marks_mut() = parts.manager;
        engine.enable_logging(&**vfs, path)?;
        engine
    };
    engine.set_resolver(parts.resolver);
    Ok(PadMachine::new(engine, parts.search))
}

fn pad_writer_loop(
    shared: Arc<PadShared>,
    vfs: Arc<dyn Vfs + Send + Sync>,
    path: PathBuf,
    mut factory: PadPartsFactory,
    ready_tx: std::sync::mpsc::Sender<Result<(), String>>,
) {
    let mut machine = match build_machine(&vfs, &path, &mut factory) {
        Ok(machine) => {
            shared.digest.store(machine.digest(), Ordering::Release);
            let _ = ready_tx.send(Ok(()));
            Some(machine)
        }
        Err(e) => {
            let _ = ready_tx.send(Err(e.to_string()));
            shared.writer_gone.store(true, Ordering::Release);
            return;
        }
    };
    let mut next_order: u64 = 0;
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            while q.items.is_empty() && !q.closed {
                q = wait(&shared.not_empty, q);
            }
            if q.aborted {
                let leftovers: Vec<PendingPad> = q.items.drain(..).collect();
                drop(q);
                for p in leftovers {
                    AtomicPadStats::bump(&shared.stats.closed_refusals);
                    p.slot.resolve(Err(ServeError::Closed));
                }
                break;
            }
            if q.items.is_empty() {
                break; // closed and drained: graceful end
            }
            let take = q.items.len().min(shared.config.max_batch);
            q.items.drain(..take).collect::<Vec<PendingPad>>()
        };
        machine = process_pad_batch(
            &shared,
            &vfs,
            &path,
            &mut factory,
            machine,
            &mut next_order,
            batch,
        );
    }
    shared.writer_gone.store(true, Ordering::Release);
}

/// True when the op can mutate the mark store, so containment must
/// snapshot it for restore-on-refusal (the TRIM journal only rolls back
/// triples).
fn touches_marks(op: &PadOp) -> bool {
    matches!(op, PadOp::CreateMark { .. } | PadOp::Rebind { .. } | PadOp::Repair)
}

fn process_pad_batch(
    shared: &PadShared,
    vfs: &Arc<dyn Vfs + Send + Sync>,
    path: &Path,
    factory: &mut PadPartsFactory,
    machine: Option<PadMachine>,
    next_order: &mut u64,
    batch: Vec<PendingPad>,
) -> Option<PadMachine> {
    let Some(mut machine) = machine else {
        // Dead store: a reopen after a commit failure also failed.
        // Every op is refused loudly until the service is restarted.
        for p in batch {
            AtomicPadStats::bump(&shared.stats.io_refusals);
            p.slot.resolve(Err(ServeError::Io {
                detail: "pad store is unavailable (reopen after commit failure failed)".into(),
            }));
        }
        return None;
    };

    // Phase 1: apply each op under the supervisor's containment.
    let mut applied: Vec<(PendingPad, PadOutcome)> = Vec::with_capacity(batch.len());
    for p in batch {
        let now = shared.clock.now_ms();
        if now > p.deadline_ms {
            AtomicPadStats::bump(&shared.stats.timed_out);
            p.slot.resolve(Err(ServeError::Timeout { deadline_ms: p.deadline_ms, now_ms: now }));
            continue;
        }
        // Parking is the writer's own affair, outside the supervised
        // apply (which treats the op as a no-op).
        if let PadOp::ChaosPark(gate) = &p.op {
            gate.pass();
        }
        let checkpoint = machine.engine().dmi().checkpoint();
        let marks_before = touches_marks(&p.op).then(|| machine.engine().marks().to_xml());
        let undo_len = machine.undo_len();
        let redo_len = machine.redo_len();
        let verdict = quiet_catch_unwind(|| machine.apply(&p.op));
        match verdict {
            Ok(Ok(outcome)) => {
                if let PadOutcome::Resolved { degraded: true, .. } = &outcome {
                    AtomicPadStats::bump(&shared.stats.degraded_resolutions);
                }
                if let PadOutcome::Repaired { rebound, .. } = &outcome {
                    AtomicPadStats::add(&shared.stats.repairs, *rebound as u64);
                }
                applied.push((p, outcome));
            }
            Ok(Err(e)) => {
                contain(&mut machine, checkpoint, marks_before, undo_len, redo_len);
                note_pad_failure(shared, p.session);
                AtomicPadStats::bump(&shared.stats.engine_refusals);
                p.slot.resolve(Err(ServeError::from(e)));
            }
            Err(detail) => {
                contain(&mut machine, checkpoint, marks_before, undo_len, redo_len);
                note_pad_failure(shared, p.session);
                AtomicPadStats::bump(&shared.stats.panicked);
                p.slot.resolve(Err(ServeError::Panicked { detail }));
            }
        }
    }
    if applied.is_empty() {
        return Some(machine);
    }

    // Phase 2: one durable group commit for the whole batch (store
    // delta + marks sidecar, one frame, one sync). Explicit Commit ops
    // ride this commit; explicit Compact ops are honoured just after it
    // — never mid-batch, so a failed group commit refuses a batch whose
    // effects are guaranteed to not be on disk.
    let wants_compact = applied.iter().any(|(p, _)| matches!(p.op, PadOp::Compact));
    let durable_seq = match machine.engine_mut().commit(&**vfs) {
        Ok(trim::CommitOutcome::Committed { seq, .. }) => {
            AtomicPadStats::bump(&shared.stats.commits);
            Some(seq)
        }
        Ok(_) => None,
        Err(e) => {
            // The batch's effects cannot be made durable. Truncate the
            // suspect log tail first — a torn append can land the
            // doomed frame fully readable, and both the reopen below
            // and any future cold start would adopt the refused batch
            // as committed history. Best effort: if the repair itself
            // fails the reopen still runs against whatever is durable.
            let detail = e.to_string();
            let _ = machine.engine_mut().repair_log(&**vfs);
            // Fall back to the last durable state by reopening from
            // disk, and publish its digest *before* resolving the
            // refusals, so a submitter that has seen its Io error
            // already reads a digest consistent with the rollback.
            let reopened = build_machine(vfs, path, factory).ok();
            if let Some(m) = &reopened {
                shared.digest.store(m.digest(), Ordering::Release);
            }
            for (p, _) in applied {
                AtomicPadStats::bump(&shared.stats.io_refusals);
                p.slot.resolve(Err(ServeError::Io { detail: detail.clone() }));
            }
            return reopened;
        }
    };
    if (wants_compact || machine.engine().should_compact())
        && machine.engine_mut().compact(&**vfs).is_ok()
    {
        AtomicPadStats::bump(&shared.stats.compactions);
    }

    // Phase 3: publish the digest, then acknowledge — an ack implies a
    // published digest at least as new as the op, and durability.
    shared.digest.store(machine.digest(), Ordering::Release);
    for (p, outcome) in applied {
        let ack = PadAck { order: *next_order, durable_seq, outcome };
        *next_order += 1;
        note_pad_success(shared, p.session);
        AtomicPadStats::bump(&shared.stats.acked);
        p.slot.resolve(Ok(ack));
    }
    Some(machine)
}

/// Containment: restore the machine to its pre-op state after a typed
/// engine error or a panic — triples via the journal, marks via the
/// XML snapshot, journals via truncation.
fn contain(
    machine: &mut PadMachine,
    checkpoint: trim::Revision,
    marks_before: Option<String>,
    undo_len: usize,
    redo_len: usize,
) {
    let _ = machine.engine_mut().dmi_mut().rollback(checkpoint);
    if let Some(xml) = marks_before {
        let _ = machine.engine_mut().marks_mut().load_xml(&xml);
    }
    machine.resync_journals(undo_len, redo_len);
}

fn note_pad_failure(shared: &PadShared, session: u64) {
    let now = shared.clock.now_ms();
    if let Some(breaker) = lock(&shared.sessions).get_mut(&session) {
        breaker.on_failure(now);
    }
}

fn note_pad_success(shared: &PadShared, session: u64) {
    if let Some(breaker) = lock(&shared.sessions).get_mut(&session) {
        breaker.on_success();
    }
}

// ---------------------------------------------------------------------
// A ready-made text-document universe for harnesses and tests
// ---------------------------------------------------------------------

/// Number of text documents [`ward_universe`] opens.
pub const WARD_DOCS: usize = 4;
/// Paragraphs per ward document.
pub const WARD_PARAGRAPHS: usize = 5;

/// Name of the `i`-th ward document.
pub fn ward_doc(i: u64) -> String {
    format!("ward-{}.txt", i % WARD_DOCS as u64)
}

/// A deterministic [`PadPartsFactory`] over a small universe of text
/// documents, with every text resolution routed through a
/// [`marks::FlakyModule`] governed by `control` — the shared-state
/// injection point the chaos soak and the concurrency tests arm and
/// disarm from outside the writer thread.
///
/// `clock` drives both the fault injector's latency faults and the
/// resolver's deadlines, so a harness holding the same clock can stall
/// or starve resolution deterministically.
pub fn ward_factory(
    clock: marks::MockClock,
    profile: marks::FaultProfile,
    control: marks::FlakyControl,
    policy: marks::RetryPolicy,
    breaker: BreakerConfig,
    dangle_threshold: u32,
) -> PadPartsFactory {
    Box::new(move || {
        let mut app = basedocs::TextApp::new();
        for d in 0..WARD_DOCS {
            let mut text = String::new();
            for p in 0..WARD_PARAGRAPHS {
                text.push_str(&format!(
                    "Ward {d} paragraph {p}: patient vitals stable, plan continues as charted.",
                ));
                text.push_str("\n\n");
            }
            app.open(basedocs::textdoc::TextDocument::from_text(ward_doc(d as u64), &text))
                .map_err(|e| PadError::File { message: e.to_string() })?;
        }
        let app = std::rc::Rc::new(std::cell::RefCell::new(app));
        let module = marks::AppModule::in_place("text-ward", std::rc::Rc::clone(&app));
        let flaky = marks::FlakyModule::with_control(
            Box::new(module),
            profile,
            clock.clone(),
            control.clone(),
        );
        let mut manager = MarkManager::new();
        manager.register_module(Box::new(flaky))?;
        manager.set_default_module(DocKind::Text, "text-ward")?;
        let resolver = ResilientResolver::with_config(
            std::rc::Rc::new(clock.clone()),
            policy.clone(),
            breaker.clone(),
            dangle_threshold,
        );
        let search_app = app;
        let search = Box::new(move |needle: &str| {
            search_app
                .borrow()
                .find_all(needle)
                .into_iter()
                .map(MarkAddress::Text)
                .collect::<Vec<_>>()
        });
        Ok(PadParts { manager, resolver, search })
    })
}

/// A replay mirror over the same ward universe: a fresh unlogged
/// [`PadMachine`] (clean modules, mock-clock resolver) ready to replay
/// acknowledged [`PadOp`]s in order. Commit/compact replay as no-ops.
pub fn ward_mirror() -> PadMachine {
    let mut factory = ward_factory(
        marks::MockClock::new(),
        marks::FaultProfile::healthy(),
        marks::FlakyControl::new(0),
        marks::RetryPolicy::default(),
        BreakerConfig::default(),
        3,
    );
    let parts = factory().expect("ward universe construction is infallible");
    let mut engine = PadEngine::new("service-pad").expect("fresh pad");
    *engine.marks_mut() = parts.manager;
    engine.set_resolver(parts.resolver);
    PadMachine::new(engine, parts.search)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marks::resilience::MockClock;
    use marks::{FaultProfile, FlakyControl, RetryPolicy};
    use slimio::MemVfs;

    const PAD: &str = "serve/pad.xml";

    fn small_breaker() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 500,
            probe_budget: 3,
            probe_successes: 1,
        }
    }

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 1,
            max_backoff_ms: 4,
            deadline_ms: 200,
            jitter_seed: 7,
        }
    }

    struct Rig {
        service: PadService,
        vfs: Arc<MemVfs>,
        clock: Arc<MockClock>,
        control: FlakyControl,
    }

    fn open_rig(profile: FaultProfile, config: PadConfig) -> Rig {
        let vfs = Arc::new(MemVfs::new());
        let clock = Arc::new(MockClock::new());
        let control = FlakyControl::new(7);
        control.disarm();
        let factory = ward_factory(
            (*clock).clone(),
            profile,
            control.clone(),
            quick_policy(),
            small_breaker(),
            2,
        );
        let service = PadService::open(
            vfs.clone(),
            Path::new(PAD),
            config,
            clock.clone(),
            factory,
        )
        .unwrap();
        Rig { service, vfs, clock, control }
    }

    fn create_mark_op(i: u64) -> PadOp {
        PadOp::CreateMark {
            doc: ward_doc(i),
            paragraph: i % WARD_PARAGRAPHS as u64,
            start: 0,
            len: 6,
            label: format!("scrap {i}"),
            pos: (10 * i as i64, 20),
            bundle: None,
        }
    }

    /// Replay acked ops into a fresh mirror and return its digest.
    fn replay_digest(acked: &[(u64, PadOp)]) -> u64 {
        let mut ordered: Vec<&(u64, PadOp)> = acked.iter().collect();
        ordered.sort_by_key(|(order, _)| *order);
        let mut mirror = ward_mirror();
        for (_, op) in ordered {
            mirror.apply(op).expect("acked ops replay cleanly");
        }
        mirror.digest()
    }

    #[test]
    fn pad_ops_apply_ack_and_replay_to_the_same_digest() {
        let rig = open_rig(FaultProfile::healthy(), PadConfig::default());
        let session = rig.service.session();
        let mut acked = Vec::new();
        let script = vec![
            PadOp::CreateBundle {
                name: "meds".into(),
                pos: (5, 5),
                width: 300,
                height: 200,
                parent: None,
            },
            create_mark_op(0),
            create_mark_op(1),
            PadOp::Annotate { scrap: 0, text: "check dosage".into() },
            PadOp::Link { from: 0, to: 1 },
            PadOp::Undo,
            PadOp::Redo,
            PadOp::Commit,
        ];
        for op in script {
            let ack = session.submit(op.clone()).unwrap();
            // Undo batches can commit clean (the journal rewinds the
            // delta to exactly the last durable state).
            assert!(
                ack.durable_seq.is_some()
                    || matches!(op, PadOp::Commit | PadOp::Inspect | PadOp::Undo)
            );
            acked.push((ack.order, op));
        }
        let live = rig.service.digest();
        assert_eq!(live, replay_digest(&acked), "live == serialized replay of acked ops");

        // On-disk state: shut down, reopen a fresh machine from disk.
        drop(rig.service);
        let mut factory = ward_factory(
            MockClock::new(),
            FaultProfile::healthy(),
            FlakyControl::new(0),
            quick_policy(),
            small_breaker(),
            2,
        );
        let vfs: Arc<dyn Vfs + Send + Sync> = rig.vfs;
        let reopened = build_machine(&vfs, Path::new(PAD), &mut factory).unwrap();
        assert_eq!(live, reopened.digest(), "live == post-shutdown on-disk digest");
    }

    #[test]
    fn engine_refusals_are_typed_rolled_back_and_never_acked() {
        let rig = open_rig(FaultProfile::healthy(), PadConfig::default());
        let session = rig.service.session();
        // No scraps yet: selector ops refuse with a typed engine error.
        let err = session.submit(PadOp::Annotate { scrap: 0, text: "x".into() }).unwrap_err();
        assert!(matches!(err, ServeError::Engine { .. }), "{err:?}");
        let err = session.submit(PadOp::Undo).unwrap_err();
        assert!(matches!(err, ServeError::Engine { .. }), "{err:?}");
        let before = rig.service.digest();
        // A self-link is refused by the engine mid-apply and rolled back.
        session.submit(create_mark_op(0)).unwrap();
        let after_mark = rig.service.digest();
        assert_ne!(before, after_mark);
        let err = session.submit(PadOp::Link { from: 0, to: 0 }).unwrap_err();
        assert!(matches!(err, ServeError::Engine { .. }), "{err:?}");
        assert_eq!(rig.service.digest(), after_mark, "refused op left no trace");
        let stats = rig.service.stats();
        assert_eq!(stats.engine_refusals, 3);
        assert_eq!(stats.unaccounted(), 0);
    }

    #[test]
    fn panics_are_contained_and_the_pad_survives() {
        let rig = open_rig(FaultProfile::healthy(), PadConfig::default());
        let session = rig.service.session();
        session.submit(create_mark_op(0)).unwrap();
        let digest = rig.service.digest();
        let err =
            session.submit(PadOp::ChaosPanic { detail: "injected".into() }).unwrap_err();
        assert_eq!(err, ServeError::Panicked { detail: "injected".into() });
        assert_eq!(rig.service.digest(), digest);
        session.submit(create_mark_op(1)).unwrap();
        assert_ne!(rig.service.digest(), digest, "writer still serving after the panic");
    }

    #[test]
    fn degraded_resolution_under_concurrency_never_hangs_or_panics() {
        // The satellite: FlakyModule armed *inside* the service, many
        // concurrent readers — every resolve comes back typed, some
        // degraded, none hung, none panicked.
        let rig = open_rig(FaultProfile::always_transient(), PadConfig::default());
        let service = Arc::new(rig.service);
        let session = service.session();
        for i in 0..6 {
            session.submit(create_mark_op(i)).unwrap();
        }
        rig.control.arm(); // faults on: every text resolve now fails
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let session = service.session();
            handles.push(std::thread::spawn(move || {
                let mut degraded = 0usize;
                for i in 0..8u64 {
                    match session.submit(PadOp::Resolve { scrap: (t * 8 + i) % 6 }) {
                        Ok(PadAck { outcome: PadOutcome::Resolved { degraded: d, display, .. }, .. }) => {
                            if d {
                                degraded += 1;
                                assert!(
                                    display.starts_with("Ward"),
                                    "degraded display is the stored excerpt, got {display:?}"
                                );
                            }
                        }
                        Ok(other) => panic!("unexpected outcome {other:?}"),
                        Err(e) => panic!("resolve must degrade, not refuse: {e:?}"),
                    }
                }
                degraded
            }));
        }
        let degraded: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(degraded, 32, "every armed resolve degrades to the excerpt");
        rig.control.disarm();
        // The storm tripped the resolver's per-module breaker; step past
        // its cooldown so the disarmed module gets a live probe.
        rig.clock.advance(1_000);
        let ack = session.submit(PadOp::Resolve { scrap: 0 }).unwrap();
        assert!(
            matches!(ack.outcome, PadOutcome::Resolved { degraded: false, .. }),
            "disarmed module resolves live again: {:?}",
            ack.outcome
        );
        let stats = service.stats();
        assert_eq!(stats.degraded_resolutions, 32);
        assert_eq!(stats.unaccounted(), 0);
    }

    #[test]
    fn breaker_ledger_balances_across_a_crash_incarnation() {
        // Run an incarnation with faults and panics, abort (crash), and
        // reopen; merged stats stay balanced and the recovered pad
        // equals the replay of all acked ops across both incarnations.
        let rig = open_rig(FaultProfile::always_transient(), PadConfig::default());
        let session = rig.service.session();
        let mut acked = Vec::new();
        for i in 0..4 {
            let op = create_mark_op(i);
            let ack = session.submit(op.clone()).unwrap();
            acked.push((ack.order, op));
        }
        rig.control.arm();
        for i in 0..3u64 {
            let op = PadOp::Resolve { scrap: i };
            let ack = session.submit(op.clone()).unwrap();
            assert!(matches!(
                ack.outcome,
                PadOutcome::Resolved { degraded: true, .. }
            ));
            acked.push((ack.order, op));
        }
        let _ = session.submit(PadOp::ChaosPanic { detail: "boom".into() }).unwrap_err();
        let mut merged = rig.service.abort();

        // Second incarnation on the surviving bytes.
        let clock = Arc::new(MockClock::new());
        let control = FlakyControl::new(7);
        control.disarm();
        let factory = ward_factory(
            (*clock).clone(),
            FaultProfile::always_transient(),
            control,
            quick_policy(),
            small_breaker(),
            2,
        );
        let service = PadService::open(
            rig.vfs.clone(),
            Path::new(PAD),
            PadConfig::default(),
            clock,
            factory,
        )
        .unwrap();
        let session = service.session();
        for i in 4..6 {
            let op = create_mark_op(i);
            let ack = session.submit(op.clone()).unwrap();
            // Orders restart per incarnation; offset for replay sorting.
            acked.push((1_000 + ack.order, op));
        }
        let live = service.digest();
        merged += service.shutdown();
        assert_eq!(merged.acked, 4 + 3 + 2);
        assert_eq!(merged.panicked, 1);
        assert_eq!(merged.degraded_resolutions, 3);
        assert_eq!(merged.unaccounted(), 0, "the merged ledger balances");
        assert_eq!(live, replay_digest(&acked), "recovered pad == replay across incarnations");
    }

    #[test]
    fn overload_shedding_carries_the_retry_hint() {
        let rig = open_rig(
            FaultProfile::healthy(),
            PadConfig { queue_capacity: 2, max_batch: 1, op_deadline_ms: 100, ..PadConfig::default() },
        );
        let session = rig.service.session();
        let gate = Gate::new();
        let park = session.enqueue(PadOp::ChaosPark(gate.clone())).unwrap();
        gate.wait_arrived();
        let t1 = session.enqueue(PadOp::Inspect).unwrap();
        let t2 = session.enqueue(PadOp::Inspect).unwrap();
        let err = session.enqueue(PadOp::Inspect).unwrap_err();
        match err {
            ServeError::Overloaded { queue_len: 2, capacity: 2, retry_after_ms } => {
                assert_eq!(retry_after_ms, 100);
            }
            other => panic!("expected overload, got {other:?}"),
        }
        gate.open();
        park.wait().unwrap();
        t1.wait().unwrap();
        t2.wait().unwrap();
        let stats = rig.service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.shed_backoff_ms, 100);
    }

    #[test]
    fn expired_deadlines_refuse_without_applying() {
        let rig = open_rig(
            FaultProfile::healthy(),
            PadConfig { op_deadline_ms: 100, ..PadConfig::default() },
        );
        let session = rig.service.session();
        let gate = Gate::new();
        let park = session.enqueue(PadOp::ChaosPark(gate.clone())).unwrap();
        gate.wait_arrived();
        let doomed = session.enqueue(create_mark_op(0)).unwrap();
        rig.clock.advance(101);
        gate.open();
        park.wait().unwrap();
        assert!(matches!(doomed.wait(), Err(ServeError::Timeout { .. })));
        let ack = session.submit(PadOp::Inspect).unwrap();
        assert!(matches!(
            ack.outcome,
            PadOutcome::Inspected { scraps: 0, .. }
        ));
    }

    #[test]
    fn repeated_faults_quarantine_the_session_until_cooldown() {
        let rig = open_rig(
            FaultProfile::healthy(),
            PadConfig { breaker: small_breaker(), ..PadConfig::default() },
        );
        let bad = rig.service.session();
        let good = rig.service.session();
        for _ in 0..2 {
            let _ = bad.submit(PadOp::ChaosPanic { detail: "boom".into() }).unwrap_err();
        }
        let err = bad.submit(PadOp::Inspect).unwrap_err();
        assert!(matches!(err, ServeError::Quarantined { .. }), "{err:?}");
        good.submit(create_mark_op(0)).unwrap();
        rig.clock.advance(500);
        bad.submit(PadOp::Inspect).unwrap();
        assert!(matches!(bad.breaker_state(), BreakerState::Closed { .. }));
    }

    #[test]
    fn dangling_marks_quarantine_and_repair_rebinds_them() {
        let rig = open_rig(FaultProfile::healthy(), PadConfig::default());
        let session = rig.service.session();
        // A mark whose paragraph does not exist: dangling on resolve.
        let ack = session
            .submit(PadOp::CreateMark {
                doc: ward_doc(0),
                paragraph: 99,
                start: 0,
                len: 6,
                label: "dangler".into(),
                pos: (0, 0),
                bundle: None,
            })
            .unwrap();
        assert!(matches!(ack.outcome, PadOutcome::Applied));
        // Give it the excerpt of a real, unique sentence so repair can
        // find it (creation at a dangling address captured none).
        let target = "Ward 2 paragraph 3";
        let ack = session
            .submit(PadOp::Rebind {
                scrap: 0,
                doc: ward_doc(2),
                paragraph: 3,
                start: 0,
                len: target.len() as u64,
                })
            .unwrap();
        assert!(matches!(ack.outcome, PadOutcome::Applied));
        // Dangle it again without refreshing the excerpt: point at a
        // missing paragraph via rebind, then resolve twice to trip the
        // dangle threshold (2).
        session
            .submit(PadOp::Rebind { scrap: 0, doc: ward_doc(0), paragraph: 99, start: 0, len: 6 })
            .unwrap();
        for _ in 0..2 {
            let ack = session.submit(PadOp::Resolve { scrap: 0 }).unwrap();
            assert!(matches!(ack.outcome, PadOutcome::Resolved { degraded: true, .. }));
        }
        let ack = session.submit(PadOp::Resolve { scrap: 0 }).unwrap();
        assert!(
            matches!(ack.outcome, PadOutcome::Resolved { quarantined: true, .. }),
            "{:?}",
            ack.outcome
        );
        // The saved excerpt is empty (created dangling), so repair
        // refuses to guess — still quarantined.
        let ack = session.submit(PadOp::Repair).unwrap();
        assert!(matches!(
            ack.outcome,
            PadOutcome::Repaired { rebound: 0, still_quarantined: 1 }
        ));
        assert_eq!(rig.service.stats().unaccounted(), 0);
    }

    #[test]
    fn undo_redo_round_trips_and_replays() {
        let rig = open_rig(FaultProfile::healthy(), PadConfig::default());
        let session = rig.service.session();
        let mut acked = Vec::new();
        for op in [
            create_mark_op(0),
            PadOp::Annotate { scrap: 0, text: "first".into() },
            PadOp::Undo,
            PadOp::Annotate { scrap: 0, text: "second".into() },
            PadOp::Undo,
            PadOp::Redo,
        ] {
            let ack = session.submit(op.clone()).unwrap();
            acked.push((ack.order, op));
        }
        // Redo after a new mutation is refused (journal cleared).
        for op in [PadOp::Undo, PadOp::Annotate { scrap: 0, text: "third".into() }] {
            let ack = session.submit(op.clone()).unwrap();
            acked.push((ack.order, op));
        }
        let err = session.submit(PadOp::Redo).unwrap_err();
        assert!(matches!(err, ServeError::Engine { .. }), "{err:?}");
        assert_eq!(rig.service.digest(), replay_digest(&acked));
    }
}
