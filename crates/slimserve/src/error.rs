//! Typed refusals: every op the service does not apply says why.
//!
//! The service never drops work silently. Each submission ends in
//! exactly one of: an [`crate::Ack`] (the op is durably committed), or
//! one of these errors (the op is provably *not* in the store).

use std::fmt;

/// Why a submission was refused. Every variant is a guarantee that the
/// op was **not applied** — callers can safely retry, reroute, or give
/// up without wondering whether the effect half-happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the op queue was at capacity. The op was
    /// shed at the door — nothing was enqueued.
    Overloaded {
        /// Queue occupancy observed at admission.
        queue_len: usize,
        /// The configured bound it collided with.
        capacity: usize,
    },
    /// The op's deadline passed before the writer reached it. The op
    /// was dequeued and discarded without being applied.
    Timeout {
        /// The absolute deadline stamped at submission (clock ms).
        deadline_ms: u64,
        /// The writer's clock when it picked the op up.
        now_ms: u64,
    },
    /// The session's circuit breaker is open: it faulted repeatedly
    /// and is quarantined until the cooldown elapses.
    Quarantined {
        /// The quarantined session.
        session: u64,
        /// Clock instant when probing may resume.
        open_until_ms: u64,
    },
    /// The op panicked mid-application. Its partial effects were
    /// rolled back to the pre-op checkpoint; the store and the writer
    /// survive.
    Panicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The durable commit failed (I/O). The whole batch was rolled
    /// back to the last committed revision; the log self-repairs on
    /// the next append.
    Io {
        /// The underlying error, rendered.
        detail: String,
    },
    /// The service is shut down (or shutting down); no new work is
    /// accepted and in-flight work was refused.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_len, capacity } => {
                write!(f, "overloaded: queue at {queue_len}/{capacity}, op shed")
            }
            ServeError::Timeout { deadline_ms, now_ms } => {
                write!(f, "timeout: deadline {deadline_ms}ms passed (now {now_ms}ms)")
            }
            ServeError::Quarantined { session, open_until_ms } => {
                write!(f, "session {session} quarantined until {open_until_ms}ms")
            }
            ServeError::Panicked { detail } => {
                write!(f, "op panicked (rolled back): {detail}")
            }
            ServeError::Io { detail } => write!(f, "commit failed (rolled back): {detail}"),
            ServeError::Closed => write!(f, "service closed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<trim::TrimError> for ServeError {
    fn from(e: trim::TrimError) -> Self {
        ServeError::Io { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_evidence() {
        let e = ServeError::Overloaded { queue_len: 8, capacity: 8 };
        assert!(e.to_string().contains("8/8"));
        let e = ServeError::Timeout { deadline_ms: 100, now_ms: 250 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("250"));
        let e = ServeError::Quarantined { session: 3, open_until_ms: 900 };
        assert!(e.to_string().contains("session 3"));
        let e = ServeError::Panicked { detail: "boom".into() };
        assert!(e.to_string().contains("boom"));
    }
}
