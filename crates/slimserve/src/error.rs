//! Typed refusals: every op the service does not apply says why.
//!
//! The service never drops work silently. Each submission ends in
//! exactly one of: an [`crate::Ack`] (the op is durably committed), or
//! one of these errors (the op is provably *not* in the store).

use std::fmt;

/// Why a submission was refused. Every variant is a guarantee that the
/// op was **not applied** — callers can safely retry, reroute, or give
/// up without wondering whether the effect half-happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the op queue was at capacity. The op was
    /// shed at the door — nothing was enqueued. Carries a typed retry
    /// hint so callers back off proportionally to the pressure they
    /// observed instead of hammering a full queue.
    Overloaded {
        /// Queue occupancy observed at admission.
        queue_len: usize,
        /// The configured bound it collided with.
        capacity: usize,
        /// Suggested wait before retrying, derived from the observed
        /// depth and the op deadline (see [`suggested_backoff_ms`]).
        retry_after_ms: u64,
    },
    /// The op's deadline passed before the writer reached it. The op
    /// was dequeued and discarded without being applied.
    Timeout {
        /// The absolute deadline stamped at submission (clock ms).
        deadline_ms: u64,
        /// The writer's clock when it picked the op up.
        now_ms: u64,
    },
    /// The session's circuit breaker is open: it faulted repeatedly
    /// and is quarantined until the cooldown elapses.
    Quarantined {
        /// The quarantined session.
        session: u64,
        /// Clock instant when probing may resume.
        open_until_ms: u64,
    },
    /// The op panicked mid-application. Its partial effects were
    /// rolled back to the pre-op checkpoint; the store and the writer
    /// survive.
    Panicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The durable commit failed (I/O). The whole batch was rolled
    /// back to the last committed revision; the log self-repairs on
    /// the next append.
    Io {
        /// The underlying error, rendered.
        detail: String,
    },
    /// The pad engine refused the op with a typed domain error (unknown
    /// mark, dangling handle, format violation). The op's partial
    /// effects were rolled back to the pre-op checkpoint; the session
    /// and the writer survive.
    Engine {
        /// The engine error, rendered.
        detail: String,
    },
    /// The service is shut down (or shutting down); no new work is
    /// accepted and in-flight work was refused.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_len, capacity, retry_after_ms } => {
                write!(
                    f,
                    "overloaded: queue at {queue_len}/{capacity}, op shed; retry in {retry_after_ms}ms"
                )
            }
            ServeError::Timeout { deadline_ms, now_ms } => {
                write!(f, "timeout: deadline {deadline_ms}ms passed (now {now_ms}ms)")
            }
            ServeError::Quarantined { session, open_until_ms } => {
                write!(f, "session {session} quarantined until {open_until_ms}ms")
            }
            ServeError::Panicked { detail } => {
                write!(f, "op panicked (rolled back): {detail}")
            }
            ServeError::Io { detail } => write!(f, "commit failed (rolled back): {detail}"),
            ServeError::Engine { detail } => {
                write!(f, "engine refused (rolled back): {detail}")
            }
            ServeError::Closed => write!(f, "service closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The retry hint stamped on [`ServeError::Overloaded`]: scale the op
/// deadline by the observed queue pressure, so a caller shedding against
/// a full queue waits about one deadline and a caller racing a nearly
/// drained queue retries almost immediately. Deterministic — the chaos
/// harness replays it exactly.
pub fn suggested_backoff_ms(queue_len: usize, capacity: usize, op_deadline_ms: u64) -> u64 {
    let capacity = capacity.max(1) as u64;
    let pressure = (queue_len as u64).min(capacity);
    (op_deadline_ms.saturating_mul(pressure) / capacity).max(1)
}

impl From<trim::TrimError> for ServeError {
    fn from(e: trim::TrimError) -> Self {
        ServeError::Io { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_evidence() {
        let e = ServeError::Overloaded { queue_len: 8, capacity: 8, retry_after_ms: 250 };
        assert!(e.to_string().contains("8/8"));
        assert!(e.to_string().contains("250ms"));
        let e = ServeError::Timeout { deadline_ms: 100, now_ms: 250 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("250"));
        let e = ServeError::Quarantined { session: 3, open_until_ms: 900 };
        assert!(e.to_string().contains("session 3"));
        let e = ServeError::Panicked { detail: "boom".into() };
        assert!(e.to_string().contains("boom"));
        let e = ServeError::Engine { detail: "unknown mark".into() };
        assert!(e.to_string().contains("unknown mark"));
    }

    #[test]
    fn backoff_scales_with_queue_pressure() {
        // Full queue: wait a whole deadline. Near-empty: retry at once.
        assert_eq!(suggested_backoff_ms(8, 8, 1_000), 1_000);
        assert_eq!(suggested_backoff_ms(4, 8, 1_000), 500);
        assert_eq!(suggested_backoff_ms(0, 8, 1_000), 1);
        // Degenerate configs never divide by zero or return zero.
        assert_eq!(suggested_backoff_ms(5, 0, 1_000), 1_000);
        assert_eq!(suggested_backoff_ms(1, 8, 0), 1);
    }
}
