//! The service: session handles, the bounded op queue, and the
//! supervised writer thread.
//!
//! ```text
//!  SessionHandle ──submit──▶ [bounded queue] ──batch──▶ writer thread
//!       │   ▲                 (admission:                 │ per op:
//!       │   └─ Ack / typed     Overloaded when full,      │  deadline check → Timeout
//!       │      refusal         Quarantined when the       │  catch_unwind  → Panicked
//!       │                      session's breaker is open) │  apply to TripleStore
//!       └──snapshot()                                     │ per batch:
//!            ▲                                            │  WAL group commit (1 sync)
//!            └───────────── publish ◀─────────────────────┘  then ack, then publish
//! ```
//!
//! The writer owns the [`TripleStore`], its [`StoreLog`], and the
//! [`SnapshotPublisher`]; nothing else ever touches them. Sessions
//! interact only through the queue (writes) and the published
//! [`Snapshot`] (reads), so a fault in one session's op can be rolled
//! back and refused without the other sessions noticing more than a
//! momentary queue delay.

use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread::JoinHandle;

use marks::resilience::{Admit, Breaker, BreakerConfig, BreakerState, Clock};
use slimio::Vfs;
use trim::{
    CommitOutcome, LogReport, PublishPath, Snapshot, SnapshotPublisher, StoreLog, TripleStore,
};

use crate::error::{suggested_backoff_ms, ServeError};
use crate::op::{lock, wait, Ack, ServeOp, Slot, Ticket};

/// Tuning for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Op-queue bound; submissions beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Most ops the writer applies per group commit.
    pub max_batch: usize,
    /// Deadline stamped on each op at submission; ops dequeued later
    /// than this are refused with [`ServeError::Timeout`].
    pub op_deadline_ms: u64,
    /// Per-session circuit-breaker tuning (quarantine behaviour).
    pub breaker: BreakerConfig,
    /// Log size (bytes) past which the writer compacts opportunistically.
    pub compact_threshold: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_batch: 64,
            op_deadline_ms: 1_000,
            breaker: BreakerConfig::default(),
            compact_threshold: 1 << 20,
        }
    }
}

/// Monotonic counters describing everything the service did. Every
/// submission lands in exactly one of `acked`, `shed`, `timed_out`,
/// `panicked`, `quarantine_rejections`, `io_refusals`, or
/// `closed_refusals` — the books always balance, which the chaos
/// harness checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Ops accepted into the queue.
    pub submitted: u64,
    /// Ops durably committed and acknowledged.
    pub acked: u64,
    /// Ops shed at admission (queue full).
    pub shed: u64,
    /// Total backoff (ms) suggested to shed submitters — the sum of the
    /// [`ServeError::Overloaded`] retry hints handed out.
    pub shed_backoff_ms: u64,
    /// Ops refused because their deadline passed in the queue.
    pub timed_out: u64,
    /// Ops that panicked and were rolled back.
    pub panicked: u64,
    /// Submissions refused because the session was quarantined.
    pub quarantine_rejections: u64,
    /// Ops refused because their batch's commit failed.
    pub io_refusals: u64,
    /// Ops refused because the service was closing.
    pub closed_refusals: u64,
    /// Durable WAL group commits.
    pub commits: u64,
    /// Log compactions (opportunistic or forced).
    pub compactions: u64,
    /// Snapshots published to readers.
    pub snapshots_published: u64,
    /// Snapshot publishes that fell back to a full rebuild.
    pub snapshot_rebuilds: u64,
}

impl std::ops::AddAssign for ServeStats {
    /// Field-wise sum, for merging the counters of successive service
    /// incarnations across a crash/reopen boundary.
    fn add_assign(&mut self, rhs: ServeStats) {
        self.submitted += rhs.submitted;
        self.acked += rhs.acked;
        self.shed += rhs.shed;
        self.shed_backoff_ms += rhs.shed_backoff_ms;
        self.timed_out += rhs.timed_out;
        self.panicked += rhs.panicked;
        self.quarantine_rejections += rhs.quarantine_rejections;
        self.io_refusals += rhs.io_refusals;
        self.closed_refusals += rhs.closed_refusals;
        self.commits += rhs.commits;
        self.compactions += rhs.compactions;
        self.snapshots_published += rhs.snapshots_published;
        self.snapshot_rebuilds += rhs.snapshot_rebuilds;
    }
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    acked: AtomicU64,
    shed: AtomicU64,
    shed_backoff_ms: AtomicU64,
    timed_out: AtomicU64,
    panicked: AtomicU64,
    quarantine_rejections: AtomicU64,
    io_refusals: AtomicU64,
    closed_refusals: AtomicU64,
    commits: AtomicU64,
    compactions: AtomicU64,
    snapshots_published: AtomicU64,
    snapshot_rebuilds: AtomicU64,
}

impl AtomicStats {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn add(field: &AtomicU64, amount: u64) {
        field.fetch_add(amount, Ordering::Relaxed);
    }

    fn read(&self) -> ServeStats {
        let get = |f: &AtomicU64| f.load(Ordering::Relaxed);
        ServeStats {
            submitted: get(&self.submitted),
            acked: get(&self.acked),
            shed: get(&self.shed),
            shed_backoff_ms: get(&self.shed_backoff_ms),
            timed_out: get(&self.timed_out),
            panicked: get(&self.panicked),
            quarantine_rejections: get(&self.quarantine_rejections),
            io_refusals: get(&self.io_refusals),
            closed_refusals: get(&self.closed_refusals),
            commits: get(&self.commits),
            compactions: get(&self.compactions),
            snapshots_published: get(&self.snapshots_published),
            snapshot_rebuilds: get(&self.snapshot_rebuilds),
        }
    }
}

/// A write submission waiting for its verdict.
struct Pending {
    session: u64,
    op: ServeOp,
    deadline_ms: u64,
    slot: Arc<Slot<Ack>>,
}

struct Queue {
    items: VecDeque<Pending>,
    closed: bool,
    aborted: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    snapshot: Mutex<Snapshot>,
    sessions: Mutex<BTreeMap<u64, Breaker>>,
    next_session: AtomicU64,
    stats: AtomicStats,
    clock: Arc<dyn Clock + Send + Sync>,
    config: ServeConfig,
    /// Set once the writer thread has exited (cleanly or not): from
    /// then on every verdict is [`ServeError::Closed`].
    writer_gone: AtomicBool,
}

/// A supervised, concurrent front-end over one logged [`TripleStore`].
///
/// Created with [`Service::open`]; handed out as [`SessionHandle`]s.
/// Dropping (or [`Service::shutdown`]) drains the queue gracefully;
/// [`Service::abort`] refuses everything still queued — the durable
/// state is whatever was last committed, exactly like a crash.
pub struct Service {
    shared: Arc<Shared>,
    writer: Option<JoinHandle<()>>,
}

impl Service {
    /// Open (or create) the logged store at `snapshot_path` on `vfs`,
    /// recover it (snapshot + WAL replay), and start the writer thread.
    pub fn open(
        vfs: Arc<dyn Vfs + Send + Sync>,
        snapshot_path: &Path,
        config: ServeConfig,
        clock: Arc<dyn Clock + Send + Sync>,
    ) -> Result<(Service, LogReport), ServeError> {
        let (mut store, mut log, report) = TripleStore::open_logged(&vfs, snapshot_path)?;
        log.set_compact_threshold(config.compact_threshold);
        let mut publisher = SnapshotPublisher::new(&mut store);
        let (snapshot, _) = publisher.publish(&mut store);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                closed: false,
                aborted: false,
            }),
            not_empty: Condvar::new(),
            snapshot: Mutex::new(snapshot),
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU64::new(0),
            stats: AtomicStats::default(),
            clock,
            config,
            writer_gone: AtomicBool::new(false),
        });
        AtomicStats::bump(&shared.stats.snapshots_published);
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("slimserve-writer".into())
            .spawn(move || writer_loop(writer_shared, vfs, store, log, publisher))
            .map_err(|e| ServeError::Io { detail: format!("spawn writer: {e}") })?;
        Ok((Service { shared, writer: Some(writer) }, report))
    }

    /// Register a new session and hand back its submission handle.
    pub fn session(&self) -> SessionHandle {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        lock(&self.shared.sessions)
            .insert(id, Breaker::new(self.shared.config.breaker.clone()));
        SessionHandle { shared: Arc::clone(&self.shared), id }
    }

    /// The most recently published read snapshot.
    pub fn snapshot(&self) -> Snapshot {
        lock(&self.shared.snapshot).clone()
    }

    /// Counters so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.read()
    }

    /// Stop accepting work, let the writer drain and durably commit
    /// everything already queued, and join it.
    pub fn shutdown(mut self) -> ServeStats {
        self.close(false);
        self.join_writer();
        self.shared.stats.read()
    }

    /// Stop immediately: everything still queued is refused with
    /// [`ServeError::Closed`] and the writer exits without touching it.
    /// Durable state = last committed batch, exactly like a crash.
    pub fn abort(mut self) -> ServeStats {
        self.close(true);
        self.join_writer();
        self.shared.stats.read()
    }

    fn close(&self, abort: bool) {
        let mut q = lock(&self.shared.queue);
        q.closed = true;
        if abort {
            q.aborted = true;
        }
        self.shared.not_empty.notify_all();
    }

    fn join_writer(&mut self) {
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.writer.is_some() {
            self.close(false);
            self.join_writer();
        }
    }
}

/// One session's capability to submit writes and read snapshots.
pub struct SessionHandle {
    shared: Arc<Shared>,
    id: u64,
}

impl SessionHandle {
    /// This session's id (stable for its lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Submit an op and wait for its verdict.
    pub fn submit(&self, op: ServeOp) -> Result<Ack, ServeError> {
        self.enqueue(op)?.wait()
    }

    /// Submit an op without waiting. Admission refusals (quarantine,
    /// overload, closed) surface immediately; the returned [`Ticket`]
    /// carries the rest.
    pub fn enqueue(&self, op: ServeOp) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let now = shared.clock.now_ms();
        {
            let mut sessions = lock(&shared.sessions);
            let breaker =
                sessions.get_mut(&self.id).expect("session is registered for its lifetime");
            if let Admit::ShortCircuit { open_until } = breaker.admit(now) {
                AtomicStats::bump(&shared.stats.quarantine_rejections);
                return Err(ServeError::Quarantined {
                    session: self.id,
                    open_until_ms: open_until,
                });
            }
        }
        let mut q = lock(&shared.queue);
        if q.closed || shared.writer_gone.load(Ordering::Acquire) {
            AtomicStats::bump(&shared.stats.closed_refusals);
            return Err(ServeError::Closed);
        }
        if q.items.len() >= shared.config.queue_capacity {
            let retry_after_ms = suggested_backoff_ms(
                q.items.len(),
                shared.config.queue_capacity,
                shared.config.op_deadline_ms,
            );
            AtomicStats::bump(&shared.stats.shed);
            AtomicStats::add(&shared.stats.shed_backoff_ms, retry_after_ms);
            return Err(ServeError::Overloaded {
                queue_len: q.items.len(),
                capacity: shared.config.queue_capacity,
                retry_after_ms,
            });
        }
        let slot = Arc::new(Slot::default());
        q.items.push_back(Pending {
            session: self.id,
            op,
            deadline_ms: now.saturating_add(shared.config.op_deadline_ms),
            slot: Arc::clone(&slot),
        });
        AtomicStats::bump(&shared.stats.submitted);
        shared.not_empty.notify_one();
        Ok(Ticket::new(slot))
    }

    /// The most recently published read snapshot.
    pub fn snapshot(&self) -> Snapshot {
        lock(&self.shared.snapshot).clone()
    }

    /// This session's breaker state (quarantine observability).
    pub fn breaker_state(&self) -> BreakerState {
        lock(&self.shared.sessions)
            .get(&self.id)
            .expect("session is registered for its lifetime")
            .state()
    }
}

// ---------------------------------------------------------------------
// Writer thread
// ---------------------------------------------------------------------

fn writer_loop(
    shared: Arc<Shared>,
    vfs: Arc<dyn Vfs + Send + Sync>,
    mut store: TripleStore,
    mut log: StoreLog,
    mut publisher: SnapshotPublisher,
) {
    let mut next_order: u64 = 0;
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            while q.items.is_empty() && !q.closed {
                q = wait(&shared.not_empty, q);
            }
            if q.aborted {
                let leftovers: Vec<Pending> = q.items.drain(..).collect();
                drop(q);
                for p in leftovers {
                    AtomicStats::bump(&shared.stats.closed_refusals);
                    p.slot.resolve(Err(ServeError::Closed));
                }
                break;
            }
            if q.items.is_empty() {
                break; // closed and drained: graceful end
            }
            let take = q.items.len().min(shared.config.max_batch);
            q.items.drain(..take).collect::<Vec<Pending>>()
        };
        process_batch(&shared, &vfs, &mut store, &mut log, &mut publisher, &mut next_order, batch);
    }
    shared.writer_gone.store(true, Ordering::Release);
}

fn process_batch(
    shared: &Shared,
    vfs: &Arc<dyn Vfs + Send + Sync>,
    store: &mut TripleStore,
    log: &mut StoreLog,
    publisher: &mut SnapshotPublisher,
    next_order: &mut u64,
    batch: Vec<Pending>,
) {
    // Phase 1: apply each op under the supervisor's containment.
    let mut applied: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let now = shared.clock.now_ms();
        if now > p.deadline_ms {
            AtomicStats::bump(&shared.stats.timed_out);
            p.slot.resolve(Err(ServeError::Timeout { deadline_ms: p.deadline_ms, now_ms: now }));
            continue;
        }
        // Parking is the writer's own affair, not part of the
        // supervised store mutation: park first, then apply (a no-op
        // for the park variant).
        if let ServeOp::ChaosPark(gate) = &p.op {
            gate.pass();
        }
        let checkpoint = store.revision();
        match quiet_catch_unwind(|| p.op.apply_to(store)) {
            Ok(()) => applied.push(p),
            Err(detail) => {
                // Containment: drop the op's partial effects, charge the
                // session's breaker, keep serving.
                let _ = store.undo_to(checkpoint);
                note_session_failure(shared, p.session);
                AtomicStats::bump(&shared.stats.panicked);
                p.slot.resolve(Err(ServeError::Panicked { detail }));
            }
        }
    }
    if applied.is_empty() && store.revision() == log.committed_revision() {
        return; // nothing survived and nothing changed: no commit, no publish
    }

    // Phase 2: one durable group commit for the whole batch.
    let durable_seq = match log.commit(&**vfs, store) {
        Ok(CommitOutcome::Clean) => None,
        Ok(CommitOutcome::Committed { seq, .. }) => {
            AtomicStats::bump(&shared.stats.commits);
            Some(seq)
        }
        Ok(CommitOutcome::NeedsFullSnapshot) => match log.compact(&**vfs, store) {
            Ok(()) => {
                AtomicStats::bump(&shared.stats.compactions);
                None
            }
            Err(e) => return refuse_batch(shared, &**vfs, store, log, applied, &e),
        },
        Err(e) => return refuse_batch(shared, &**vfs, store, log, applied, &e),
    };

    // Opportunistic compaction: acks above are already durable, so a
    // compaction failure here refuses nothing — the log just stays long.
    if log.should_compact() && log.compact(&**vfs, store).is_ok() {
        AtomicStats::bump(&shared.stats.compactions);
    }

    // Phase 3: publish the new snapshot, then acknowledge. Publishing
    // first means "my ack implies a snapshot at least as new as my op".
    publish(shared, store, publisher);
    let revision = store.revision();
    for p in applied {
        let ack = Ack { order: *next_order, revision, durable_seq };
        *next_order += 1;
        note_session_success(shared, p.session);
        AtomicStats::bump(&shared.stats.acked);
        p.slot.resolve(Ok(ack));
    }
}

/// Commit failed: put the store back to its last durable state and
/// refuse every op of the batch. The suspect log tail is truncated
/// immediately — a torn append can leave the doomed frame fully
/// readable, and a cold reopen would adopt the refused batch as real
/// history. If the truncation itself fails, the poisoned WAL handle
/// retries it before the next append, so the writer keeps serving.
fn refuse_batch(
    shared: &Shared,
    vfs: &dyn Vfs,
    store: &mut TripleStore,
    log: &mut StoreLog,
    applied: Vec<Pending>,
    error: &trim::TrimError,
) {
    let _ = store.undo_to(log.committed_revision());
    let _ = log.repair(vfs);
    let detail = error.to_string();
    for p in applied {
        AtomicStats::bump(&shared.stats.io_refusals);
        p.slot.resolve(Err(ServeError::Io { detail: detail.clone() }));
    }
}

fn publish(shared: &Shared, store: &mut TripleStore, publisher: &mut SnapshotPublisher) {
    let (snapshot, path) = publisher.publish(store);
    if path == PublishPath::Rebuilt {
        AtomicStats::bump(&shared.stats.snapshot_rebuilds);
    }
    AtomicStats::bump(&shared.stats.snapshots_published);
    *lock(&shared.snapshot) = snapshot;
}

fn note_session_failure(shared: &Shared, session: u64) {
    let now = shared.clock.now_ms();
    if let Some(breaker) = lock(&shared.sessions).get_mut(&session) {
        breaker.on_failure(now);
    }
}

fn note_session_success(shared: &Shared, session: u64) {
    if let Some(breaker) = lock(&shared.sessions).get_mut(&session) {
        breaker.on_success();
    }
}

// ---------------------------------------------------------------------
// Quiet panic containment
// ---------------------------------------------------------------------

thread_local! {
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that stays silent while a
/// thread is inside the supervisor's `catch_unwind` — contained panics
/// are refusals, not crashes, and must not spray backtraces over every
/// chaos run. All other threads keep the previous hook's behaviour.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

pub(crate) fn quiet_catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    outcome.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Gate;
    use marks::resilience::MockClock;
    use trim::SnapValue;
    use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};

    const PATH: &str = "serve/store.xml";

    fn small_config() -> ServeConfig {
        ServeConfig {
            queue_capacity: 4,
            max_batch: 2,
            op_deadline_ms: 100,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 500,
                probe_budget: 3,
                probe_successes: 1,
            },
            compact_threshold: 1 << 20,
        }
    }

    fn open_mem(config: ServeConfig) -> (Service, Arc<MemVfs>, Arc<MockClock>) {
        let vfs = Arc::new(MemVfs::new());
        let clock = Arc::new(MockClock::new());
        let (service, _) = Service::open(
            vfs.clone(),
            Path::new(PATH),
            config,
            clock.clone(),
        )
        .unwrap();
        (service, vfs, clock)
    }

    #[test]
    fn acked_ops_are_visible_and_durable() {
        let (service, vfs, _) = open_mem(ServeConfig::default());
        let session = service.session();
        let a = session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        let b = session.submit(ServeOp::link("b:1", "member", "s:1")).unwrap();
        assert!(b.order > a.order, "writer order is monotonic");
        assert!(a.durable_seq.is_some());

        let snap = session.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.scan_subject("b:1").count(), 2);

        let stats = service.shutdown();
        assert_eq!(stats.acked, 2);
        // Reopen straight through trim: both ops were group-committed.
        let (store, _, _) = TripleStore::open_logged(&vfs, Path::new(PATH)).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn removes_and_set_unique_round_trip() {
        let (service, _, _) = open_mem(ServeConfig::default());
        let session = service.session();
        session.submit(ServeOp::insert("b:1", "ward", "W3")).unwrap();
        session.submit(ServeOp::set_unique("b:1", "ward", "W4")).unwrap();
        session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        session.submit(ServeOp::remove("b:1", "name", "John")).unwrap();
        // Removing something never interned is an acked no-op.
        session.submit(ServeOp::remove("nope", "nope", "nope")).unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(
            snap.iter().next().unwrap().object,
            SnapValue::Literal("W4".into())
        );
    }

    #[test]
    fn old_snapshots_never_see_later_writes() {
        let (service, _, _) = open_mem(ServeConfig::default());
        let session = service.session();
        session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        let before = session.snapshot();
        session.submit(ServeOp::insert("b:2", "name", "Mary")).unwrap();
        assert_eq!(before.len(), 1, "reader isolation");
        assert_eq!(session.snapshot().len(), 2);
    }

    #[test]
    fn readers_join_published_snapshots_while_the_writer_streams() {
        use trim::{SnapPattern, SnapTerm};
        let (service, _, _) = open_mem(ServeConfig::default());
        let session = service.session();
        session.submit(ServeOp::link("b:1", "member", "s:1")).unwrap();
        session.submit(ServeOp::link("b:1", "member", "s:2")).unwrap();
        session.submit(ServeOp::insert("s:1", "name", "John")).unwrap();
        session.submit(ServeOp::insert("s:2", "name", "Mary")).unwrap();

        // Bundle-membership join, entirely on the reader's snapshot:
        // (b:1 member ?s) ⋈ (?s name ?n).
        let snap = session.snapshot();
        let query = [
            SnapPattern::new(SnapTerm::res("b:1"), SnapTerm::res("member"), SnapTerm::var("s")),
            SnapPattern::new(SnapTerm::var("s"), SnapTerm::res("name"), SnapTerm::var("n")),
        ];
        let rows = snap.join(&query);
        let has = |rows: &[trim::SnapBinding], s: &str, n: &str| {
            rows.iter().any(|b| {
                b["s"] == SnapValue::Resource(s.into()) && b["n"] == SnapValue::Literal(n.into())
            })
        };
        assert_eq!(rows.len(), 2);
        assert!(has(&rows, "s:1", "John") && has(&rows, "s:2", "Mary"));

        // The writer keeps committing underneath; the held snapshot's
        // join answer is frozen while a fresh snapshot sees the member
        // that arrived after it was published.
        session.submit(ServeOp::link("b:1", "member", "s:3")).unwrap();
        session.submit(ServeOp::insert("s:3", "name", "Omar")).unwrap();
        assert_eq!(snap.join(&query).len(), 2, "published snapshots are immutable");
        let fresh = session.snapshot().join(&query);
        assert_eq!(fresh.len(), 3);
        assert!(has(&fresh, "s:3", "Omar"));
    }

    #[test]
    fn overload_is_a_typed_refusal_and_drains_after() {
        let (service, _, _) = open_mem(small_config());
        let session = service.session();
        let gate = Gate::new();
        let park = session.enqueue(ServeOp::ChaosPark(gate.clone())).unwrap();
        gate.wait_arrived(); // writer is parked; the queue is all ours
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push(session.enqueue(ServeOp::insert("s", "p", &i.to_string())).unwrap());
        }
        let err = session.enqueue(ServeOp::insert("s", "p", "overflow")).unwrap_err();
        match err {
            ServeError::Overloaded { queue_len: 4, capacity: 4, retry_after_ms } => {
                // Full queue: the hint suggests waiting a whole deadline.
                assert_eq!(retry_after_ms, 100);
            }
            other => panic!("expected overload, got {other:?}"),
        }
        gate.open();
        park.wait().unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = session.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(!snap.iter().any(|t| t.object == SnapValue::Literal("overflow".into())));
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.shed_backoff_ms, 100, "the hint is surfaced in the stats ledger");
    }

    #[test]
    fn expired_deadlines_refuse_without_applying() {
        let (service, _, clock) = open_mem(small_config());
        let session = service.session();
        let gate = Gate::new();
        let park = session.enqueue(ServeOp::ChaosPark(gate.clone())).unwrap();
        gate.wait_arrived();
        let doomed = session.enqueue(ServeOp::insert("s", "p", "late")).unwrap();
        clock.advance(101); // past op_deadline_ms while queued
        gate.open();
        park.wait().unwrap();
        match doomed.wait() {
            Err(ServeError::Timeout { deadline_ms: 100, now_ms: 101 }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(session.snapshot().len(), 0, "timed-out op must never apply");
        assert_eq!(service.stats().timed_out, 1);
    }

    #[test]
    fn panics_are_contained_rolled_back_and_typed() {
        let (service, _, _) = open_mem(ServeConfig::default());
        let session = service.session();
        session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        let err = session
            .submit(ServeOp::ChaosPanic { detail: "injected fault".into() })
            .unwrap_err();
        assert_eq!(err, ServeError::Panicked { detail: "injected fault".into() });
        // The writer survived and the store is unharmed.
        session.submit(ServeOp::insert("b:2", "name", "Mary")).unwrap();
        assert_eq!(session.snapshot().len(), 2);
    }

    #[test]
    fn repeated_panics_quarantine_the_session_until_cooldown() {
        let (service, _, clock) = open_mem(small_config());
        let bad = service.session();
        let good = service.session();
        for _ in 0..2 {
            let err = bad.submit(ServeOp::ChaosPanic { detail: "boom".into() }).unwrap_err();
            assert!(matches!(err, ServeError::Panicked { .. }));
        }
        let err = bad.submit(ServeOp::insert("s", "p", "refused")).unwrap_err();
        assert!(matches!(err, ServeError::Quarantined { .. }), "{err:?}");
        assert!(matches!(bad.breaker_state(), BreakerState::Open { .. }));
        // The quarantine is per-session: others flow, the writer lives.
        good.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        // Cooldown elapses: the breaker half-opens and a probe succeeds.
        clock.advance(500);
        bad.submit(ServeOp::insert("s", "p", "probe")).unwrap();
        assert!(matches!(bad.breaker_state(), BreakerState::Closed { .. }));
        assert_eq!(service.stats().quarantine_rejections, 1);
    }

    #[test]
    fn commit_failure_rolls_back_refuses_typed_and_recovers() {
        let fault = Arc::new(FaultVfs::unarmed(MemVfs::new()));
        let clock = Arc::new(MockClock::new());
        let (service, _) = Service::open(
            fault.clone(),
            Path::new(PATH),
            ServeConfig::default(),
            clock,
        )
        .unwrap();
        let session = service.session();
        session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();

        fault.rearm(FaultConfig::new(FaultOp::Append, FaultMode::Fail, 0, 0));
        let err = session.submit(ServeOp::insert("b:2", "name", "Mary")).unwrap_err();
        assert!(matches!(err, ServeError::Io { .. }), "{err:?}");
        assert!(fault.fault_fired());
        assert_eq!(session.snapshot().len(), 1, "failed batch must roll back");

        // One-shot fault has passed: the WAL self-repairs on next append.
        session.submit(ServeOp::insert("b:3", "name", "Sue")).unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(!snap.iter().any(|t| t.subject == "b:2"));

        let stats = service.shutdown();
        assert_eq!(stats.io_refusals, 1);
        let (store, _, _) =
            TripleStore::open_logged(&*fault, Path::new(PATH)).unwrap();
        assert_eq!(store.len(), 2, "durable state = acked ops exactly");
    }

    #[test]
    fn abort_refuses_queued_work_and_preserves_committed_state() {
        let (service, vfs, _) = open_mem(small_config());
        let session = service.session();
        session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        let gate = Gate::new();
        let park = session.enqueue(ServeOp::ChaosPark(gate.clone())).unwrap();
        gate.wait_arrived();
        let doomed = session.enqueue(ServeOp::insert("b:2", "name", "Mary")).unwrap();
        gate.open();
        park.wait().unwrap();
        let waiter = std::thread::spawn(move || doomed.wait());
        let stats = service.abort();
        let verdict = waiter.join().unwrap();
        // The op either made it into the final batch before the abort
        // flag was observed, or was refused Closed — never lost limbo.
        match verdict {
            Ok(_) => {}
            Err(ServeError::Closed) => assert!(stats.closed_refusals >= 1),
            other => panic!("unexpected verdict {other:?}"),
        }
        let (store, _, _) = TripleStore::open_logged(&vfs, Path::new(PATH)).unwrap();
        assert!(!store.is_empty());
    }

    #[test]
    fn submissions_after_shutdown_are_closed() {
        let (service, _, _) = open_mem(ServeConfig::default());
        let session = service.session();
        session.submit(ServeOp::insert("b:1", "name", "John")).unwrap();
        let shared = Arc::clone(&session.shared);
        drop(service); // graceful drain + join
        assert!(shared.writer_gone.load(Ordering::Acquire));
        let err = session.submit(ServeOp::insert("b:2", "name", "Mary")).unwrap_err();
        assert_eq!(err, ServeError::Closed);
    }

    #[test]
    fn concurrent_sessions_all_commit_and_reopen_intact() {
        let (service, vfs, _) = open_mem(ServeConfig::default());
        let service = Arc::new(service);
        let mut handles = Vec::new();
        for s in 0..4 {
            let session = service.session();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    session
                        .submit(ServeOp::insert(
                            &format!("sess{s}:b{i}"),
                            "seq",
                            &i.to_string(),
                        ))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(service.snapshot().len(), 200);
        let stats = service.stats();
        assert_eq!(stats.acked, 200);
        assert_eq!(stats.submitted, 200);
        drop(service);
        let (store, _, _) = TripleStore::open_logged(&vfs, Path::new(PATH)).unwrap();
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn log_compacts_opportunistically_past_the_threshold() {
        let (service, _, _) = open_mem(ServeConfig {
            compact_threshold: 256,
            ..ServeConfig::default()
        });
        let session = service.session();
        for i in 0..64 {
            session
                .submit(ServeOp::insert(&format!("subject:{i}"), "prop", "value"))
                .unwrap();
        }
        assert!(service.stats().compactions >= 1);
        assert_eq!(service.snapshot().len(), 64);
    }
}
