//! Differential check of the resilient resolver against a reference
//! model of its retry/breaker/quarantine state machine.
//!
//! The real side is a [`marks::ResilientResolver`] driving a real
//! spreadsheet module wrapped in a [`marks::FlakyModule`] under a
//! [`marks::MockClock`]. The model side re-implements the state machine
//! (breaker transitions, backoff arithmetic, deadline checks, dangle
//! counting) in plain code that shares *no state* with the real stack —
//! only the pure fault-schedule and jitter functions, which both sides
//! must agree on by construction. After every `Resolve` op the two
//! sides' structured summaries (attempt tags + timestamps, breaker
//! state, quarantine flag, clock, schedule position) must match exactly.

use crate::ops::ResolverOp;
use basedocs::spreadsheet::Workbook;
use basedocs::{DocKind, SpreadsheetApp};
use marks::resilience::mix64;
use marks::{
    AppModule, BreakerConfig, BreakerState, Clock, Fault, FaultProfile, FlakyModule, MarkError,
    MarkManager, MockClock, ResilientResolution, ResilientResolver, ResolutionStyle, RetryPolicy,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Marks in the fixture; `Resolve { mark }` indexes modulo this.
pub const MARKS: usize = 2;
/// Default fault-schedule seed (ops can reseed mid-run).
const PLAN_SEED: u64 = 0x000f_a01f_5eed;

const MAX_ATTEMPTS: u32 = 3;
const DEADLINE_MS: u64 = 600;
const BASE_BACKOFF_MS: u64 = 10;
const MAX_BACKOFF_MS: u64 = 80;
const JITTER_SEED: u64 = 7;
const FAILURE_THRESHOLD: u32 = 3;
const COOLDOWN_MS: u64 = 250;
const PROBE_BUDGET: u32 = 3;
const PROBE_SUCCESSES: u32 = 2;
const DANGLE_THRESHOLD: u32 = 2;

/// Mixed storm; latency (700ms) deliberately exceeds the deadline so
/// latency faults exercise the late-success timeout path.
const PROFILE: FaultProfile = FaultProfile {
    transient_pct: 30,
    latency_pct: 15,
    gone_pct: 15,
    drift_pct: 10,
    latency_ms: 700,
};

/// Execute one op sequence; panics on real-vs-model divergence.
pub fn check(ops: &[ResolverOp]) {
    // ---- real side --------------------------------------------------------
    let clock = MockClock::new();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix").unwrap();
    wb.sheet_mut("Sheet1").unwrap().set_a1("B1", "40").unwrap();
    let mut app = SpreadsheetApp::new();
    app.open(wb).unwrap();
    let app = Rc::new(RefCell::new(app));
    let inner = AppModule::in_context("spreadsheet", Rc::clone(&app));
    let flaky = FlakyModule::new(Box::new(inner), PLAN_SEED, PROFILE, clock.clone());
    let control = flaky.control();
    control.disarm();
    let mut mgr = MarkManager::new();
    mgr.register_module(Box::new(flaky)).unwrap();
    for cell in ["A1", "B1"] {
        app.borrow_mut().select("meds.xls", "Sheet1", cell).unwrap();
        mgr.create_mark(DocKind::Spreadsheet).unwrap();
    }
    control.arm(); // the schedule starts at call 0 for the op sequence
    let mut resolver = ResilientResolver::with_config(
        Rc::new(clock.clone()),
        RetryPolicy {
            max_attempts: MAX_ATTEMPTS,
            deadline_ms: DEADLINE_MS,
            base_backoff_ms: BASE_BACKOFF_MS,
            max_backoff_ms: MAX_BACKOFF_MS,
            jitter_seed: JITTER_SEED,
        },
        BreakerConfig {
            failure_threshold: FAILURE_THRESHOLD,
            cooldown_ms: COOLDOWN_MS,
            probe_budget: PROBE_BUDGET,
            probe_successes: PROBE_SUCCESSES,
        },
        DANGLE_THRESHOLD,
    );

    // ---- model side -------------------------------------------------------
    let mut model = Model::new(PLAN_SEED);

    for (i, op) in ops.iter().enumerate() {
        match op {
            ResolverOp::Advance { ms } => {
                clock.advance(*ms as u64);
                model.clock += *ms as u64;
            }
            ResolverOp::Reseed { seed } => {
                control.reseed(*seed);
                model.seed = *seed;
                model.call = 0;
            }
            ResolverOp::Resolve { mark } => {
                let id = format!("mark:{}", mark % MARKS);
                let real = resolver
                    .resolve(&mut mgr, &id)
                    .unwrap_or_else(|e| panic!("resolve({id}) errored: {e}"));
                assert_eq!(
                    real.resolution.style == ResolutionStyle::DegradedExcerpt,
                    real.outcome.degraded,
                    "op {i}: degraded flag and resolution style disagree",
                );
                let got = summarize(&real);
                let want = model.resolve(&id);
                assert_eq!(got, want, "op {i}: resolver diverged from model on {id}");
                assert_eq!(
                    clock.now_ms(),
                    model.clock,
                    "op {i}: clock drift after resolving {id}"
                );
                assert_eq!(
                    control.calls(),
                    model.call,
                    "op {i}: fault-schedule position drift after {id}"
                );
            }
        }
    }
}

/// Compact structured summary of the real side, compared byte-for-byte
/// with the model's prediction. Deliberately excludes display content —
/// the model knows the state machine, not workbook rendering.
fn summarize(real: &ResilientResolution) -> String {
    let attempts: Vec<String> = real
        .outcome
        .attempts
        .iter()
        .map(|a| format!("{}@{}", error_tag(&a.error), a.at_ms))
        .collect();
    format!(
        "deg={};att=[{}];brk={};q={};clock={}",
        real.outcome.degraded,
        attempts.join(","),
        real.outcome.breaker.map(breaker_tag).unwrap_or_else(|| "none".into()),
        real.outcome.quarantined,
        real.outcome.finished_ms,
    )
}

fn error_tag(e: &Option<MarkError>) -> &'static str {
    match e {
        None => "ok",
        Some(MarkError::Io { .. }) => "transient",
        Some(MarkError::Timeout { .. }) => "timeout",
        Some(MarkError::ModuleUnavailable { .. }) => "open",
        Some(MarkError::Base(basedocs::DocError::Dangling { .. }))
        | Some(MarkError::Base(basedocs::DocError::NoSuchDocument { .. })) => "gone",
        Some(MarkError::Quarantined { .. }) => "quar",
        Some(MarkError::NoModule { .. }) => "nomod",
        Some(_) => "other",
    }
}

fn breaker_tag(state: BreakerState) -> String {
    match state {
        BreakerState::Closed { failures } => format!("closed({failures})"),
        BreakerState::Open { until_ms } => format!("open({until_ms})"),
        BreakerState::HalfOpen { probes_used, successes } => {
            format!("half({probes_used},{successes})")
        }
    }
}

// ---- the reference model --------------------------------------------------
//
// An independent re-implementation of the breaker/retry state machine.
// It shares only the *pure functions* (`mix64`, `FaultProfile::fault`)
// with the real stack; all state transitions are written out again here
// so a bug in the real resolver cannot hide in shared code.

#[derive(Clone, Copy, PartialEq, Eq)]
enum MBreaker {
    Closed { failures: u32 },
    Open { until: u64 },
    HalfOpen { used: u32, ok: u32 },
}

impl MBreaker {
    fn tag(self) -> String {
        match self {
            MBreaker::Closed { failures } => format!("closed({failures})"),
            MBreaker::Open { until } => format!("open({until})"),
            MBreaker::HalfOpen { used, ok } => format!("half({used},{ok})"),
        }
    }

    /// Returns `true` when the call is short-circuited.
    fn admit(&mut self, now: u64) -> bool {
        match *self {
            MBreaker::Closed { .. } => false,
            MBreaker::Open { until } if now < until => true,
            MBreaker::Open { .. } => {
                *self = MBreaker::HalfOpen { used: 1, ok: 0 };
                false
            }
            MBreaker::HalfOpen { used, ok } => {
                if used >= PROBE_BUDGET {
                    *self = MBreaker::Open { until: now + COOLDOWN_MS };
                    true
                } else {
                    *self = MBreaker::HalfOpen { used: used + 1, ok };
                    false
                }
            }
        }
    }

    fn on_success(&mut self) {
        match *self {
            MBreaker::Closed { .. } => *self = MBreaker::Closed { failures: 0 },
            MBreaker::HalfOpen { used, ok } => {
                if ok + 1 >= PROBE_SUCCESSES {
                    *self = MBreaker::Closed { failures: 0 };
                } else {
                    *self = MBreaker::HalfOpen { used, ok: ok + 1 };
                }
            }
            MBreaker::Open { .. } => {}
        }
    }

    fn on_failure(&mut self, now: u64) {
        match *self {
            MBreaker::Closed { failures } => {
                if failures + 1 >= FAILURE_THRESHOLD {
                    *self = MBreaker::Open { until: now + COOLDOWN_MS };
                } else {
                    *self = MBreaker::Closed { failures: failures + 1 };
                }
            }
            MBreaker::HalfOpen { .. } => *self = MBreaker::Open { until: now + COOLDOWN_MS },
            MBreaker::Open { .. } => {}
        }
    }
}

struct Model {
    seed: u64,
    call: u64,
    clock: u64,
    /// Single breaker: the fixture routes everything through one module.
    breaker: MBreaker,
    /// Whether any call has been routed yet. The real resolver creates
    /// breakers lazily, so until the first admitted attempt the outcome
    /// reports no breaker state.
    breaker_born: bool,
    dangles: BTreeMap<String, u32>,
    quarantined: BTreeSet<String>,
}

fn backoff(retry: u32) -> u64 {
    let exp = BASE_BACKOFF_MS
        .saturating_mul(1u64 << (retry.saturating_sub(1)).min(16))
        .min(MAX_BACKOFF_MS);
    exp + mix64(JITTER_SEED, retry as u64) % (BASE_BACKOFF_MS + 1)
}

impl Model {
    fn new(seed: u64) -> Self {
        Model {
            seed,
            call: 0,
            clock: 0,
            breaker: MBreaker::Closed { failures: 0 },
            breaker_born: false,
            dangles: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    fn breaker_tag(&self) -> String {
        if self.breaker_born {
            self.breaker.tag()
        } else {
            "none".into()
        }
    }

    /// Predict the summary for one resolution, advancing model state.
    fn resolve(&mut self, id: &str) -> String {
        let started = self.clock;

        if self.quarantined.contains(id) {
            // Quarantine short-circuits before any module/breaker work;
            // the real outcome never names a module, so brk stays none.
            return format!("deg=true;att=[quar@{started}];brk=none;q=true;clock={started}");
        }

        let mut attempts: Vec<String> = Vec::new();
        let mut quarantined = false;
        let deadline = started + DEADLINE_MS;
        let mut success = false;
        for attempt_no in 1..=MAX_ATTEMPTS {
            if attempt_no > 1 {
                self.clock += backoff(attempt_no - 1);
            }
            let now = self.clock;
            if now >= deadline {
                attempts.push(format!("timeout@{now}"));
                break;
            }
            self.breaker_born = true;
            if self.breaker.admit(now) {
                attempts.push(format!("open@{now}"));
                break;
            }
            // The admitted call consumes one fault-schedule position.
            let fault = PROFILE.fault(self.seed, self.call);
            self.call += 1;
            let outcome: Result<(), &str> = match fault {
                Fault::None | Fault::ContentDrift => Ok(()),
                Fault::Latency(ms) => {
                    self.clock += ms;
                    Ok(())
                }
                Fault::Transient => Err("transient"),
                Fault::DocumentGone => Err("gone"),
            };
            let after = self.clock;
            match outcome {
                Ok(()) if after > deadline => {
                    self.breaker.on_failure(after);
                    attempts.push(format!("timeout@{now}"));
                    break;
                }
                Ok(()) => {
                    self.breaker.on_success();
                    attempts.push(format!("ok@{now}"));
                    self.dangles.remove(id);
                    success = true;
                    break;
                }
                Err(tag) => {
                    self.breaker.on_failure(after);
                    attempts.push(format!("{tag}@{now}"));
                    if tag == "gone" {
                        let n = self.dangles.entry(id.to_string()).or_insert(0);
                        *n += 1;
                        if *n >= DANGLE_THRESHOLD {
                            self.quarantined.insert(id.to_string());
                            quarantined = true;
                        }
                        break; // dangling targets are not retried
                    }
                    // transient: retry
                }
            }
        }
        format!(
            "deg={};att=[{}];brk={};q={};clock={}",
            !success,
            attempts.join(","),
            self.breaker_tag(),
            quarantined,
            self.clock,
        )
    }
}
