//! slimcheck: deterministic model-based differential testing across the
//! SLIM stack.
//!
//! One op sequence is generated per case and driven simultaneously
//! through the real implementation and cheap reference models:
//!
//! * **store** — [`trim::TripleStore`] vs [`trim::NaiveStore`] vs a
//!   `BTreeSet` oracle, journal undo vs a snapshot stack, and every save
//!   (including fault-injected crash saves) round-tripped through
//!   `slimio` ([`store_diff`]).
//! * **conj** — the conjunctive query engine ([`trim::ConjQuery`]
//!   planner + leapfrog executor) vs a string-level cross-product
//!   evaluator over a `BTreeSet` model, with `trim::naive_join`
//!   checked against the same oracle ([`conj_diff`]).
//! * **wal** — the logged commit path ([`trim::StoreLog`] over
//!   [`slimio::Wal`]) vs a model of acknowledged commits, with seeded
//!   crash schedules, reboots, and log-byte corruption ([`wal_diff`]).
//! * **dmi** — [`slimstore::SlimPadDmi`] typed objects vs a plain-Rust
//!   reference world, with triple-pattern readback, conformance, and
//!   canonical persistence checks ([`dmi_diff`]).
//! * **pad** — [`slimpad::PadSession`] begin-op/undo cycles vs a
//!   snapshot stack of canonical XML ([`pad_diff`]).
//! * **padserve** — the supervised [`slimserve::PadService`] vs a
//!   mirror [`slimserve::PadMachine`] replay of its acknowledged ops,
//!   over two-session schedules with one-shot crash commits
//!   ([`padserve_diff`]).
//! * **resolver** — [`marks::ResilientResolver`] retry/breaker/
//!   quarantine behavior under seeded fault injection vs a reference
//!   model of the state machine ([`resolver_diff`]).
//!
//! On divergence the failing sequence is shrunk with the vendored
//! proptest shrinker and reported with a `SLIMCHECK_SEED` that replays
//! the exact failure. Seeded mutations ([`Mutation`]) disable known
//! pieces of the real implementation to prove the harness catches bugs.

pub mod conj_diff;
pub mod corpus_prefix;
pub mod dmi_diff;
pub mod ops;
pub mod pad_diff;
pub mod padserve_diff;
pub mod resolver_diff;
pub mod store_diff;
pub mod wal_diff;

use proptest::strategy::Strategy;
use proptest::test_runner::{panic_message, shrink_to_minimal, with_quiet_panics, TestRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Seeded bugs for mutation mode: each disables one piece of the real
/// store so the harness can demonstrate detection plus shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// No seeded bug — the real implementation as shipped.
    None,
    /// Inserts skip the by-subject index (queries go stale).
    SkipSubjectIndex,
    /// `set_unique` degrades to a plain insert (old values survive).
    LossySetUnique,
    /// `undo_to` silently does nothing.
    UndoNoop,
    /// Removes forget the POS index: the triple lingers there and
    /// property-bound queries see a phantom.
    SkipPosIndexOnRemove,
    /// Log recovery skips the tail frame's CRC check: a corrupted tail
    /// replays garbage instead of being truncated at the damage.
    WalSkipTailCrc,
    /// The join executor skips the ground re-check on repeated
    /// variables: `(?x p ?x)` degenerates from the diagonal into "some
    /// subject and some object under p".
    ConjSkipRepeatedVarDedup,
    /// The join executor serves the property-bound object run off the
    /// wrong index (the property atom misread as an SPO subject),
    /// losing every binding that run would have proposed.
    ConjWrongPosRun,
}

impl Mutation {
    /// All seeded bugs (excludes `None`).
    pub const ALL: [Mutation; 7] = [
        Mutation::SkipSubjectIndex,
        Mutation::LossySetUnique,
        Mutation::UndoNoop,
        Mutation::SkipPosIndexOnRemove,
        Mutation::WalSkipTailCrc,
        Mutation::ConjSkipRepeatedVarDedup,
        Mutation::ConjWrongPosRun,
    ];

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipSubjectIndex => "skip-subject-index",
            Mutation::LossySetUnique => "lossy-set-unique",
            Mutation::UndoNoop => "undo-noop",
            Mutation::SkipPosIndexOnRemove => "skip-pos-on-remove",
            Mutation::WalSkipTailCrc => "wal-skip-tail-crc",
            Mutation::ConjSkipRepeatedVarDedup => "conj-skip-repeated-var-dedup",
            Mutation::ConjWrongPosRun => "conj-wrong-pos-run",
        }
    }

    /// The layer whose sweep exercises this seeded bug.
    pub fn layer(self) -> Layer {
        match self {
            Mutation::WalSkipTailCrc => Layer::Wal,
            Mutation::ConjSkipRepeatedVarDedup | Mutation::ConjWrongPosRun => Layer::Conj,
            _ => Layer::Store,
        }
    }

    /// Mutation-mode shrink budget: a divergence from this seeded bug
    /// must reduce to at most this many ops, or the bug counts as
    /// escaped.
    pub fn shrink_bound(self) -> usize {
        match self {
            // A stale POS entry takes exactly [Insert, Remove] to plant
            // and at most one query op to observe.
            Mutation::SkipPosIndexOnRemove => 3,
            // [Insert, Commit, CorruptTail] plants and observes it; the
            // shrinker sometimes keeps one extra op while minimizing the
            // flip offset.
            Mutation::WalSkipTailCrc => 5,
            // Two inserts plant a non-diagonal subject/object pair (or
            // one insert gives a shared-object join something to lose);
            // one query observes the divergence.
            Mutation::ConjSkipRepeatedVarDedup | Mutation::ConjWrongPosRun => 3,
            _ => 10,
        }
    }
}

/// Which layer of the stack a sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    Store,
    Conj,
    Wal,
    Dmi,
    Pad,
    PadServe,
    Resolver,
}

impl Layer {
    /// All layers, in stack order.
    pub const ALL: [Layer; 7] = [
        Layer::Store,
        Layer::Conj,
        Layer::Wal,
        Layer::Dmi,
        Layer::Pad,
        Layer::PadServe,
        Layer::Resolver,
    ];

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Store => "store",
            Layer::Conj => "conj",
            Layer::Wal => "wal",
            Layer::Dmi => "dmi",
            Layer::Pad => "pad",
            Layer::PadServe => "padserve",
            Layer::Resolver => "resolver",
        }
    }

    /// Parse a `--layer` argument.
    pub fn parse(s: &str) -> Option<Layer> {
        match s {
            "store" => Some(Layer::Store),
            "conj" => Some(Layer::Conj),
            "wal" => Some(Layer::Wal),
            "dmi" => Some(Layer::Dmi),
            "pad" => Some(Layer::Pad),
            "padserve" => Some(Layer::PadServe),
            "resolver" => Some(Layer::Resolver),
            _ => None,
        }
    }

    /// Per-layer tag mixed into case seeds so the sweeps draw disjoint
    /// streams from one base seed.
    fn tag(self) -> u64 {
        match self {
            Layer::Store => 0x73746f72,    // "stor"
            Layer::Conj => 0x636f6e6a,     // "conj"
            Layer::Wal => 0x77616c,        // "wal"
            Layer::Dmi => 0x646d69,        // "dmi"
            Layer::Pad => 0x706164,        // "pad"
            Layer::PadServe => 0x70737276, // "psrv"
            Layer::Resolver => 0x7265736f, // "reso"
        }
    }
}

/// A confirmed, shrunk divergence between the real stack and a model.
#[derive(Debug)]
pub struct Divergence {
    /// Layer the divergence was found in.
    pub layer: Layer,
    /// Mutation active during the sweep (`None` for a real-bug report).
    pub mutation: Mutation,
    /// The case seed; replaying it regenerates the failing sequence.
    pub seed: u64,
    /// Case index within the sweep (0 for a replay).
    pub case: u32,
    /// Panic message from the minimal failing sequence.
    pub message: String,
    /// `{:#?}` of the minimal failing sequence.
    pub minimal_debug: String,
    /// Ops in the minimal failing sequence.
    pub minimal_len: usize,
    /// Ops in the originally generated failing sequence.
    pub original_len: usize,
    /// Accepted shrink steps between the two.
    pub shrink_steps: u32,
}

impl Divergence {
    /// Human-readable report with the replay command. The
    /// `SLIMCHECK_SEED=` line is the machine-readable hook CI greps for.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "slimcheck: divergence in layer `{}` (case {}, mutation: {})\n",
            self.layer.name(),
            self.case,
            self.mutation.name(),
        ));
        out.push_str(&format!(
            "  shrunk {} ops -> {} ops in {} accepted steps\n",
            self.original_len, self.minimal_len, self.shrink_steps
        ));
        out.push_str(&format!("  failure: {}\n", self.message));
        out.push_str(&format!("  minimal sequence: {}\n", self.minimal_debug));
        out.push_str(&format!("SLIMCHECK_SEED=0x{:016x}\n", self.seed));
        out.push_str(&format!(
            "replay: cargo run -p slimcheck -- --layer {} --seed 0x{:016x}{}\n",
            self.layer.name(),
            self.seed,
            if self.mutation == Mutation::None {
                String::new()
            } else {
                format!(" --mutation {}", self.mutation.name())
            },
        ));
        out
    }
}

/// splitmix64-style seed mixer: one base seed fans out into independent
/// per-(layer, case) streams.
fn mix_seed(base: u64, tag: u64, case: u32) -> u64 {
    let mut z = base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((case as u64) << 32 | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shrink budget: predicate evaluations allowed while minimizing.
const SHRINK_ATTEMPTS: u32 = 4096;

/// Generate one sequence from `seed`, check it, and on failure shrink to
/// a minimal reproduction. Deterministic: the same seed always yields
/// the same sequence, verdict, and minimal form.
fn run_case<S, T>(
    layer: Layer,
    mutation: Mutation,
    strategy: &S,
    check: impl Fn(&[T]),
    seed: u64,
    case: u32,
) -> Option<Divergence>
where
    S: Strategy<Value = Vec<T>>,
    T: Clone + std::fmt::Debug,
{
    let mut rng = TestRng::from_seed(seed);
    let ops = strategy.generate(&mut rng);
    with_quiet_panics(|| {
        if catch_unwind(AssertUnwindSafe(|| check(&ops))).is_ok() {
            return None;
        }
        let fails = |v: &Vec<T>| catch_unwind(AssertUnwindSafe(|| check(v))).is_err();
        let (minimal, shrink_steps, _) =
            shrink_to_minimal(strategy, ops.clone(), fails, SHRINK_ATTEMPTS);
        let message = match catch_unwind(AssertUnwindSafe(|| check(&minimal))) {
            Err(payload) => panic_message(&*payload),
            Ok(()) => "<failure did not reproduce on minimal sequence>".to_string(),
        };
        Some(Divergence {
            layer,
            mutation,
            seed,
            case,
            message,
            minimal_debug: format!("{minimal:#?}"),
            minimal_len: minimal.len(),
            original_len: ops.len(),
            shrink_steps,
        })
    })
}

/// Run `cases` differential cases against one layer, stopping at the
/// first divergence. `mutation` only affects the layer its seeded bug
/// lives in (see [`Mutation::layer`]).
pub fn run_layer(
    layer: Layer,
    base_seed: u64,
    cases: u32,
    max_ops: usize,
    mutation: Mutation,
) -> Option<Divergence> {
    run_layer_with_corpus(layer, base_seed, cases, max_ops, mutation, 0)
}

/// [`run_layer`] with a slimgen seed-corpus prefix: every case starts
/// from `corpus` translated structure-building ops (see
/// [`corpus_prefix`]) prepended inside the check closure, so the
/// shrinker only minimizes the random suffix. `corpus = 0` is exactly
/// [`run_layer`]; the resolver layer has no structure ops and ignores
/// the prefix.
pub fn run_layer_with_corpus(
    layer: Layer,
    base_seed: u64,
    cases: u32,
    max_ops: usize,
    mutation: Mutation,
    corpus: usize,
) -> Option<Divergence> {
    for case in 0..cases {
        let seed = mix_seed(base_seed, layer.tag(), case);
        let divergence = replay_case(layer, mutation, seed, case, max_ops, corpus);
        if divergence.is_some() {
            return divergence;
        }
    }
    None
}

/// Re-run the single case identified by `seed` (as printed in a
/// divergence report).
pub fn replay(layer: Layer, seed: u64, max_ops: usize, mutation: Mutation) -> Option<Divergence> {
    replay_case(layer, mutation, seed, 0, max_ops, 0)
}

/// [`replay`] for a case originally found with a seed-corpus prefix:
/// `corpus` must match the sweep's `--corpus` value or the sequence the
/// seed regenerates will differ.
pub fn replay_with_corpus(
    layer: Layer,
    seed: u64,
    max_ops: usize,
    mutation: Mutation,
    corpus: usize,
) -> Option<Divergence> {
    replay_case(layer, mutation, seed, 0, max_ops, corpus)
}

fn replay_case(
    layer: Layer,
    mutation: Mutation,
    seed: u64,
    case: u32,
    max_ops: usize,
    corpus: usize,
) -> Option<Divergence> {
    let max_ops = max_ops.max(1);
    match layer {
        Layer::Store => {
            let strategy = proptest::collection::vec(ops::store_op_strategy(), 1..max_ops + 1);
            let prefix = corpus_prefix::store_prefix(seed, corpus);
            run_case(
                layer,
                mutation,
                &strategy,
                |ops| store_diff::check(&with_prefix(&prefix, ops), mutation),
                seed,
                case,
            )
        }
        Layer::Conj => {
            let strategy = proptest::collection::vec(ops::conj_op_strategy(), 1..max_ops + 1);
            let prefix = corpus_prefix::conj_prefix(seed, corpus);
            run_case(
                layer,
                mutation,
                &strategy,
                |ops| conj_diff::check(&with_prefix(&prefix, ops), mutation),
                seed,
                case,
            )
        }
        Layer::Wal => {
            let strategy = proptest::collection::vec(ops::wal_op_strategy(), 1..max_ops + 1);
            let prefix = corpus_prefix::wal_prefix(seed, corpus);
            run_case(
                layer,
                mutation,
                &strategy,
                |ops| wal_diff::check(&with_prefix(&prefix, ops), mutation),
                seed,
                case,
            )
        }
        Layer::Dmi => {
            let strategy = proptest::collection::vec(ops::dmi_op_strategy(), 1..max_ops + 1);
            let prefix = corpus_prefix::dmi_prefix(seed, corpus);
            run_case(
                layer,
                mutation,
                &strategy,
                |ops| dmi_diff::check(&with_prefix(&prefix, ops)),
                seed,
                case,
            )
        }
        Layer::Pad => {
            let strategy = proptest::collection::vec(ops::pad_op_strategy(), 1..max_ops + 1);
            let prefix = corpus_prefix::pad_prefix(seed, corpus);
            run_case(
                layer,
                mutation,
                &strategy,
                |ops| pad_diff::check(&with_prefix(&prefix, ops)),
                seed,
                case,
            )
        }
        Layer::PadServe => {
            let strategy = proptest::collection::vec(ops::padserve_op_strategy(), 1..max_ops + 1);
            let prefix = corpus_prefix::padserve_prefix(seed, corpus);
            run_case(
                layer,
                mutation,
                &strategy,
                |ops| padserve_diff::check(&with_prefix(&prefix, ops)),
                seed,
                case,
            )
        }
        Layer::Resolver => {
            let strategy = proptest::collection::vec(ops::resolver_op_strategy(), 1..max_ops + 1);
            run_case(layer, mutation, &strategy, resolver_diff::check, seed, case)
        }
    }
}

/// `prefix ++ suffix` without cloning when there is no prefix.
fn with_prefix<T: Clone>(prefix: &[T], suffix: &[T]) -> Vec<T> {
    let mut all = Vec::with_capacity(prefix.len() + suffix.len());
    all.extend_from_slice(prefix);
    all.extend_from_slice(suffix);
    all
}
