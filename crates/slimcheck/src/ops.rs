//! Operation alphabets for the checked layers, plus their strategies. Every op addresses objects by *index* into small pools or
//! into the set of live objects at execution time (resolved modulo the
//! live count), so any randomly generated op is executable and every
//! shrink candidate stays meaningful.

use proptest::prelude::*;

/// A small vocabulary so operations collide often.
pub const SUBJECTS: &[&str] = &["b1", "b2", "s1", "s2", "pad"];
pub const PROPS: &[&str] = &["name", "content", "nested", "pos"];
pub const OBJECTS: &[&str] = &["b2", "s1", "John", "140", ""];

/// Name pool shared by the DMI and pad layers.
pub const NAMES: &[&str] = &["Rounds", "John Smith", "Na 140", "K 4.1", ""];
/// Annotation pool (small so add/remove collide).
pub const ANNOTATIONS: &[&str] = &["stat", "recheck", "od? <&>", "hold"];

/// One step against the triple-store stack (TRIM + journal + slimio).
#[derive(Debug, Clone)]
pub enum StoreOp {
    Insert { s: usize, p: usize, o: usize, res: bool },
    Remove { s: usize, p: usize, o: usize, res: bool },
    SetUnique { s: usize, p: usize, o: usize, res: bool },
    RemoveMatching { s: Option<usize>, p: Option<usize>, o: Option<(usize, bool)> },
    /// Mid-sequence query probe: select/count/explain one pattern shape
    /// against the oracle. Having the shape *in the op alphabet* means a
    /// shrunk counterexample names the failing pattern shape directly.
    QueryShape { s: Option<usize>, p: Option<usize>, o: Option<(usize, bool)> },
    /// Record the current revision + model snapshot for a later `Undo`.
    Checkpoint,
    /// Undo to the `back`-th most recent checkpoint (modulo stack size).
    Undo { back: usize },
    /// Durable save to the world's disk, then verified reload.
    Save,
    /// Attempt a save with an injected fault (`fault`/`mode` select the
    /// victim operation and misbehavior, `tear_seed` the torn length),
    /// then check the crash-safety invariants on the post-crash disk.
    CrashSave { fault: usize, mode: usize, tear_seed: u64 },
}

pub fn store_op_strategy() -> impl Strategy<Value = StoreOp> {
    let field = (0..SUBJECTS.len(), 0..PROPS.len(), 0..OBJECTS.len(), any::<bool>());
    prop_oneof![
        // Insert twice: growth-biased sequences reach interesting states.
        field.clone().prop_map(|(s, p, o, res)| StoreOp::Insert { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| StoreOp::Insert { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| StoreOp::Remove { s, p, o, res }),
        field.prop_map(|(s, p, o, res)| StoreOp::SetUnique { s, p, o, res }),
        (
            proptest::option::of(0..SUBJECTS.len()),
            proptest::option::of(0..PROPS.len()),
            proptest::option::of((0..OBJECTS.len(), any::<bool>())),
        )
            .prop_map(|(s, p, o)| StoreOp::RemoveMatching { s, p, o }),
        (
            proptest::option::of(0..SUBJECTS.len()),
            proptest::option::of(0..PROPS.len()),
            proptest::option::of((0..OBJECTS.len(), any::<bool>())),
        )
            .prop_map(|(s, p, o)| StoreOp::QueryShape { s, p, o }),
        Just(StoreOp::Checkpoint),
        (0usize..8).prop_map(|back| StoreOp::Undo { back }),
        Just(StoreOp::Save),
        (0usize..3, 0usize..3, any::<u64>())
            .prop_map(|(fault, mode, tear_seed)| StoreOp::CrashSave { fault, mode, tear_seed }),
    ]
}

/// One step against the conjunctive query engine ([`trim::ConjQuery`];
/// see `conj_diff`). Inserts and removes grow a store whose atoms are
/// drawn from the shared pools (so query constants hit live atoms
/// often), and `Query` runs one join template — 2 to 4 patterns with
/// shared variables — through the planner and compares the binding
/// sets against a string-level cross-product oracle. Having the
/// template *in the op alphabet* means a shrunk counterexample names
/// the failing join shape directly.
#[derive(Debug, Clone)]
pub enum ConjOp {
    Insert { s: usize, p: usize, o: usize, res: bool },
    Remove { s: usize, p: usize, o: usize, res: bool },
    /// Run join template `shape` (modulo the template count) with
    /// property constants `p0`/`p1` and subject constant `c`.
    Query { shape: usize, p0: usize, p1: usize, c: usize },
}

pub fn conj_op_strategy() -> impl Strategy<Value = ConjOp> {
    let field = (0..SUBJECTS.len(), 0..PROPS.len(), 0..OBJECTS.len(), any::<bool>());
    let query = (0usize..16, 0..PROPS.len(), 0..PROPS.len(), 0..SUBJECTS.len());
    prop_oneof![
        // Insert twice: joins only produce rows over populated stores.
        field.clone().prop_map(|(s, p, o, res)| ConjOp::Insert { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| ConjOp::Insert { s, p, o, res }),
        field.prop_map(|(s, p, o, res)| ConjOp::Remove { s, p, o, res }),
        // Query twice: the sweep is about the join engine.
        query.clone().prop_map(|(shape, p0, p1, c)| ConjOp::Query { shape, p0, p1, c }),
        query.prop_map(|(shape, p0, p1, c)| ConjOp::Query { shape, p0, p1, c }),
    ]
}

/// One step against the typed [`slimstore::SlimPadDmi`] layer. Object
/// fields are raw indices resolved against the live object lists; an op
/// whose target class has no live objects is a no-op.
#[derive(Debug, Clone)]
pub enum DmiOp {
    CreateBundle { name: usize, pos: (i64, i64), w: i64, h: i64 },
    CreatePad { name: usize, root: Option<usize> },
    CreateScrap { name: usize, pos: (i64, i64), mark: usize },
    NestBundle { parent: usize, child: usize },
    UnnestBundle { parent: usize, child: usize },
    AddScrap { bundle: usize, scrap: usize },
    RemoveScrap { bundle: usize, scrap: usize },
    AddMark { scrap: usize, mark: usize },
    RemoveMark { scrap: usize, pick: usize },
    Annotate { scrap: usize, text: usize },
    Unannotate { scrap: usize, text: usize },
    Link { from: usize, to: usize },
    Unlink { from: usize, to: usize },
    UpdateBundlePos { bundle: usize, pos: (i64, i64) },
    UpdateScrapName { scrap: usize, name: usize },
    UpdateRootBundle { pad: usize, root: Option<usize> },
    DeleteBundle { bundle: usize },
    DeleteScrap { scrap: usize },
    DeletePad { pad: usize },
    Checkpoint,
    Rollback { back: usize },
}

pub fn dmi_op_strategy() -> impl Strategy<Value = DmiOp> {
    let pos = (0i64..200, 0i64..200);
    let idx = 0usize..16;
    prop_oneof![
        (0..NAMES.len(), pos.clone(), 10i64..400, 10i64..300)
            .prop_map(|(name, pos, w, h)| DmiOp::CreateBundle { name, pos, w, h }),
        (0..NAMES.len(), proptest::option::of(idx.clone()))
            .prop_map(|(name, root)| DmiOp::CreatePad { name, root }),
        (0..NAMES.len(), pos.clone(), idx.clone())
            .prop_map(|(name, pos, mark)| DmiOp::CreateScrap { name, pos, mark }),
        (idx.clone(), idx.clone()).prop_map(|(parent, child)| DmiOp::NestBundle { parent, child }),
        (idx.clone(), idx.clone())
            .prop_map(|(parent, child)| DmiOp::UnnestBundle { parent, child }),
        (idx.clone(), idx.clone()).prop_map(|(bundle, scrap)| DmiOp::AddScrap { bundle, scrap }),
        (idx.clone(), idx.clone()).prop_map(|(bundle, scrap)| DmiOp::RemoveScrap { bundle, scrap }),
        (idx.clone(), idx.clone()).prop_map(|(scrap, mark)| DmiOp::AddMark { scrap, mark }),
        (idx.clone(), idx.clone()).prop_map(|(scrap, pick)| DmiOp::RemoveMark { scrap, pick }),
        (idx.clone(), 0..ANNOTATIONS.len())
            .prop_map(|(scrap, text)| DmiOp::Annotate { scrap, text }),
        (idx.clone(), 0..ANNOTATIONS.len())
            .prop_map(|(scrap, text)| DmiOp::Unannotate { scrap, text }),
        (idx.clone(), idx.clone()).prop_map(|(from, to)| DmiOp::Link { from, to }),
        (idx.clone(), idx.clone()).prop_map(|(from, to)| DmiOp::Unlink { from, to }),
        (idx.clone(), pos.clone()).prop_map(|(bundle, pos)| DmiOp::UpdateBundlePos { bundle, pos }),
        (idx.clone(), 0..NAMES.len())
            .prop_map(|(scrap, name)| DmiOp::UpdateScrapName { scrap, name }),
        (idx.clone(), proptest::option::of(idx.clone()))
            .prop_map(|(pad, root)| DmiOp::UpdateRootBundle { pad, root }),
        idx.clone().prop_map(|bundle| DmiOp::DeleteBundle { bundle }),
        idx.clone().prop_map(|scrap| DmiOp::DeleteScrap { scrap }),
        idx.clone().prop_map(|pad| DmiOp::DeletePad { pad }),
        Just(DmiOp::Checkpoint),
        (0usize..8).prop_map(|back| DmiOp::Rollback { back }),
    ]
}

/// One step against the [`slimpad::PadSession`] application layer.
#[derive(Debug, Clone)]
pub enum PadOp {
    BeginOp,
    Undo,
    CreateBundle { name: usize, pos: (i64, i64), parent: Option<usize> },
    PlaceMark { label: usize, pos: (i64, i64), bundle: Option<usize> },
    Annotate { scrap: usize, text: usize },
    DeleteScrap { scrap: usize },
}

pub fn pad_op_strategy() -> impl Strategy<Value = PadOp> {
    let pos = (0i64..200, 0i64..200);
    let idx = 0usize..16;
    prop_oneof![
        Just(PadOp::BeginOp),
        Just(PadOp::Undo),
        (0..NAMES.len(), pos.clone(), proptest::option::of(idx.clone()))
            .prop_map(|(name, pos, parent)| PadOp::CreateBundle { name, pos, parent }),
        (0..NAMES.len(), pos, proptest::option::of(idx.clone()))
            .prop_map(|(label, pos, bundle)| PadOp::PlaceMark { label, pos, bundle }),
        (idx.clone(), 0..ANNOTATIONS.len())
            .prop_map(|(scrap, text)| PadOp::Annotate { scrap, text }),
        idx.prop_map(|scrap| PadOp::DeleteScrap { scrap }),
    ]
}

/// One step against the supervised pad-session service
/// ([`slimserve::PadService`]; see `padserve_diff`). Ops are submitted
/// serially through the *main* session handle; the `Sibling*` ops route
/// through a second registered session, so a shrunk counterexample
/// spells out the two-session schedule directly. Selector fields are
/// indices the service itself resolves modulo the live population in
/// canonical creation order, so every generated op is executable.
#[derive(Debug, Clone)]
pub enum PadServeOp {
    /// Create a bundle (`parent` selects an existing bundle; the
    /// invisible root when `None` or while no bundles exist).
    Create { name: usize, pos: (i64, i64), parent: Option<usize> },
    /// Mint a mark over the ward text universe and place it on the pad
    /// as a labelled scrap.
    Mark { doc: usize, paragraph: usize, label: usize, pos: (i64, i64), bundle: Option<usize> },
    /// Attach an annotation to the selected scrap.
    Annotate { scrap: usize, text: usize },
    /// Link two selected scraps.
    Link { from: usize, to: usize },
    /// Resolve the selected scrap's mark through the resilient resolver.
    Resolve { scrap: usize },
    /// Extract the selected scrap's marked content.
    Extract { scrap: usize },
    /// Undo the most recent undoable op (shared pad-level stack).
    Undo,
    /// Re-apply the most recently undone op.
    Redo,
    /// Explicit durable commit (each batch commits anyway; this drives
    /// the clean-commit path).
    Commit,
    /// Fold the WAL into a fresh snapshot generation.
    Compact,
    /// Second session: a structural op (a placed mark when `mark`, a
    /// bundle otherwise) — create/create interleavings across sessions.
    SiblingPadOp { mark: bool, name: usize, pos: (i64, i64), target: Option<usize> },
    /// Second session: undo the top of the shared undo stack — one
    /// session rewinding work the other acknowledged.
    SiblingUndo,
    /// Second session: submit a structural op straight into a one-shot
    /// append fault (`torn` tears the frame mid-write): the batch's
    /// group commit fails, the op is io-refused, and the writer reopens
    /// from disk — a crash-commit schedule in miniature. Acked history
    /// must survive exactly.
    SiblingCrashCommit { torn: bool, tear_seed: u64 },
}

pub fn padserve_op_strategy() -> impl Strategy<Value = PadServeOp> {
    let pos = (0i64..200, 0i64..200);
    let idx = 0usize..16;
    prop_oneof![
        // Creation twice: populated pads are what give the other verbs
        // something to land on.
        (0..NAMES.len(), pos.clone(), proptest::option::of(idx.clone()))
            .prop_map(|(name, pos, parent)| PadServeOp::Create { name, pos, parent }),
        (0usize..8, 0usize..8, 0..NAMES.len(), pos.clone(), proptest::option::of(idx.clone()))
            .prop_map(|(doc, paragraph, label, pos, bundle)| PadServeOp::Mark {
                doc,
                paragraph,
                label,
                pos,
                bundle
            }),
        (0usize..8, 0usize..8, 0..NAMES.len(), pos.clone(), proptest::option::of(idx.clone()))
            .prop_map(|(doc, paragraph, label, pos, bundle)| PadServeOp::Mark {
                doc,
                paragraph,
                label,
                pos,
                bundle
            }),
        (idx.clone(), 0..ANNOTATIONS.len())
            .prop_map(|(scrap, text)| PadServeOp::Annotate { scrap, text }),
        (idx.clone(), idx.clone()).prop_map(|(from, to)| PadServeOp::Link { from, to }),
        idx.clone().prop_map(|scrap| PadServeOp::Resolve { scrap }),
        idx.clone().prop_map(|scrap| PadServeOp::Extract { scrap }),
        Just(PadServeOp::Undo),
        Just(PadServeOp::Redo),
        Just(PadServeOp::Commit),
        Just(PadServeOp::Compact),
        (any::<bool>(), 0..NAMES.len(), pos, proptest::option::of(idx))
            .prop_map(|(mark, name, pos, target)| PadServeOp::SiblingPadOp {
                mark,
                name,
                pos,
                target
            }),
        Just(PadServeOp::SiblingUndo),
        (any::<bool>(), any::<u64>())
            .prop_map(|(torn, tear_seed)| PadServeOp::SiblingCrashCommit { torn, tear_seed }),
    ]
}

/// One step against the logged-persistence stack ([`trim::StoreLog`]
/// over [`slimio::Wal`]; see `wal_diff`). Mutating ops edit the live
/// store; `Commit`/`Compact` move the durability boundary; the crash
/// ops inject a halting fault mid-write and then "reboot" through
/// recovery, checking the recovered state against the model's
/// acknowledged commits.
#[derive(Debug, Clone)]
pub enum WalOp {
    Insert { s: usize, p: usize, o: usize, res: bool },
    Remove { s: usize, p: usize, o: usize, res: bool },
    SetUnique { s: usize, p: usize, o: usize, res: bool },
    /// Record the current revision + model snapshot for a later `Undo`.
    Checkpoint,
    /// Undo to the `back`-th most recent checkpoint (modulo stack size).
    Undo { back: usize },
    /// Group-commit the changes since the last commit as one log frame.
    Commit,
    /// Fold the log into a fresh snapshot and reset it.
    Compact,
    /// Drop the live handles and recover from disk; must land exactly on
    /// the last acknowledged commit.
    Reopen,
    /// Crash during a commit: `fault` picks append/sync, `mode` the
    /// misbehavior, `tear_seed` the torn length; then reboot + recover.
    CrashCommit { fault: usize, mode: usize, tear_seed: u64 },
    /// Crash at one of the eight compaction steps (write/sync/rename/
    /// sync_dir for the snapshot install, then again for the log reset).
    CrashCompact { step: usize, mode: usize, tear_seed: u64 },
    /// Flip one byte of the on-disk log (on a clone), then recover: the
    /// result must be a commit boundary or a clean refusal.
    CorruptTail { offset: u64, flip: u8 },
    /// Second session: insert into the *sibling* logged store (its own
    /// snapshot + log at a sibling path on the same disk). Interleaving
    /// these with the main ops produces two-session schedules.
    SiblingInsert { s: usize, p: usize, o: usize, res: bool },
    /// Second session: group-commit the sibling's pending changes —
    /// commit/commit interleavings with the main session.
    SiblingCommit,
    /// Second session: fold the sibling's log into a fresh snapshot —
    /// commit/compact interleavings.
    SiblingCompact,
    /// Crash during the *sibling's* commit, then reboot both sessions.
    /// The sibling recovers its acked state or the attempted batch; the
    /// main session must recover **exactly** its acknowledged commit —
    /// one session's crash never moves another's durability boundary.
    SiblingCrashCommit { fault: usize, mode: usize, tear_seed: u64 },
}

pub fn wal_op_strategy() -> impl Strategy<Value = WalOp> {
    let field = (0..SUBJECTS.len(), 0..PROPS.len(), 0..OBJECTS.len(), any::<bool>());
    prop_oneof![
        // Insert twice: growth-biased sequences give commits substance.
        field.clone().prop_map(|(s, p, o, res)| WalOp::Insert { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| WalOp::Insert { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| WalOp::Remove { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| WalOp::SetUnique { s, p, o, res }),
        Just(WalOp::Checkpoint),
        (0usize..8).prop_map(|back| WalOp::Undo { back }),
        // Commit twice: boundaries are what every other check leans on.
        Just(WalOp::Commit),
        Just(WalOp::Commit),
        Just(WalOp::Compact),
        Just(WalOp::Reopen),
        (0usize..2, 0usize..3, any::<u64>())
            .prop_map(|(fault, mode, tear_seed)| WalOp::CrashCommit { fault, mode, tear_seed }),
        (0usize..8, 0usize..3, any::<u64>())
            .prop_map(|(step, mode, tear_seed)| WalOp::CrashCompact { step, mode, tear_seed }),
        (any::<u64>(), any::<u8>())
            .prop_map(|(offset, flip)| WalOp::CorruptTail { offset, flip }),
        field.prop_map(|(s, p, o, res)| WalOp::SiblingInsert { s, p, o, res }),
        Just(WalOp::SiblingCommit),
        Just(WalOp::SiblingCompact),
        (0usize..2, 0usize..3, any::<u64>()).prop_map(|(fault, mode, tear_seed)| {
            WalOp::SiblingCrashCommit { fault, mode, tear_seed }
        }),
    ]
}

/// One step against the resilient-resolver state machine (see
/// `resolver_diff`). `Resolve` targets a fixture mark by index modulo
/// the fixture's mark count; `Advance` moves the mock clock (letting
/// open breakers cool down between resolutions); `Reseed` switches the
/// fault schedule mid-run.
#[derive(Debug, Clone)]
pub enum ResolverOp {
    Resolve { mark: usize },
    Advance { ms: u16 },
    Reseed { seed: u64 },
}

pub fn resolver_op_strategy() -> impl Strategy<Value = ResolverOp> {
    let mark = 0usize..8;
    prop_oneof![
        // Resolve three times: resolution-heavy sequences are what walk
        // the breaker through trip / cooldown / probe transitions.
        mark.clone().prop_map(|mark| ResolverOp::Resolve { mark }),
        mark.clone().prop_map(|mark| ResolverOp::Resolve { mark }),
        mark.prop_map(|mark| ResolverOp::Resolve { mark }),
        (0u16..1200).prop_map(|ms| ResolverOp::Advance { ms }),
        any::<u64>().prop_map(|seed| ResolverOp::Reseed { seed }),
    ]
}
