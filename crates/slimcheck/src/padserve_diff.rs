//! Pad-service differential check: a live, supervised
//! [`slimserve::PadService`] driven serially through two registered
//! sessions, with every acknowledged op replayed into a fresh
//! single-threaded [`PadMachine`] mirror.
//!
//! The contract checked is the service's own: an ack means the op was
//! durably committed and deterministically replayable, a refusal means
//! it never happened. Concretely, after every acked op the service's
//! published logical digest must equal the mirror's, and the acked
//! outcome itself (resolution display, undo/redo stepping, extraction
//! content) must match what the mirror computes from the same op. The
//! `Sibling*` ops interleave a second session — including
//! [`SiblingCrashCommit`](crate::ops::PadServeOp::SiblingCrashCommit),
//! which drives a structural op into a one-shot append fault so the
//! batch is io-refused and the writer reopens from disk mid-sequence.
//! At the end the ledger must balance (zero silent drops) and a cold
//! from-disk reopen must land exactly on the acked state.
//!
//! Ops are submitted with blocking `submit()` and the shared clock is
//! never advanced, so the schedule — batching, faults, reopens — is a
//! pure function of the op sequence and the whole check is
//! deterministic, shrink-safe, and seed-replayable.

use crate::ops::{PadServeOp, ANNOTATIONS, NAMES};
use marks::resilience::{BreakerConfig, MockClock};
use marks::{FaultProfile, FlakyControl, RetryPolicy};
use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs, Vfs};
use slimpad::PadEngine;
use slimserve::{
    ward_doc, ward_factory, ward_mirror, PadConfig, PadMachine, PadOp, PadService,
    PadSessionHandle, ServeError, WARD_PARAGRAPHS,
};
use std::path::Path;
use std::sync::Arc;

/// Where the service's snapshot + log + sidecar live on the fault disk.
const PAD: &str = "slimcheck/padserve.xml";

fn config() -> PadConfig {
    PadConfig {
        queue_capacity: 64,
        max_batch: 8,
        // Ops are submitted serially and the clock never moves, so the
        // deadline only needs to be nonzero; a roomy one keeps timeouts
        // out of the differential entirely.
        op_deadline_ms: 60_000,
        // Generous: engine refusals (empty-pad selectors, empty undo
        // stacks) are routine in generated sequences and must not
        // quarantine the session before the interesting schedule runs.
        breaker: BreakerConfig {
            failure_threshold: 64,
            cooldown_ms: 1_000,
            probe_budget: 3,
            probe_successes: 1,
        },
        // Small enough that generated sequences cross compaction
        // boundaries without an explicit `Compact` op.
        compact_threshold: 1 << 12,
    }
}

/// Run `ops` against a live pad service and its mirror; panics on any
/// divergence.
pub fn check(ops: &[PadServeOp]) {
    let disk = Arc::new(FaultVfs::unarmed(MemVfs::new()));
    let clock = Arc::new(MockClock::new());
    let control = FlakyControl::new(0);
    control.disarm();
    let factory = ward_factory(
        (*clock).clone(),
        FaultProfile::healthy(),
        control.clone(),
        RetryPolicy::default(),
        BreakerConfig::default(),
        3,
    );
    let service =
        PadService::open(disk.clone(), Path::new(PAD), config(), clock.clone(), factory)
            .expect("fresh pad service opens on a healthy MemVfs");
    let main = service.session();
    let sibling = service.session();
    let mut mirror = ward_mirror();

    for op in ops {
        step(op, &disk, &main, &sibling, &mut mirror);
    }

    let live = service.digest();
    assert_eq!(live, mirror.digest(), "live digest diverged from the acked-op mirror at the end");

    let stats = service.shutdown();
    assert_eq!(stats.unaccounted(), 0, "pad-service ledger does not balance: {stats:?}");
    // Serial blocking submission can never overflow the queue, age an
    // op past its deadline, or panic the writer (no chaos ops here).
    assert_eq!(stats.shed, 0, "serial submission was shed: {stats:?}");
    assert_eq!(stats.timed_out, 0, "serial submission timed out under a frozen clock: {stats:?}");
    assert_eq!(stats.panicked, 0, "writer panicked without a chaos op: {stats:?}");

    assert_eq!(
        reopen_digest(&*disk),
        mirror.digest(),
        "cold from-disk reopen diverged from the acked-op mirror"
    );
}

/// Submit one translated op and hold the service to its ack contract.
fn step(
    op: &PadServeOp,
    disk: &Arc<FaultVfs<MemVfs>>,
    main: &PadSessionHandle,
    sibling: &PadSessionHandle,
    mirror: &mut PadMachine,
) {
    let (via_sibling, pad_op, fault) = translate(op);
    let session = if via_sibling { sibling } else { main };
    let crash = fault.is_some();
    if let Some(config) = fault {
        disk.rearm(config);
    }
    let verdict = session.submit(pad_op.clone());
    if crash {
        // The one-shot fault was consumed by the doomed commit; this
        // just clears the schedule for the next arm.
        disk.disarm();
    }
    match verdict {
        Ok(ack) => {
            assert!(!crash, "crash-commit probe was acked despite the armed append fault");
            let mirrored = mirror.apply(&pad_op).unwrap_or_else(|e| {
                panic!("acked op {pad_op:?} refused in mirror replay: {e}")
            });
            assert_eq!(
                ack.outcome, mirrored,
                "acked outcome diverged from mirror replay for {pad_op:?}"
            );
            assert_eq!(
                session.digest(),
                mirror.digest(),
                "published digest diverged from mirror after acked {pad_op:?}"
            );
        }
        // Typed domain refusal: the op never happened on either side.
        Err(ServeError::Engine { .. }) => {
            assert!(!crash, "crash-commit probe must die in the commit, not the engine");
        }
        // The doomed batch: commit failed, op refused, the suspect log
        // tail truncated, and the writer reopened from disk — and it
        // publishes the reopened digest *before* resolving the refusal,
        // so the rollback must already be visible here.
        Err(ServeError::Io { .. }) => {
            assert!(crash, "io refusal without an armed fault for {pad_op:?}");
            assert_eq!(
                session.digest(),
                mirror.digest(),
                "io-refused batch left a visible digest change for {pad_op:?}"
            );
        }
        // A session breaker can legitimately open under a refusal-heavy
        // generated sequence; admission refusals reach neither side.
        Err(ServeError::Quarantined { .. }) => {}
        Err(e) => panic!("unexpected refusal for {pad_op:?}: {e}"),
    }
}

/// Lower a generated op to (which session, the service op, an optional
/// one-shot fault to arm first).
fn translate(op: &PadServeOp) -> (bool, PadOp, Option<FaultConfig>) {
    match *op {
        PadServeOp::Create { name, pos, parent } => (false, bundle_op(name, pos, parent), None),
        PadServeOp::Mark { doc, paragraph, label, pos, bundle } => {
            (false, mark_op(doc, paragraph, label, pos, bundle), None)
        }
        PadServeOp::Annotate { scrap, text } => (
            false,
            PadOp::Annotate { scrap: scrap as u64, text: ANNOTATIONS[text].to_string() },
            None,
        ),
        PadServeOp::Link { from, to } => {
            (false, PadOp::Link { from: from as u64, to: to as u64 }, None)
        }
        PadServeOp::Resolve { scrap } => (false, PadOp::Resolve { scrap: scrap as u64 }, None),
        PadServeOp::Extract { scrap } => (false, PadOp::Extract { scrap: scrap as u64 }, None),
        PadServeOp::Undo => (false, PadOp::Undo, None),
        PadServeOp::Redo => (false, PadOp::Redo, None),
        PadServeOp::Commit => (false, PadOp::Commit, None),
        PadServeOp::Compact => (false, PadOp::Compact, None),
        PadServeOp::SiblingPadOp { mark, name, pos, target } => {
            let op = if mark {
                mark_op(name, name, name, pos, target)
            } else {
                bundle_op(name, pos, target)
            };
            (true, op, None)
        }
        PadServeOp::SiblingUndo => (true, PadOp::Undo, None),
        PadServeOp::SiblingCrashCommit { torn, tear_seed } => {
            let mode = if torn { FaultMode::Torn } else { FaultMode::Fail };
            // The probe must reach its group commit, so it is an op the
            // engine always accepts; the fault then fails the commit's
            // first append and the whole batch is io-refused.
            let probe = PadOp::CreateBundle {
                name: "crash probe".into(),
                pos: (0, 0),
                width: 10,
                height: 10,
                parent: None,
            };
            (true, probe, Some(FaultConfig::new(FaultOp::Append, mode, 0, tear_seed)))
        }
    }
}

fn bundle_op(name: usize, pos: (i64, i64), parent: Option<usize>) -> PadOp {
    PadOp::CreateBundle {
        name: NAMES[name % NAMES.len()].to_string(),
        pos,
        width: 160,
        height: 120,
        parent: parent.map(|p| p as u64),
    }
}

fn mark_op(doc: usize, paragraph: usize, label: usize, pos: (i64, i64), bundle: Option<usize>) -> PadOp {
    PadOp::CreateMark {
        doc: ward_doc(doc as u64),
        paragraph: (paragraph % WARD_PARAGRAPHS) as u64,
        start: 0,
        len: 4 + (label % 8) as u64,
        label: NAMES[label % NAMES.len()].to_string(),
        pos,
        bundle: bundle.map(|b| b as u64),
    }
}

/// Digest of the durable on-disk state (snapshot + WAL + marks sidecar)
/// through a cold reopen into a fresh engine.
fn reopen_digest(disk: &dyn Vfs) -> u64 {
    let mut factory = ward_factory(
        MockClock::new(),
        FaultProfile::healthy(),
        FlakyControl::new(0),
        RetryPolicy::default(),
        BreakerConfig::default(),
        3,
    );
    let parts = factory().expect("ward universe builds");
    let (engine, _report) = PadEngine::open_logged(disk, Path::new(PAD), parts.manager)
        .expect("post-shutdown pad must reopen from disk");
    PadMachine::new(engine, parts.search).digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed schedule touching every verb, both sessions, and a
    /// crash commit must come out clean.
    #[test]
    fn fixed_two_session_schedule_is_clean() {
        check(&[
            PadServeOp::Create { name: 0, pos: (10, 10), parent: None },
            PadServeOp::Mark { doc: 0, paragraph: 1, label: 1, pos: (20, 20), bundle: Some(0) },
            PadServeOp::SiblingPadOp { mark: true, name: 2, pos: (30, 30), target: Some(0) },
            PadServeOp::Annotate { scrap: 0, text: 0 },
            PadServeOp::Link { from: 0, to: 1 },
            PadServeOp::Resolve { scrap: 0 },
            PadServeOp::Extract { scrap: 1 },
            PadServeOp::Commit,
            PadServeOp::SiblingCrashCommit { torn: false, tear_seed: 7 },
            PadServeOp::Create { name: 3, pos: (40, 40), parent: Some(0) },
            PadServeOp::SiblingUndo,
            PadServeOp::Redo,
            PadServeOp::SiblingCrashCommit { torn: true, tear_seed: 0xfeed },
            PadServeOp::Mark { doc: 1, paragraph: 0, label: 0, pos: (50, 50), bundle: None },
            PadServeOp::Undo,
            PadServeOp::Compact,
            PadServeOp::Resolve { scrap: 0 },
        ]);
    }

    /// Regression (found by the 128-case sweep, seed
    /// 0xb4a9f7bc9c34fd8a): a torn append whose tear length covers the
    /// *entire* frame leaves the io-refused batch CRC-valid on disk. A
    /// cold reopen cannot tell it from real history, so without the
    /// post-failure `repair_log` truncation the refused op silently
    /// became durable and the reopen digest diverged from the mirror.
    /// This tear seed produces a full-length tear for this schedule.
    #[test]
    fn fully_landed_torn_commit_is_truncated_not_adopted() {
        check(&[
            PadServeOp::SiblingPadOp { mark: true, name: 0, pos: (194, 66), target: Some(7) },
            PadServeOp::Mark { doc: 6, paragraph: 1, label: 4, pos: (112, 184), bundle: Some(14) },
            PadServeOp::Mark { doc: 6, paragraph: 6, label: 3, pos: (165, 36), bundle: None },
            PadServeOp::SiblingPadOp { mark: true, name: 0, pos: (95, 127), target: Some(12) },
            PadServeOp::SiblingCrashCommit { torn: true, tear_seed: 14895910682995164361 },
        ]);
    }

    /// Refusal-heavy sequences (empty-pad selectors, empty undo stacks)
    /// stay balanced and never desynchronize the mirror.
    #[test]
    fn refusals_leave_both_sides_untouched() {
        check(&[
            PadServeOp::Undo,
            PadServeOp::Redo,
            PadServeOp::Annotate { scrap: 3, text: 1 },
            PadServeOp::Link { from: 1, to: 2 },
            PadServeOp::Resolve { scrap: 0 },
            PadServeOp::SiblingUndo,
            PadServeOp::Create { name: 1, pos: (5, 5), parent: Some(4) },
            PadServeOp::Undo,
            PadServeOp::Undo,
        ]);
    }
}

