//! Store-layer differential check: one op sequence driven simultaneously
//! through [`TripleStore`] (the real stack), [`NaiveStore`] (the
//! scan-everything baseline), and a `BTreeSet` oracle, with the journal
//! checked against a snapshot stack and every save round-tripped —
//! including crash saves through the fault-injecting VFS.
//!
//! Every check here panics on divergence; the harness in `lib.rs` catches
//! the panic, shrinks the sequence, and reports a replay seed.

use crate::ops::{StoreOp, OBJECTS, PROPS, SUBJECTS};
use crate::Mutation;
use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs, Vfs};
use std::collections::BTreeSet;
use std::path::Path;
use trim::{NaiveStore, PatternShape, Plan, Revision, Triple, TriplePattern, TripleStore, Value};

const SAVE_PATH: &str = "slimcheck/store.xml";
const FAULT_OPS: [FaultOp; 3] = [FaultOp::Write, FaultOp::Sync, FaultOp::Rename];
const FAULT_MODES: [FaultMode; 3] = [FaultMode::Fail, FaultMode::Torn, FaultMode::SilentTorn];

type ModelTriple = (String, String, String, bool);
/// A query shape: optional subject/property indices and an optional
/// `(object index, is_resource)` pair.
type Shape = (Option<usize>, Option<usize>, Option<(usize, bool)>);

/// Run `ops` through the full store world; panics on any divergence.
pub fn check(ops: &[StoreOp], mutation: Mutation) {
    let mut world = World::new();
    for op in ops {
        world.apply(op, mutation);
        world.verify();
    }
    world.pattern_sweep();
    // Index invariants run once at the end of the sequence, *after* the
    // sweep: an index left stale mid-sequence is reported as the query
    // divergence that observed it (naming the pattern shape), not as an
    // anonymous structural failure.
    world.store.check_invariants();
}

struct World {
    store: TripleStore,
    naive: NaiveStore,
    oracle: BTreeSet<ModelTriple>,
    /// Every triple the oracle ever held — salvage may recover any
    /// prefix of a past save, but must never invent triples.
    ever_inserted: BTreeSet<ModelTriple>,
    /// `(journal revision, oracle snapshot)` pairs; `Undo` restores one
    /// and truncates the stack (later revisions no longer exist).
    checkpoints: Vec<(Revision, BTreeSet<ModelTriple>)>,
    disk: MemVfs,
    /// Contents of the last successful durable save, if any.
    last_good: Option<BTreeSet<ModelTriple>>,
}

impl World {
    fn new() -> Self {
        let store = TripleStore::new();
        let checkpoints = vec![(store.revision(), BTreeSet::new())];
        World {
            store,
            naive: NaiveStore::new(),
            oracle: BTreeSet::new(),
            ever_inserted: BTreeSet::new(),
            checkpoints,
            disk: MemVfs::new(),
            last_good: None,
        }
    }

    fn intern(&mut self, s: usize, p: usize, o: usize, res: bool) -> Triple {
        let subject = self.store.atom(SUBJECTS[s]);
        let property = self.store.atom(PROPS[p]);
        let object = if res {
            Value::Resource(self.store.atom(OBJECTS[o]))
        } else {
            self.store.literal_value(OBJECTS[o])
        };
        Triple { subject, property, object }
    }

    fn apply(&mut self, op: &StoreOp, mutation: Mutation) {
        match *op {
            StoreOp::Insert { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                let added = self.store.insert(t.subject, t.property, t.object);
                if added && mutation == Mutation::SkipSubjectIndex {
                    self.store.testonly_unindex_subject(t);
                }
                let key = model_key(s, p, o, res);
                let naive_added = self.naive.insert(SUBJECTS[s], PROPS[p], OBJECTS[o], res);
                let oracle_added = self.oracle.insert(key.clone());
                self.ever_inserted.insert(key);
                assert_eq!(added, naive_added, "insert: store vs naive on {op:?}");
                assert_eq!(added, oracle_added, "insert: store vs oracle on {op:?}");
            }
            StoreOp::Remove { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                let removed = self.store.remove(t);
                if removed && mutation == Mutation::SkipPosIndexOnRemove {
                    self.store.testonly_reinsert_pos(t);
                }
                let naive_removed = self.naive.remove_exact(SUBJECTS[s], PROPS[p], OBJECTS[o], res);
                let oracle_removed = self.oracle.remove(&model_key(s, p, o, res));
                assert_eq!(removed, naive_removed, "remove: store vs naive on {op:?}");
                assert_eq!(removed, oracle_removed, "remove: store vs oracle on {op:?}");
            }
            StoreOp::SetUnique { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                if mutation == Mutation::LossySetUnique {
                    // Seeded bug: forget to clear the old values.
                    self.store.insert(t.subject, t.property, t.object);
                } else {
                    self.store.set_unique(t.subject, t.property, t.object);
                }
                self.naive.set_unique(SUBJECTS[s], PROPS[p], OBJECTS[o], res);
                self.oracle.retain(|(ms, mp, _, _)| !(ms == SUBJECTS[s] && mp == PROPS[p]));
                let key = model_key(s, p, o, res);
                self.oracle.insert(key.clone());
                self.ever_inserted.insert(key);
            }
            StoreOp::RemoveMatching { s, p, o } => {
                let pattern = self.pattern(s, p, o);
                let removed = self.store.remove_matching(&pattern);
                let naive_removed = self.naive.remove_matching(
                    s.map(|i| SUBJECTS[i]),
                    p.map(|i| PROPS[i]),
                    o.map(|(i, res)| (OBJECTS[i], res)),
                );
                let before = self.oracle.len();
                self.oracle.retain(|t| !model_matches(t, s, p, o));
                let oracle_removed = before - self.oracle.len();
                assert_eq!(removed, naive_removed, "remove_matching: store vs naive on {op:?}");
                assert_eq!(removed, oracle_removed, "remove_matching: store vs oracle on {op:?}");
            }
            StoreOp::QueryShape { s, p, o } => {
                self.query_shape(s, p, o);
            }
            StoreOp::Checkpoint => {
                self.checkpoints.push((self.store.revision(), self.oracle.clone()));
            }
            StoreOp::Undo { back } => {
                let idx = self.checkpoints.len() - 1 - (back % self.checkpoints.len());
                let (rev, snapshot) = self.checkpoints[idx].clone();
                if mutation != Mutation::UndoNoop {
                    self.store.undo_to(rev).expect("recorded revision must be undoable");
                }
                self.oracle = snapshot;
                self.rebuild_naive();
                // Later checkpoints reference revisions that no longer
                // exist after the undo; drop them.
                self.checkpoints.truncate(idx + 1);
            }
            StoreOp::Save => {
                self.store
                    .save_to(&self.disk, Path::new(SAVE_PATH))
                    .expect("MemVfs save cannot fail");
                let loaded = TripleStore::load_from(&self.disk, Path::new(SAVE_PATH))
                    .expect("fresh save must load strictly");
                assert_eq!(contents(&loaded), self.oracle, "save/load round-trip diverged");
                let salvaged = TripleStore::load_salvage_from(&self.disk, Path::new(SAVE_PATH))
                    .expect("fresh save must salvage");
                assert!(salvaged.is_clean(), "fresh save salvage reported damage");
                assert_eq!(contents(&salvaged.value), self.oracle, "salvage of fresh save diverged");
                self.last_good = Some(self.oracle.clone());
            }
            StoreOp::CrashSave { fault, mode, tear_seed } => {
                self.crash_save(fault, mode, tear_seed);
                self.torn_destination_salvage(tear_seed);
            }
        }
    }

    fn rebuild_naive(&mut self) {
        self.naive = NaiveStore::new();
        for (s, p, o, res) in &self.oracle {
            self.naive.insert(s, p, o, *res);
        }
    }

    fn pattern(
        &mut self,
        s: Option<usize>,
        p: Option<usize>,
        o: Option<(usize, bool)>,
    ) -> TriplePattern {
        let mut pattern = TriplePattern::default();
        if let Some(s) = s {
            let a = self.store.atom(SUBJECTS[s]);
            pattern = pattern.with_subject(a);
        }
        if let Some(p) = p {
            let a = self.store.atom(PROPS[p]);
            pattern = pattern.with_property(a);
        }
        if let Some((o, res)) = o {
            let v = if res {
                let a = self.store.atom(OBJECTS[o]);
                Value::Resource(a)
            } else {
                self.store.literal_value(OBJECTS[o])
            };
            pattern = pattern.with_object(v);
        }
        pattern
    }

    /// Attempt a save with an injected fault on a *clone* of the disk,
    /// then assert the crash-safety contract on the post-crash state.
    fn crash_save(&mut self, fault: usize, mode: usize, tear_seed: u64) {
        let config = FaultConfig::new(
            FAULT_OPS[fault % FAULT_OPS.len()],
            FAULT_MODES[mode % FAULT_MODES.len()],
            0,
            tear_seed,
        )
        .halting();
        let vfs = FaultVfs::new(self.disk.clone(), config);
        let result = self.store.save_to(&vfs, Path::new(SAVE_PATH));
        let fired = vfs.fault_fired();
        let after = vfs.into_inner();
        let loaded = TripleStore::load_from(&after, Path::new(SAVE_PATH)).map(|s| contents(&s));
        match (&result, fired) {
            (Ok(()), false) => {
                // The scheduled fault never triggered (e.g. targeting an
                // op the save doesn't reach); this is a plain save.
                assert_eq!(
                    loaded.expect("clean save must load"),
                    self.oracle,
                    "clean crash-save load diverged"
                );
            }
            (Ok(()), true) => {
                // Lying disk: save claims success but the fault fired
                // (silent-torn rename = "reported done, never happened").
                // The destination must hold either the old good file or
                // the new contents — never garbage that loads.
                match loaded {
                    Ok(c) => assert!(
                        Some(&c) == self.last_good.as_ref() || c == self.oracle,
                        "post-lying-save contents are neither old nor new"
                    ),
                    Err(_) => assert!(
                        self.last_good.is_none(),
                        "lying save destroyed the previous good file"
                    ),
                }
            }
            (Err(_), _) => {
                // The durability contract: a failed save leaves the
                // previous version untouched.
                match &self.last_good {
                    Some(good) => assert_eq!(
                        loaded.as_ref().ok(),
                        Some(good),
                        "failed save must leave the previous good file loadable"
                    ),
                    None => assert!(
                        loaded.is_err(),
                        "failed first save must not leave a loadable destination"
                    ),
                }
            }
        }
        // Salvage must never panic and never invent triples, whatever
        // state the crash left behind.
        if after.bytes(Path::new(SAVE_PATH)).is_some() {
            if let Ok(recovered) = TripleStore::load_salvage_from(&after, Path::new(SAVE_PATH)) {
                let got = contents(&recovered.value);
                assert!(
                    got.is_subset(&self.ever_inserted),
                    "salvage invented triples never inserted"
                );
            }
        }
    }

    /// Simulate a non-atomic writer: a torn sealed payload lands directly
    /// at the destination. Salvage must recover a subset of what was
    /// really there, or fail cleanly — never panic, never fabricate.
    fn torn_destination_salvage(&self, tear_seed: u64) {
        let sealed = slimio::seal(&self.store.to_xml());
        let keep = (tear_seed % (sealed.len() as u64 + 1)) as usize;
        let torn_disk = self.disk.clone();
        torn_disk
            .write(Path::new(SAVE_PATH), &sealed.as_bytes()[..keep])
            .expect("MemVfs write cannot fail");
        if let Ok(recovered) = TripleStore::load_salvage_from(&torn_disk, Path::new(SAVE_PATH)) {
            let got = contents(&recovered.value);
            assert!(
                got.is_subset(&self.ever_inserted),
                "torn-file salvage invented triples never inserted"
            );
        }
    }

    /// Probe one query shape mid-sequence: select/count against the
    /// oracle, and the planner must have picked the table's plan for the
    /// pattern's shape. Failure messages carry the shape name so a shrunk
    /// counterexample states which pattern shape went wrong.
    fn query_shape(&mut self, s: Option<usize>, p: Option<usize>, o: Option<(usize, bool)>) {
        let pattern = self.pattern(s, p, o);
        let plan = self.store.explain(&pattern);
        // Independently derive the expected shape from the op's bound
        // fields — `explain` must classify the pattern the same way.
        let expected_shape = match (s.is_some(), p.is_some(), o.is_some()) {
            (false, false, false) => PatternShape::Unbound,
            (true, false, false) => PatternShape::S,
            (false, true, false) => PatternShape::P,
            (false, false, true) => PatternShape::O,
            (true, true, false) => PatternShape::Sp,
            (true, false, true) => PatternShape::So,
            (false, true, true) => PatternShape::Po,
            (true, true, true) => PatternShape::Spo,
        };
        assert_eq!(
            plan,
            Plan::for_shape(expected_shape),
            "explain chose an off-table plan for shape `{}`",
            expected_shape.name()
        );
        let indexed: BTreeSet<ModelTriple> = self
            .store
            .select(&pattern)
            .into_iter()
            .map(|t| triple_key(&self.store, &t))
            .collect();
        let expected: BTreeSet<ModelTriple> =
            self.oracle.iter().filter(|t| model_matches(t, s, p, o)).cloned().collect();
        assert_eq!(
            indexed,
            expected,
            "query shape `{}` ({plan}) diverged from oracle",
            expected_shape.name()
        );
        assert_eq!(
            self.store.count(&pattern),
            expected.len(),
            "count for shape `{}` diverged from oracle",
            expected_shape.name()
        );
    }

    /// Per-step agreement: contents and length. (Index *invariants* run
    /// once at the end of the sequence — see [`check`] — so a stale index
    /// surfaces as a shaped query divergence first.)
    fn verify(&self) {
        assert_eq!(self.store.len(), self.oracle.len(), "store len diverged from oracle");
        assert_eq!(self.naive.len(), self.oracle.len(), "naive len diverged from oracle");
        assert_eq!(contents(&self.store), self.oracle, "store contents diverged from oracle");
        let naive: BTreeSet<ModelTriple> = self
            .naive
            .select_matching(None, None, None)
            .into_iter()
            .map(|t| (t.subject.clone(), t.property.clone(), t.object.clone(), t.object_is_resource))
            .collect();
        assert_eq!(naive, self.oracle, "naive contents diverged from oracle");
    }

    /// Exhaustive pattern sweep at the end of the sequence: every query
    /// shape over the vocabulary answers identically in the indexed
    /// store, the naive store, and the oracle.
    fn pattern_sweep(&mut self) {
        let mut shapes: Vec<Shape> = Vec::new();
        for s in std::iter::once(None).chain((0..SUBJECTS.len()).map(Some)) {
            for p in std::iter::once(None).chain((0..PROPS.len()).map(Some)) {
                for o in std::iter::once(None)
                    .chain((0..OBJECTS.len()).flat_map(|i| [Some((i, false)), Some((i, true))]))
                {
                    shapes.push((s, p, o));
                }
            }
        }
        for (s, p, o) in shapes {
            let pattern = self.pattern(s, p, o);
            let indexed: BTreeSet<ModelTriple> = self
                .store
                .select(&pattern)
                .into_iter()
                .map(|t| triple_key(&self.store, &t))
                .collect();
            let expected: BTreeSet<ModelTriple> =
                self.oracle.iter().filter(|t| model_matches(t, s, p, o)).cloned().collect();
            assert_eq!(indexed, expected, "select diverged for shape ({s:?},{p:?},{o:?})");
            assert_eq!(
                self.store.count(&pattern),
                expected.len(),
                "count diverged for shape ({s:?},{p:?},{o:?})"
            );
        }
    }
}

fn model_key(s: usize, p: usize, o: usize, res: bool) -> ModelTriple {
    (SUBJECTS[s].to_string(), PROPS[p].to_string(), OBJECTS[o].to_string(), res)
}

fn model_matches(
    t: &ModelTriple,
    s: Option<usize>,
    p: Option<usize>,
    o: Option<(usize, bool)>,
) -> bool {
    s.is_none_or(|i| t.0 == SUBJECTS[i])
        && p.is_none_or(|i| t.1 == PROPS[i])
        && o.is_none_or(|(i, res)| t.2 == OBJECTS[i] && t.3 == res)
}

fn triple_key(store: &TripleStore, t: &Triple) -> ModelTriple {
    (
        store.resolve(t.subject).to_string(),
        store.resolve(t.property).to_string(),
        store.value_text(t.object).to_string(),
        t.object.is_resource(),
    )
}

fn contents(store: &TripleStore) -> BTreeSet<ModelTriple> {
    store.iter().map(|t| triple_key(store, &t)).collect()
}
