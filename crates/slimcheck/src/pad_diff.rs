//! Pad-layer differential check: a [`PadSession`] driven through
//! begin-op / undo cycles with the undo contract checked against a
//! snapshot stack of canonical XML — `undo()` must restore the *exact*
//! byte-identical data-layer state captured by the matching
//! [`PadSession::begin_op`], and the whole session must stay conformant
//! and round-trippable at the end.

use crate::ops::{PadOp, ANNOTATIONS, NAMES};
use basedocs::{textdoc::TextTarget, Span, TextAddress};
use marks::{MarkAddress, MarkManager};
use slimio::MemVfs;
use slimpad::PadSession;
use slimstore::{BundleHandle, ScrapHandle};
use std::path::Path;

/// Run `ops` through a pad session; panics on any divergence.
pub fn check(ops: &[PadOp]) {
    let mut world = PadWorld::new();
    for op in ops {
        world.apply(op);
        world.verify();
    }
    world.final_round_trip();
}

/// What `undo()` must restore: the canonical data-layer XML at
/// `begin_op` time plus the handle lists valid back then (handles minted
/// after the checkpoint dangle once it is restored).
struct UndoSnapshot {
    dmi_xml: String,
    bundles: Vec<BundleHandle>,
    scraps: Vec<ScrapHandle>,
}

struct PadWorld {
    session: PadSession,
    /// Bundles created by ops (the invisible root is excluded, matching
    /// what `stats()` counts).
    bundles: Vec<BundleHandle>,
    scraps: Vec<ScrapHandle>,
    /// Total marks ever minted — the manager is append-only, so undo
    /// does *not* shrink this.
    minted_marks: usize,
    undo_snapshots: Vec<UndoSnapshot>,
}

impl PadWorld {
    fn new() -> Self {
        PadWorld {
            session: PadSession::new("Rounds").expect("fresh pad session"),
            bundles: Vec::new(),
            scraps: Vec::new(),
            minted_marks: 0,
            undo_snapshots: Vec::new(),
        }
    }

    fn mint_mark(&mut self, raw: usize) -> String {
        let address = MarkAddress::Text(TextAddress {
            file_name: format!("notes-{}.txt", self.minted_marks),
            target: TextTarget::Span { paragraph: raw % 5, span: Span::new(0, 4) },
        });
        let id = self
            .session
            .marks_mut()
            .create_mark_at(address)
            .expect("minting a text mark cannot fail");
        self.minted_marks += 1;
        id
    }

    fn apply(&mut self, op: &PadOp) {
        match *op {
            PadOp::BeginOp => {
                self.undo_snapshots.push(UndoSnapshot {
                    dmi_xml: self.session.dmi().save_xml(),
                    bundles: self.bundles.clone(),
                    scraps: self.scraps.clone(),
                });
                self.session.begin_op();
            }
            PadOp::Undo => {
                let snapshot = self.undo_snapshots.pop();
                let undone = self.session.undo().expect("undo over recorded checkpoints");
                assert_eq!(
                    undone,
                    snapshot.is_some(),
                    "undo availability diverged from the snapshot stack"
                );
                if let Some(snapshot) = snapshot {
                    assert_eq!(
                        self.session.dmi().save_xml(),
                        snapshot.dmi_xml,
                        "undo did not restore the exact begin_op state"
                    );
                    self.bundles = snapshot.bundles;
                    self.scraps = snapshot.scraps;
                }
            }
            PadOp::CreateBundle { name, pos, parent } => {
                let parent = self.pick_bundle(parent);
                let handle = self
                    .session
                    .create_bundle(NAMES[name], pos, 160, 120, parent)
                    .expect("creating a bundle on the pad must succeed");
                self.bundles.push(handle);
            }
            PadOp::PlaceMark { label, pos, bundle } => {
                let bundle = self.pick_bundle(bundle);
                let mark_id = self.mint_mark(label);
                let handle = self
                    .session
                    .place_mark(&mark_id, Some(NAMES[label]), pos, bundle)
                    .expect("placing a minted mark must succeed");
                self.scraps.push(handle);
            }
            PadOp::Annotate { scrap, text } => {
                if self.scraps.is_empty() {
                    return;
                }
                let handle = self.scraps[scrap % self.scraps.len()];
                self.session
                    .dmi_mut()
                    .add_annotation(handle, ANNOTATIONS[text])
                    .expect("annotating a live scrap must succeed");
            }
            PadOp::DeleteScrap { scrap } => {
                if self.scraps.is_empty() {
                    return;
                }
                let idx = scrap % self.scraps.len();
                let handle = self.scraps.remove(idx);
                self.session
                    .dmi_mut()
                    .delete_scrap(handle)
                    .expect("deleting a live scrap must succeed");
            }
        }
    }

    fn pick_bundle(&self, raw: Option<usize>) -> Option<BundleHandle> {
        let raw = raw?;
        if self.bundles.is_empty() {
            None
        } else {
            Some(self.bundles[raw % self.bundles.len()])
        }
    }

    fn verify(&self) {
        let stats = self.session.stats();
        assert_eq!(stats.bundles, self.bundles.len(), "bundle count diverged");
        assert_eq!(stats.scraps, self.scraps.len(), "scrap count diverged");
        assert_eq!(stats.marks, self.minted_marks, "mark-store size diverged (it is append-only)");
        for handle in &self.bundles {
            assert!(self.session.dmi().bundle(*handle).is_ok(), "live bundle handle dangles");
        }
        for handle in &self.scraps {
            assert!(self.session.dmi().scrap(*handle).is_ok(), "live scrap handle dangles");
        }
    }

    fn final_round_trip(&self) {
        let report = self.session.dmi().check();
        assert!(report.is_conformant(), "conformance violations: {:?}", report.violations);

        let xml = self.session.save_xml();
        let reloaded =
            PadSession::load_xml(&xml, MarkManager::new()).expect("canonical pad file must load");
        assert_eq!(
            reloaded.dmi().save_xml(),
            self.session.dmi().save_xml(),
            "pad-file round-trip changed the data layer"
        );
        assert_eq!(reloaded.stats().marks, self.minted_marks, "pad-file round-trip lost marks");

        let disk = MemVfs::new();
        let path = Path::new("slimcheck/pad.xml");
        self.session.save_to(&disk, path).expect("MemVfs save cannot fail");
        let from_disk = PadSession::load_from(&disk, path, MarkManager::new())
            .expect("sealed pad file must load");
        assert_eq!(
            from_disk.dmi().save_xml(),
            self.session.dmi().save_xml(),
            "durable pad round-trip diverged"
        );
        let recovered = PadSession::load_salvage_from(&disk, path, MarkManager::new())
            .expect("fresh pad save must salvage");
        assert_eq!(
            recovered.value.dmi().save_xml(),
            self.session.dmi().save_xml(),
            "pad salvage round-trip diverged"
        );
    }
}
