//! slimcheck CLI.
//!
//! * `cargo run -p slimcheck` — bounded differential sweep of every
//!   layer; exits 1 with a replay seed on divergence.
//! * `cargo run -p slimcheck -- --layer store --seed 0x…` — replay one
//!   case deterministically.
//! * `cargo run -p slimcheck -- --mutate` — enable each seeded bug in
//!   turn and prove the harness detects and shrinks it.

use slimcheck::{replay_with_corpus, run_layer_with_corpus, Divergence, Layer, Mutation};

/// Sweep base seed: stable so CI runs are reproducible; override with
/// `--base-seed` to explore a different region.
const DEFAULT_BASE_SEED: u64 = 0x5eed0f5113;
const DEFAULT_CASES: u32 = 64;
const DEFAULT_OPS: usize = 64;

struct Args {
    layers: Vec<Layer>,
    cases: u32,
    max_ops: usize,
    corpus: usize,
    base_seed: u64,
    seed: Option<u64>,
    mutation: Mutation,
    mutate: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: slimcheck [--layer store|conj|wal|dmi|pad|padserve|resolver|all] [--cases N] [--ops N]\n\
         \x20                [--corpus N] [--base-seed HEX] [--seed HEX] [--mutation NAME]\n\
         \x20                [--mutate]\n\
         \n\
         Default: a bounded differential sweep of every layer.\n\
         --corpus N        prepend N slimgen seed-corpus ops to every case\n\
         \x20                (replays must pass the same value)\n\
         --seed HEX        replay one case (requires a single --layer)\n\
         --mutation NAME   seeded bug to enable: {}\n\
         --mutate          run every seeded bug; each must be caught\n\
         \x20                and shrunk to within its per-bug op bound",
        Mutation::ALL.map(|m| m.name()).join(", "),
    );
    std::process::exit(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        layers: Layer::ALL.to_vec(),
        cases: DEFAULT_CASES,
        max_ops: DEFAULT_OPS,
        corpus: 0,
        base_seed: DEFAULT_BASE_SEED,
        seed: None,
        mutation: Mutation::None,
        mutate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--layer" => {
                let v = value("--layer");
                args.layers = if v == "all" {
                    Layer::ALL.to_vec()
                } else {
                    vec![Layer::parse(&v).unwrap_or_else(|| usage_for("--layer"))]
                };
            }
            "--cases" => args.cases = value("--cases").parse().unwrap_or_else(|_| usage_for("--cases")),
            "--ops" => args.max_ops = value("--ops").parse().unwrap_or_else(|_| usage_for("--ops")),
            "--corpus" => {
                args.corpus = value("--corpus").parse().unwrap_or_else(|_| usage_for("--corpus"))
            }
            "--base-seed" => {
                args.base_seed =
                    parse_u64(&value("--base-seed")).unwrap_or_else(|| usage_for("--base-seed"))
            }
            "--seed" => {
                args.seed = Some(parse_u64(&value("--seed")).unwrap_or_else(|| usage_for("--seed")))
            }
            "--mutation" => {
                let v = value("--mutation");
                args.mutation = Mutation::ALL
                    .into_iter()
                    .find(|m| m.name() == v)
                    .unwrap_or_else(|| usage_for("--mutation"));
            }
            "--mutate" => args.mutate = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn usage_for(flag: &str) -> ! {
    eprintln!("slimcheck: bad or missing value for {flag}\n");
    usage()
}

fn main() {
    let args = parse_args();

    if args.mutate {
        std::process::exit(mutation_mode(&args));
    }

    if let Some(seed) = args.seed {
        if args.layers.len() != 1 {
            eprintln!("slimcheck: --seed needs a single --layer (the one from the report)\n");
            usage();
        }
        let layer = args.layers[0];
        match replay_with_corpus(layer, seed, args.max_ops, args.mutation, args.corpus) {
            Some(d) => {
                print!("{}", d.report());
                report_corpus(args.corpus);
                std::process::exit(1);
            }
            None => {
                println!(
                    "slimcheck: layer `{}` seed 0x{seed:016x}: no divergence (mutation: {}, corpus: {})",
                    layer.name(),
                    args.mutation.name(),
                    args.corpus,
                );
                return;
            }
        }
    }

    // Default: bounded sweep over the selected layers.
    let mut failed: Option<Divergence> = None;
    for layer in &args.layers {
        println!(
            "slimcheck: sweeping layer `{}` ({} cases, <= {} ops, corpus {}, base seed 0x{:016x})",
            layer.name(),
            args.cases,
            args.max_ops,
            args.corpus,
            args.base_seed,
        );
        if let Some(d) = run_layer_with_corpus(
            *layer,
            args.base_seed,
            args.cases,
            args.max_ops,
            args.mutation,
            args.corpus,
        ) {
            print!("{}", d.report());
            report_corpus(args.corpus);
            failed = Some(d);
            break;
        }
    }
    match failed {
        Some(_) => std::process::exit(1),
        None => println!("slimcheck: all layers agree with their models"),
    }
}

/// The divergence report prints a bare replay command; when a
/// seed-corpus prefix was active the replay must repeat it.
fn report_corpus(corpus: usize) {
    if corpus > 0 {
        println!("  note: sweep ran with --corpus {corpus}; add it to the replay command");
    }
}

/// Run every seeded bug against the layer that exercises it; the
/// harness must catch each one and shrink it to a near-trivial
/// sequence. Exit 0 only if all die.
fn mutation_mode(args: &Args) -> i32 {
    let mut surviving = 0;
    for mutation in Mutation::ALL {
        match run_layer_with_corpus(
            mutation.layer(),
            args.base_seed,
            args.cases,
            args.max_ops,
            mutation,
            args.corpus,
        ) {
            Some(d) if d.minimal_len <= mutation.shrink_bound() => {
                println!(
                    "mutant `{}`: KILLED in case {} — shrunk {} -> {} ops \
                     (seed 0x{:016x})\n  failure: {}\n  minimal: {}",
                    mutation.name(),
                    d.case,
                    d.original_len,
                    d.minimal_len,
                    d.seed,
                    d.message,
                    d.minimal_debug,
                );
            }
            Some(d) => {
                println!(
                    "mutant `{}`: detected but NOT shrunk (minimal {} ops > bound {})\n{}",
                    mutation.name(),
                    d.minimal_len,
                    mutation.shrink_bound(),
                    d.report(),
                );
                surviving += 1;
            }
            None => {
                println!("mutant `{}`: SURVIVED the sweep — harness gap", mutation.name());
                surviving += 1;
            }
        }
    }
    if surviving == 0 {
        println!("slimcheck: all {} seeded mutants killed", Mutation::ALL.len());
        0
    } else {
        println!("slimcheck: {surviving} mutant(s) escaped");
        1
    }
}
