//! Seed-corpus prefixes: translate slimgen's layer-agnostic
//! [`SeedOp`](slimgen::seed_ops::SeedOp) stream into each layer's op
//! alphabet.
//!
//! Differential cases that start from an empty world spend most of
//! their op budget rebuilding boring structure before anything
//! interesting can happen. With `--corpus N` the sweep prepends `N`
//! translated seed ops *inside the check closure*: the prefix is
//! derived from the case seed (so a printed `SLIMCHECK_SEED` still
//! replays the exact case), but it is not part of the shrink space —
//! the shrinker only ever minimizes the random suffix.

use crate::ops::{
    ConjOp, DmiOp, PadOp, PadServeOp, StoreOp, WalOp, ANNOTATIONS, NAMES, OBJECTS, PROPS, SUBJECTS,
};
use slimgen::seed_ops::{seed_ops, SeedOp};

/// Reduce a slimgen selector to a pool/index-range value.
fn sel(v: u64, m: usize) -> usize {
    (v % m.max(1) as u64) as usize
}

/// Live-object index: the layers resolve these modulo the live count,
/// matching the generated strategies' `0..16` habit.
fn idx(v: u64) -> usize {
    sel(v, 16)
}

/// Structure prefix for the store layer: growth-biased inserts with
/// checkpoints, so undo and queries in the suffix act on a populated
/// store.
pub fn store_prefix(seed: u64, n: usize) -> Vec<StoreOp> {
    seed_ops(seed, n)
        .into_iter()
        .map(|op| match op {
            SeedOp::CreateBundle { parent } => StoreOp::Insert {
                s: sel(parent, SUBJECTS.len()),
                p: sel(parent >> 8, PROPS.len()),
                o: sel(parent >> 16, OBJECTS.len()),
                res: parent & 1 == 0,
            },
            SeedOp::CreateScrap { bundle, mark } => StoreOp::Insert {
                s: sel(bundle, SUBJECTS.len()),
                p: sel(mark, PROPS.len()),
                o: sel(mark >> 8, OBJECTS.len()),
                res: mark & 1 == 0,
            },
            SeedOp::Annotate { scrap, note } => StoreOp::SetUnique {
                s: sel(scrap, SUBJECTS.len()),
                p: sel(note, PROPS.len()),
                o: sel(note >> 8, OBJECTS.len()),
                res: note & 1 == 0,
            },
            SeedOp::Link { from, to } => StoreOp::Insert {
                s: sel(from, SUBJECTS.len()),
                p: sel(to, PROPS.len()),
                o: sel(to >> 8, OBJECTS.len()),
                res: to & 1 == 0,
            },
            SeedOp::Checkpoint => StoreOp::Checkpoint,
        })
        .collect()
}

/// Structure prefix for the conjunctive layer: growth-biased inserts
/// over the shared pools, with slimgen checkpoints doubling as query
/// probes so the suffix's joins run against corpus-built structure.
/// Deterministic per seed, so `SLIMCHECK_SEED` replays hold.
pub fn conj_prefix(seed: u64, n: usize) -> Vec<ConjOp> {
    seed_ops(seed, n)
        .into_iter()
        .map(|op| match op {
            SeedOp::CreateBundle { parent } => ConjOp::Insert {
                s: sel(parent, SUBJECTS.len()),
                p: sel(parent >> 8, PROPS.len()),
                o: sel(parent >> 16, OBJECTS.len()),
                res: parent & 1 == 0,
            },
            SeedOp::CreateScrap { bundle, mark } => ConjOp::Insert {
                s: sel(bundle, SUBJECTS.len()),
                p: sel(mark, PROPS.len()),
                o: sel(mark >> 8, OBJECTS.len()),
                res: mark & 1 == 0,
            },
            SeedOp::Annotate { scrap, note } => ConjOp::Insert {
                s: sel(scrap, SUBJECTS.len()),
                p: sel(note, PROPS.len()),
                o: sel(note >> 8, OBJECTS.len()),
                res: false,
            },
            SeedOp::Link { from, to } => ConjOp::Insert {
                s: sel(from, SUBJECTS.len()),
                p: sel(to, PROPS.len()),
                o: sel(to >> 8, OBJECTS.len()),
                res: to & 1 == 0,
            },
            SeedOp::Checkpoint => ConjOp::Query { shape: 0, p0: 0, p1: 1, c: 0 },
        })
        .collect()
}

/// Structure prefix for the WAL layer: the same inserts, with slimgen
/// checkpoints doubling as commit boundaries so the suffix's crashes
/// and reopens have acknowledged history behind them. Links seed the
/// *sibling* session, and every other checkpoint commits both sessions
/// back to back, so two-session suffix schedules (commit/commit,
/// commit/crash, commit/compact) start from populated logs on each
/// side. Deterministic per seed, so `SLIMCHECK_SEED` replays hold.
pub fn wal_prefix(seed: u64, n: usize) -> Vec<WalOp> {
    let mut commits = 0u64;
    seed_ops(seed, n)
        .into_iter()
        .flat_map(|op| match op {
            SeedOp::CreateBundle { parent } => vec![WalOp::Insert {
                s: sel(parent, SUBJECTS.len()),
                p: sel(parent >> 8, PROPS.len()),
                o: sel(parent >> 16, OBJECTS.len()),
                res: parent & 1 == 0,
            }],
            SeedOp::CreateScrap { bundle, mark } => vec![WalOp::Insert {
                s: sel(bundle, SUBJECTS.len()),
                p: sel(mark, PROPS.len()),
                o: sel(mark >> 8, OBJECTS.len()),
                res: mark & 1 == 0,
            }],
            SeedOp::Annotate { scrap, note } => vec![WalOp::SetUnique {
                s: sel(scrap, SUBJECTS.len()),
                p: sel(note, PROPS.len()),
                o: sel(note >> 8, OBJECTS.len()),
                res: note & 1 == 0,
            }],
            SeedOp::Link { from, to } => vec![WalOp::SiblingInsert {
                s: sel(from, SUBJECTS.len()),
                p: sel(to, PROPS.len()),
                o: sel(to >> 8, OBJECTS.len()),
                res: to & 1 == 0,
            }],
            SeedOp::Checkpoint => {
                commits += 1;
                if commits.is_multiple_of(2) {
                    vec![WalOp::Commit, WalOp::SiblingCommit]
                } else {
                    vec![WalOp::Commit]
                }
            }
        })
        .collect()
}

/// Structure prefix for the DMI layer: bundles (immediately nested, so
/// deep trees appear), scraps, annotations and links.
pub fn dmi_prefix(seed: u64, n: usize) -> Vec<DmiOp> {
    seed_ops(seed, n)
        .into_iter()
        .flat_map(|op| match op {
            SeedOp::CreateBundle { parent } => vec![
                DmiOp::CreateBundle {
                    name: sel(parent, NAMES.len()),
                    pos: ((parent % 200) as i64, ((parent >> 8) % 200) as i64),
                    w: 40,
                    h: 30,
                },
                DmiOp::NestBundle { parent: idx(parent), child: idx(parent >> 16) },
            ],
            SeedOp::CreateScrap { bundle, mark } => vec![
                DmiOp::CreateScrap {
                    name: sel(bundle, NAMES.len()),
                    pos: ((bundle % 200) as i64, (mark % 200) as i64),
                    mark: idx(mark),
                },
                DmiOp::AddScrap { bundle: idx(bundle), scrap: idx(mark >> 8) },
            ],
            SeedOp::Annotate { scrap, note } => {
                vec![DmiOp::Annotate { scrap: idx(scrap), text: sel(note, ANNOTATIONS.len()) }]
            }
            SeedOp::Link { from, to } => vec![DmiOp::Link { from: idx(from), to: idx(to) }],
            SeedOp::Checkpoint => vec![DmiOp::Checkpoint],
        })
        .collect()
}

/// Structure prefix for the pad layer. `Link` has no pad-session verb;
/// it becomes another placement so the prefix keeps its density.
pub fn pad_prefix(seed: u64, n: usize) -> Vec<PadOp> {
    seed_ops(seed, n)
        .into_iter()
        .map(|op| match op {
            SeedOp::CreateBundle { parent } => PadOp::CreateBundle {
                name: sel(parent, NAMES.len()),
                pos: ((parent % 200) as i64, ((parent >> 8) % 200) as i64),
                parent: Some(idx(parent >> 16)),
            },
            SeedOp::CreateScrap { bundle, mark } => PadOp::PlaceMark {
                label: sel(mark, NAMES.len()),
                pos: ((bundle % 200) as i64, (mark % 200) as i64),
                bundle: Some(idx(bundle)),
            },
            SeedOp::Annotate { scrap, note } => {
                PadOp::Annotate { scrap: idx(scrap), text: sel(note, ANNOTATIONS.len()) }
            }
            SeedOp::Link { from, to } => PadOp::PlaceMark {
                label: sel(from, NAMES.len()),
                pos: ((from % 200) as i64, (to % 200) as i64),
                bundle: Some(idx(to)),
            },
            SeedOp::Checkpoint => PadOp::BeginOp,
        })
        .collect()
}

/// Structure prefix for the pad-service layer: bundles and placed
/// marks through the main session, with slimgen checkpoints doubling as
/// explicit commits. `Link` becomes a *sibling-session* placement, so
/// two-session suffix schedules (sibling undo, sibling crash commits)
/// start from state both sessions helped build. Deterministic per seed,
/// so `SLIMCHECK_SEED` replays hold.
pub fn padserve_prefix(seed: u64, n: usize) -> Vec<PadServeOp> {
    seed_ops(seed, n)
        .into_iter()
        .map(|op| match op {
            SeedOp::CreateBundle { parent } => PadServeOp::Create {
                name: sel(parent, NAMES.len()),
                pos: ((parent % 200) as i64, ((parent >> 8) % 200) as i64),
                parent: Some(idx(parent >> 16)),
            },
            SeedOp::CreateScrap { bundle, mark } => PadServeOp::Mark {
                doc: sel(mark, 8),
                paragraph: sel(mark >> 8, 8),
                label: sel(bundle >> 8, NAMES.len()),
                pos: ((bundle % 200) as i64, (mark % 200) as i64),
                bundle: Some(idx(bundle)),
            },
            SeedOp::Annotate { scrap, note } => {
                PadServeOp::Annotate { scrap: idx(scrap), text: sel(note, ANNOTATIONS.len()) }
            }
            SeedOp::Link { from, to } => PadServeOp::SiblingPadOp {
                mark: from & 1 == 0,
                name: sel(from, NAMES.len()),
                pos: ((from % 200) as i64, (to % 200) as i64),
                target: Some(idx(to)),
            },
            SeedOp::Checkpoint => PadServeOp::Commit,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_deterministic_per_seed() {
        for n in [0, 1, 32] {
            assert_eq!(format!("{:?}", dmi_prefix(5, n)), format!("{:?}", dmi_prefix(5, n)));
            assert_eq!(format!("{:?}", pad_prefix(5, n)), format!("{:?}", pad_prefix(5, n)));
            assert_eq!(format!("{:?}", store_prefix(5, n)), format!("{:?}", store_prefix(5, n)));
            assert_eq!(format!("{:?}", conj_prefix(5, n)), format!("{:?}", conj_prefix(5, n)));
            assert_eq!(format!("{:?}", wal_prefix(5, n)), format!("{:?}", wal_prefix(5, n)));
            assert_eq!(
                format!("{:?}", padserve_prefix(5, n)),
                format!("{:?}", padserve_prefix(5, n))
            );
        }
        assert_ne!(format!("{:?}", dmi_prefix(5, 32)), format!("{:?}", dmi_prefix(6, 32)));
    }

    #[test]
    fn wal_prefix_commits_at_checkpoints() {
        let ops = wal_prefix(9, 256);
        assert!(ops.iter().any(|op| matches!(op, WalOp::Commit)));
        assert!(ops.iter().any(|op| matches!(op, WalOp::Insert { .. })));
        assert!(ops.iter().any(|op| matches!(op, WalOp::SiblingInsert { .. })));
        assert!(ops.iter().any(|op| matches!(op, WalOp::SiblingCommit)));
    }

    #[test]
    fn padserve_prefix_routes_links_to_the_sibling() {
        let ops = padserve_prefix(9, 256);
        assert!(ops.iter().any(|op| matches!(op, PadServeOp::Create { .. })));
        assert!(ops.iter().any(|op| matches!(op, PadServeOp::Mark { .. })));
        assert!(ops.iter().any(|op| matches!(op, PadServeOp::SiblingPadOp { .. })));
        assert!(ops.iter().any(|op| matches!(op, PadServeOp::Commit)));
    }
}
