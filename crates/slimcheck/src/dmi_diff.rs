//! DMI-layer differential check: one op sequence driven through the real
//! [`SlimPadDmi`] and a typed reference model ([`RefWorld`]) that tracks
//! the Bundle-Scrap structure in plain Rust collections. After every op
//! the model predicts whether the DMI accepts or rejects it, and every
//! typed snapshot the DMI can produce is compared against the model —
//! plus a direct triple-pattern readback, mark-manager resolution of
//! every mark id, checkpoint/rollback against cloned model snapshots,
//! and a canonical save/load round-trip at the end.

use crate::ops::{DmiOp, ANNOTATIONS, NAMES};
use basedocs::{textdoc::TextTarget, Span, TextAddress};
use marks::{MarkAddress, MarkManager};
use slimio::MemVfs;
use slimstore::{BundleHandle, MarkHandleHandle, PadHandle, ScrapHandle, SlimPadDmi};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use trim::{TriplePattern, Value};

/// Run `ops` through the DMI world; panics on any divergence.
pub fn check(ops: &[DmiOp]) {
    let mut world = DmiWorld::new();
    for op in ops {
        world.apply(op);
        world.verify();
    }
    world.final_round_trip();
}

/// Typed reference model. Objects are addressed by their index in the
/// creation-ordered vectors; deleted objects become `None` (their
/// handles must dangle in the real DMI too).
#[derive(Debug, Clone, Default)]
struct RefWorld {
    bundles: Vec<Option<RefBundle>>,
    scraps: Vec<Option<RefScrap>>,
    pads: Vec<Option<RefPad>>,
}

#[derive(Debug, Clone)]
struct RefBundle {
    name: String,
    pos: (i64, i64),
    width: i64,
    height: i64,
    scraps: BTreeSet<usize>,
    nested: BTreeSet<usize>,
    parent: Option<usize>,
}

#[derive(Debug, Clone)]
struct RefScrap {
    name: String,
    pos: (i64, i64),
    /// Mark handles on this scrap, with the mark id each carries. The
    /// handles are real-system identifiers; the *relationships* are the
    /// model's.
    marks: BTreeMap<MarkHandleHandle, String>,
    parent: Option<usize>,
    links: BTreeSet<usize>,
    annotations: BTreeSet<String>,
}

#[derive(Debug, Clone)]
struct RefPad {
    name: String,
    root: Option<usize>,
}

/// Everything `Rollback` must restore (the mark manager is append-only
/// and deliberately excluded, matching `PadSession` semantics).
#[derive(Debug, Clone)]
struct Snapshot {
    model: RefWorld,
    bundle_handles: Vec<BundleHandle>,
    scrap_handles: Vec<ScrapHandle>,
    pad_handles: Vec<PadHandle>,
}

struct DmiWorld {
    dmi: SlimPadDmi,
    model: RefWorld,
    bundle_handles: Vec<BundleHandle>,
    scrap_handles: Vec<ScrapHandle>,
    pad_handles: Vec<PadHandle>,
    marks: MarkManager,
    mark_ids: Vec<String>,
    checkpoints: Vec<(trim::Revision, Snapshot)>,
}

impl DmiWorld {
    fn new() -> Self {
        DmiWorld {
            dmi: SlimPadDmi::new(),
            model: RefWorld::default(),
            bundle_handles: Vec::new(),
            scrap_handles: Vec::new(),
            pad_handles: Vec::new(),
            marks: MarkManager::new(),
            mark_ids: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    // ---- index resolution --------------------------------------------------

    fn live_bundles(&self) -> Vec<usize> {
        self.model.bundles.iter().enumerate().filter_map(|(i, b)| b.as_ref().map(|_| i)).collect()
    }

    fn live_scraps(&self) -> Vec<usize> {
        self.model.scraps.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| i)).collect()
    }

    fn live_pads(&self) -> Vec<usize> {
        self.model.pads.iter().enumerate().filter_map(|(i, p)| p.as_ref().map(|_| i)).collect()
    }

    /// Mint marks through the real mark manager lazily; ops reference
    /// them by index so sequences stay replayable.
    fn ensure_mark(&mut self, raw: usize) -> String {
        if self.mark_ids.is_empty() || (raw.is_multiple_of(3) && self.mark_ids.len() < 8) {
            let address = MarkAddress::Text(TextAddress {
                file_name: format!("doc-{}.txt", self.mark_ids.len()),
                target: TextTarget::Span { paragraph: raw % 5, span: Span::new(0, 5) },
            });
            let id = self.marks.create_mark_at(address).expect("minting a text mark cannot fail");
            self.mark_ids.push(id);
        }
        self.mark_ids[raw % self.mark_ids.len()].clone()
    }

    /// `parent` is a nested descendant of `child` (nesting would cycle).
    fn is_descendant(&self, ancestor: usize, target: usize) -> bool {
        let mut stack = vec![ancestor];
        let mut seen = BTreeSet::new();
        while let Some(b) = stack.pop() {
            if b == target {
                return true;
            }
            if seen.insert(b) {
                if let Some(Some(bundle)) = self.model.bundles.get(b) {
                    stack.extend(bundle.nested.iter().copied());
                }
            }
        }
        false
    }

    // ---- op application ----------------------------------------------------

    fn apply(&mut self, op: &DmiOp) {
        match *op {
            DmiOp::CreateBundle { name, pos, w, h } => {
                let handle = self.dmi.create_bundle(NAMES[name], pos, w, h);
                self.bundle_handles.push(handle);
                self.model.bundles.push(Some(RefBundle {
                    name: NAMES[name].to_string(),
                    pos,
                    width: w,
                    height: h,
                    scraps: BTreeSet::new(),
                    nested: BTreeSet::new(),
                    parent: None,
                }));
            }
            DmiOp::CreatePad { name, root } => {
                let root = pick(&self.live_bundles(), root);
                let root_handle = root.map(|i| self.bundle_handles[i]);
                let handle = self
                    .dmi
                    .create_slim_pad(NAMES[name], root_handle)
                    .expect("pad creation over live bundles must succeed");
                self.pad_handles.push(handle);
                self.model.pads.push(Some(RefPad { name: NAMES[name].to_string(), root }));
            }
            DmiOp::CreateScrap { name, pos, mark } => {
                let mark_id = self.ensure_mark(mark);
                let handle = self
                    .dmi
                    .create_scrap(NAMES[name], pos, &mark_id)
                    .expect("scrap creation must succeed");
                let minted = self.dmi.scrap(handle).expect("fresh scrap must snapshot").marks;
                assert_eq!(minted.len(), 1, "fresh scrap must carry exactly one mark");
                self.scrap_handles.push(handle);
                let mut marks = BTreeMap::new();
                marks.insert(minted[0], mark_id);
                self.model.scraps.push(Some(RefScrap {
                    name: NAMES[name].to_string(),
                    pos,
                    marks,
                    parent: None,
                    links: BTreeSet::new(),
                    annotations: BTreeSet::new(),
                }));
            }
            DmiOp::NestBundle { parent, child } => {
                let live = self.live_bundles();
                let (Some(p), Some(c)) = (pick(&live, Some(parent)), pick(&live, Some(child)))
                else {
                    return;
                };
                let expect_ok = p != c
                    && self.model.bundles[c].as_ref().unwrap().parent.is_none()
                    && !self.is_descendant(c, p);
                let result =
                    self.dmi.add_nested_bundle(self.bundle_handles[p], self.bundle_handles[c]);
                assert_eq!(result.is_ok(), expect_ok, "nest prediction diverged on {op:?}");
                if expect_ok {
                    self.model.bundles[p].as_mut().unwrap().nested.insert(c);
                    self.model.bundles[c].as_mut().unwrap().parent = Some(p);
                }
            }
            DmiOp::UnnestBundle { parent, child } => {
                let live = self.live_bundles();
                let (Some(p), Some(c)) = (pick(&live, Some(parent)), pick(&live, Some(child)))
                else {
                    return;
                };
                let expect_ok = self.model.bundles[p].as_ref().unwrap().nested.contains(&c);
                let result =
                    self.dmi.remove_nested_bundle(self.bundle_handles[p], self.bundle_handles[c]);
                assert_eq!(result.is_ok(), expect_ok, "unnest prediction diverged on {op:?}");
                if expect_ok {
                    self.model.bundles[p].as_mut().unwrap().nested.remove(&c);
                    self.model.bundles[c].as_mut().unwrap().parent = None;
                }
            }
            DmiOp::AddScrap { bundle, scrap } => {
                let (Some(b), Some(s)) =
                    (pick(&self.live_bundles(), Some(bundle)), pick(&self.live_scraps(), Some(scrap)))
                else {
                    return;
                };
                let expect_ok = self.model.scraps[s].as_ref().unwrap().parent.is_none();
                let result = self.dmi.add_scrap(self.bundle_handles[b], self.scrap_handles[s]);
                assert_eq!(result.is_ok(), expect_ok, "add_scrap prediction diverged on {op:?}");
                if expect_ok {
                    self.model.bundles[b].as_mut().unwrap().scraps.insert(s);
                    self.model.scraps[s].as_mut().unwrap().parent = Some(b);
                }
            }
            DmiOp::RemoveScrap { bundle, scrap } => {
                let (Some(b), Some(s)) =
                    (pick(&self.live_bundles(), Some(bundle)), pick(&self.live_scraps(), Some(scrap)))
                else {
                    return;
                };
                let expect_ok = self.model.bundles[b].as_ref().unwrap().scraps.contains(&s);
                let result = self.dmi.remove_scrap(self.bundle_handles[b], self.scrap_handles[s]);
                assert_eq!(result.is_ok(), expect_ok, "remove_scrap prediction diverged on {op:?}");
                if expect_ok {
                    self.model.bundles[b].as_mut().unwrap().scraps.remove(&s);
                    self.model.scraps[s].as_mut().unwrap().parent = None;
                }
            }
            DmiOp::AddMark { scrap, mark } => {
                let Some(s) = pick(&self.live_scraps(), Some(scrap)) else {
                    return;
                };
                let mark_id = self.ensure_mark(mark);
                let handle = self.dmi.create_mark_handle(&mark_id);
                self.dmi
                    .add_scrap_mark(self.scrap_handles[s], handle)
                    .expect("attaching a fresh mark handle must succeed");
                self.model.scraps[s].as_mut().unwrap().marks.insert(handle, mark_id);
            }
            DmiOp::RemoveMark { scrap, pick: which } => {
                let Some(s) = pick(&self.live_scraps(), Some(scrap)) else {
                    return;
                };
                let marks = self.model.scraps[s].as_ref().unwrap().marks.clone();
                let handles: Vec<MarkHandleHandle> = marks.keys().copied().collect();
                let target = handles[which % handles.len()];
                let expect_ok = handles.len() > 1;
                let result = self.dmi.remove_scrap_mark(self.scrap_handles[s], target);
                assert_eq!(
                    result.is_ok(),
                    expect_ok,
                    "remove_scrap_mark prediction diverged on {op:?}"
                );
                if expect_ok {
                    self.model.scraps[s].as_mut().unwrap().marks.remove(&target);
                }
            }
            DmiOp::Annotate { scrap, text } => {
                let Some(s) = pick(&self.live_scraps(), Some(scrap)) else {
                    return;
                };
                self.dmi
                    .add_annotation(self.scrap_handles[s], ANNOTATIONS[text])
                    .expect("annotating a live scrap must succeed");
                self.model.scraps[s].as_mut().unwrap().annotations.insert(ANNOTATIONS[text].into());
            }
            DmiOp::Unannotate { scrap, text } => {
                let Some(s) = pick(&self.live_scraps(), Some(scrap)) else {
                    return;
                };
                let expect_ok =
                    self.model.scraps[s].as_ref().unwrap().annotations.contains(ANNOTATIONS[text]);
                let result = self.dmi.remove_annotation(self.scrap_handles[s], ANNOTATIONS[text]);
                assert_eq!(result.is_ok(), expect_ok, "unannotate prediction diverged on {op:?}");
                if expect_ok {
                    self.model.scraps[s].as_mut().unwrap().annotations.remove(ANNOTATIONS[text]);
                }
            }
            DmiOp::Link { from, to } => {
                let live = self.live_scraps();
                let (Some(f), Some(t)) = (pick(&live, Some(from)), pick(&live, Some(to))) else {
                    return;
                };
                let expect_ok = f != t;
                let result = self.dmi.link_scraps(self.scrap_handles[f], self.scrap_handles[t]);
                assert_eq!(result.is_ok(), expect_ok, "link prediction diverged on {op:?}");
                if expect_ok {
                    self.model.scraps[f].as_mut().unwrap().links.insert(t);
                }
            }
            DmiOp::Unlink { from, to } => {
                let live = self.live_scraps();
                let (Some(f), Some(t)) = (pick(&live, Some(from)), pick(&live, Some(to))) else {
                    return;
                };
                let expect_ok = self.model.scraps[f].as_ref().unwrap().links.contains(&t);
                let result = self.dmi.unlink_scraps(self.scrap_handles[f], self.scrap_handles[t]);
                assert_eq!(result.is_ok(), expect_ok, "unlink prediction diverged on {op:?}");
                if expect_ok {
                    self.model.scraps[f].as_mut().unwrap().links.remove(&t);
                }
            }
            DmiOp::UpdateBundlePos { bundle, pos } => {
                let Some(b) = pick(&self.live_bundles(), Some(bundle)) else {
                    return;
                };
                self.dmi
                    .update_bundle_pos(self.bundle_handles[b], pos)
                    .expect("moving a live bundle must succeed");
                self.model.bundles[b].as_mut().unwrap().pos = pos;
            }
            DmiOp::UpdateScrapName { scrap, name } => {
                let Some(s) = pick(&self.live_scraps(), Some(scrap)) else {
                    return;
                };
                self.dmi
                    .update_scrap_name(self.scrap_handles[s], NAMES[name])
                    .expect("renaming a live scrap must succeed");
                self.model.scraps[s].as_mut().unwrap().name = NAMES[name].to_string();
            }
            DmiOp::UpdateRootBundle { pad, root } => {
                let Some(p) = pick(&self.live_pads(), Some(pad)) else {
                    return;
                };
                let root = pick(&self.live_bundles(), root);
                self.dmi
                    .update_root_bundle(self.pad_handles[p], root.map(|i| self.bundle_handles[i]))
                    .expect("re-rooting a live pad must succeed");
                self.model.pads[p].as_mut().unwrap().root = root;
            }
            DmiOp::DeleteBundle { bundle } => {
                let Some(b) = pick(&self.live_bundles(), Some(bundle)) else {
                    return;
                };
                self.dmi
                    .delete_bundle(self.bundle_handles[b])
                    .expect("deleting a live bundle must succeed");
                self.model_delete_bundle(b);
            }
            DmiOp::DeleteScrap { scrap } => {
                let Some(s) = pick(&self.live_scraps(), Some(scrap)) else {
                    return;
                };
                self.dmi
                    .delete_scrap(self.scrap_handles[s])
                    .expect("deleting a live scrap must succeed");
                self.model_delete_scrap(s);
            }
            DmiOp::DeletePad { pad } => {
                let Some(p) = pick(&self.live_pads(), Some(pad)) else {
                    return;
                };
                self.dmi.delete_slim_pad(self.pad_handles[p]).expect("deleting a live pad");
                self.model.pads[p] = None;
            }
            DmiOp::Checkpoint => {
                let snapshot = Snapshot {
                    model: self.model.clone(),
                    bundle_handles: self.bundle_handles.clone(),
                    scrap_handles: self.scrap_handles.clone(),
                    pad_handles: self.pad_handles.clone(),
                };
                self.checkpoints.push((self.dmi.checkpoint(), snapshot));
            }
            DmiOp::Rollback { back } => {
                if self.checkpoints.is_empty() {
                    return;
                }
                let idx = self.checkpoints.len() - 1 - (back % self.checkpoints.len());
                let (rev, snapshot) = self.checkpoints[idx].clone();
                self.dmi.rollback(rev).expect("recorded checkpoint must roll back");
                self.model = snapshot.model;
                self.bundle_handles = snapshot.bundle_handles;
                self.scrap_handles = snapshot.scrap_handles;
                self.pad_handles = snapshot.pad_handles;
                self.checkpoints.truncate(idx + 1);
            }
        }
    }

    /// Model mirror of the DMI's recursive bundle delete.
    fn model_delete_bundle(&mut self, b: usize) {
        // Subtree bundles via nested closure (including b itself).
        let mut subtree = BTreeSet::new();
        let mut stack = vec![b];
        while let Some(x) = stack.pop() {
            if subtree.insert(x) {
                if let Some(Some(bundle)) = self.model.bundles.get(x) {
                    stack.extend(bundle.nested.iter().copied());
                }
            }
        }
        // Scraps contained anywhere in the subtree die with it.
        let doomed: Vec<usize> = subtree
            .iter()
            .flat_map(|x| self.model.bundles[*x].as_ref().unwrap().scraps.iter().copied())
            .collect();
        for s in doomed {
            self.model_delete_scrap(s);
        }
        // Detach from a surviving parent, clear pad roots, then delete.
        for x in &subtree {
            if let Some(parent) = self.model.bundles[*x].as_ref().unwrap().parent {
                if !subtree.contains(&parent) {
                    self.model.bundles[parent].as_mut().unwrap().nested.remove(x);
                }
            }
        }
        for pad in self.model.pads.iter_mut().flatten() {
            if pad.root.is_some_and(|r| subtree.contains(&r)) {
                pad.root = None;
            }
        }
        for x in subtree {
            self.model.bundles[x] = None;
        }
    }

    fn model_delete_scrap(&mut self, s: usize) {
        if let Some(parent) = self.model.scraps[s].as_ref().and_then(|sc| sc.parent) {
            self.model.bundles[parent].as_mut().unwrap().scraps.remove(&s);
        }
        for other in self.model.scraps.iter_mut().flatten() {
            other.links.remove(&s);
        }
        self.model.scraps[s] = None;
    }

    // ---- verification ------------------------------------------------------

    fn verify(&self) {
        // Global object censuses (the DMI enumerates by conformsTo).
        let live_b: BTreeSet<BundleHandle> =
            self.live_bundles().iter().map(|i| self.bundle_handles[*i]).collect();
        let live_s: BTreeSet<ScrapHandle> =
            self.live_scraps().iter().map(|i| self.scrap_handles[*i]).collect();
        let live_p: BTreeSet<PadHandle> =
            self.live_pads().iter().map(|i| self.pad_handles[*i]).collect();
        assert_eq!(
            self.dmi.bundles().into_iter().collect::<BTreeSet<_>>(),
            live_b,
            "bundle census diverged"
        );
        assert_eq!(
            self.dmi.all_scraps().into_iter().collect::<BTreeSet<_>>(),
            live_s,
            "scrap census diverged"
        );
        assert_eq!(
            self.dmi.pads().into_iter().collect::<BTreeSet<_>>(),
            live_p,
            "pad census diverged"
        );

        for i in self.live_pads() {
            let data = self.dmi.pad(self.pad_handles[i]).expect("live pad must snapshot");
            let model = self.model.pads[i].as_ref().unwrap();
            assert_eq!(data.name, model.name, "pad name diverged");
            assert_eq!(
                data.root_bundle,
                model.root.map(|r| self.bundle_handles[r]),
                "pad root diverged"
            );
        }
        for i in self.live_bundles() {
            let data = self.dmi.bundle(self.bundle_handles[i]).expect("live bundle must snapshot");
            let model = self.model.bundles[i].as_ref().unwrap();
            assert_eq!(data.name, model.name, "bundle name diverged");
            assert_eq!(data.pos, model.pos, "bundle pos diverged");
            assert_eq!((data.width, data.height), (model.width, model.height), "bundle size");
            let scraps: BTreeSet<ScrapHandle> = data.scraps.into_iter().collect();
            assert_eq!(
                scraps,
                model.scraps.iter().map(|s| self.scrap_handles[*s]).collect(),
                "bundle contents diverged"
            );
            let nested: BTreeSet<BundleHandle> = data.nested.into_iter().collect();
            assert_eq!(
                nested,
                model.nested.iter().map(|b| self.bundle_handles[*b]).collect(),
                "bundle nesting diverged"
            );
        }
        for i in self.live_scraps() {
            let data = self.dmi.scrap(self.scrap_handles[i]).expect("live scrap must snapshot");
            let model = self.model.scraps[i].as_ref().unwrap();
            assert_eq!(data.name, model.name, "scrap name diverged");
            assert_eq!(data.pos, model.pos, "scrap pos diverged");
            let marks: BTreeSet<MarkHandleHandle> = data.marks.iter().copied().collect();
            assert_eq!(
                marks,
                model.marks.keys().copied().collect(),
                "scrap mark handles diverged"
            );
            for (handle, mark_id) in &model.marks {
                let data = self.dmi.mark_handle(*handle).expect("live mark handle must snapshot");
                assert_eq!(&data.mark_id, mark_id, "mark id diverged");
                // The mark layer must resolve every id the DMI carries.
                assert!(
                    self.marks.get(mark_id).is_ok(),
                    "DMI carries mark id unknown to the mark manager"
                );
            }
            assert_eq!(
                self.dmi.annotations(self.scrap_handles[i]).expect("live scrap annotations"),
                model.annotations.iter().cloned().collect::<Vec<_>>(),
                "annotations diverged"
            );
            let links: BTreeSet<ScrapHandle> = self
                .dmi
                .scrap_links(self.scrap_handles[i])
                .expect("live scrap links")
                .into_iter()
                .collect();
            assert_eq!(
                links,
                model.links.iter().map(|l| self.scrap_handles[*l]).collect(),
                "scrap links diverged"
            );
        }

        // Dangling handles must report NotFound, not stale data.
        for (i, entry) in self.model.bundles.iter().enumerate() {
            if entry.is_none() {
                assert!(
                    self.dmi.bundle(self.bundle_handles[i]).is_err(),
                    "deleted bundle handle still resolves"
                );
            }
        }
        for (i, entry) in self.model.scraps.iter().enumerate() {
            if entry.is_none() {
                assert!(
                    self.dmi.scrap(self.scrap_handles[i]).is_err(),
                    "deleted scrap handle still resolves"
                );
            }
        }

        // Triple-pattern readback: the generic layer's edge counts must
        // equal the typed model's (paper Figures 9-10: the DMI keeps the
        // triple representation consistent with the application data).
        self.verify_edge_count("bundleContent", self.model_edge_count(|b| b.scraps.len()));
        self.verify_edge_count("nestedBundle", self.model_edge_count(|b| b.nested.len()));
        let scrap_marks: usize =
            self.live_scraps().iter().map(|s| self.model.scraps[*s].as_ref().unwrap().marks.len()).sum();
        self.verify_edge_count("scrapMark", scrap_marks);
        let scrap_links: usize =
            self.live_scraps().iter().map(|s| self.model.scraps[*s].as_ref().unwrap().links.len()).sum();
        self.verify_edge_count("scrapLink", scrap_links);
    }

    fn model_edge_count(&self, f: impl Fn(&RefBundle) -> usize) -> usize {
        self.live_bundles().iter().map(|b| f(self.model.bundles[*b].as_ref().unwrap())).sum()
    }

    fn verify_edge_count(&self, property: &str, expected: usize) {
        let count = match self.dmi.store().find_atom(property) {
            Some(p) => self.dmi.store().count(&TriplePattern::default().with_property(p)),
            None => 0,
        };
        assert_eq!(count, expected, "{property} triple count diverged from typed model");
    }

    /// End-of-sequence checks: conformance plus canonical persistence.
    fn final_round_trip(&self) {
        let report = self.dmi.check();
        assert!(report.is_conformant(), "conformance violations: {:?}", report.violations);

        let xml = self.dmi.save_xml();
        let (reloaded, pads) = SlimPadDmi::load_xml(&xml).expect("canonical XML must load");
        assert_eq!(reloaded.save_xml(), xml, "canonical XML round-trip is not byte-identical");
        assert_eq!(pads.len(), self.live_pads().len(), "pad census changed across round-trip");

        let disk = MemVfs::new();
        let path = Path::new("slimcheck/dmi.xml");
        self.dmi.save_to(&disk, path).expect("MemVfs save cannot fail");
        let (from_disk, _) = SlimPadDmi::load_from(&disk, path).expect("saved DMI must load");
        assert_eq!(from_disk.save_xml(), xml, "durable round-trip diverged from canonical XML");
        let recovered = SlimPadDmi::load_salvage_from(&disk, path).expect("fresh save must salvage");
        assert!(recovered.is_clean(), "fresh DMI save salvage reported damage");
        assert_eq!(recovered.value.0.save_xml(), xml, "salvage round-trip diverged");

        // Every mark id referenced anywhere in the store resolves.
        let store = self.dmi.store();
        if let Some(p) = store.find_atom("markId") {
            for t in store.select(&TriplePattern::default().with_property(p)) {
                if let Value::Literal(_) = t.object {
                    let id = store.value_text(t.object).to_string();
                    assert!(self.marks.get(&id).is_ok(), "stored mark id {id:?} does not resolve");
                }
            }
        }
    }
}

/// Resolve a raw index against the live-object list: `None` stays `None`,
/// `Some(raw)` picks `live[raw % live.len()]`, and an empty list yields
/// `None` (callers treat that as a skip).
fn pick(live: &[usize], raw: Option<usize>) -> Option<usize> {
    let raw = raw?;
    if live.is_empty() {
        None
    } else {
        Some(live[raw % live.len()])
    }
}
