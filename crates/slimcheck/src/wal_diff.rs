//! Logged-persistence differential check: one op sequence driven through
//! the real (snapshot, write-ahead log) pair and a model that tracks the
//! in-memory state, the last *acknowledged* commit, and every commit
//! boundary of the current log generation.
//!
//! The contract under test is PR 6's crash matrix, generalized to random
//! schedules:
//!
//! * a graceful [`WalOp::Reopen`] recovers exactly the last acknowledged
//!   commit;
//! * a crashed commit ([`WalOp::CrashCommit`]) recovers the last
//!   acknowledged commit — or the attempted batch if its frame landed
//!   whole — never a partial batch;
//! * a crash at any of the eight compaction steps
//!   ([`WalOp::CrashCompact`]) recovers the pre-compaction acknowledged
//!   state or the compacted one, nothing else;
//! * a corrupted log byte ([`WalOp::CorruptTail`]) yields some commit
//!   boundary (CRC salvage truncates at the damage) or a typed refusal —
//!   never a state no commit ever acknowledged.
//!
//! A second *sibling* session (its own snapshot + log at a sibling path
//! on the same disk) runs alongside the main one. The `Sibling*` ops
//! interleave its commits, compactions, and crashes with the main
//! session's, checking the cross-session contract: the two logs are
//! independent — a crash mid-commit in one session recovers that
//! session to an acknowledged state and must leave the *other* session
//! exactly at its own acknowledged commit, and the prefix-scoped temp
//! sweep during one session's recovery must not eat the other's files.
//!
//! [`Mutation::WalSkipTailCrc`] disables the tail frame's CRC check in
//! recovery; the `CorruptTail` op is what must catch it.

use crate::ops::{WalOp, OBJECTS, PROPS, SUBJECTS};
use crate::Mutation;
use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs, Vfs};
use std::collections::BTreeSet;
use std::path::Path;
use trim::{CommitOutcome, Revision, StoreLog, Triple, TripleStore, TrimError, Value};

const SNAP_PATH: &str = "slimcheck/wal-store.xml";
const SIB_PATH: &str = "slimcheck/wal-sibling.xml";
const COMMIT_FAULTS: [FaultOp; 2] = [FaultOp::Append, FaultOp::Sync];
const COMPACT_FAULTS: [FaultOp; 4] =
    [FaultOp::Write, FaultOp::Sync, FaultOp::Rename, FaultOp::SyncDir];
const FAULT_MODES: [FaultMode; 3] = [FaultMode::Fail, FaultMode::Torn, FaultMode::SilentTorn];

type ModelTriple = (String, String, String, bool);
type State = BTreeSet<ModelTriple>;

fn snap() -> &'static Path {
    Path::new(SNAP_PATH)
}

fn sib() -> &'static Path {
    Path::new(SIB_PATH)
}

/// Run `ops` through the logged world; panics on any divergence.
pub fn check(ops: &[WalOp], mutation: Mutation) {
    let mut world = World::new(mutation);
    for op in ops {
        world.apply(op);
        world.verify();
    }
    world.store.check_invariants();
    // Final differential recovery: whatever the schedule did, a graceful
    // reopen must land exactly on the last acknowledged commit.
    world.reopen();
}

struct World {
    mutation: Mutation,
    disk: MemVfs,
    store: TripleStore,
    log: StoreLog,
    /// Model of the live in-memory store.
    oracle: State,
    /// Model of the last acknowledged durable commit.
    acked: State,
    /// State at each commit boundary of the current log generation,
    /// oldest first (index 0 is the snapshot itself). Damage to the log
    /// can only ever recover one of these.
    boundaries: Vec<State>,
    /// `(journal revision, oracle snapshot)` pairs for `Undo`; reset on
    /// every reopen, which truncates the journal.
    checkpoints: Vec<(Revision, State)>,
    /// The second session: its own logged store at a sibling path.
    sib_store: TripleStore,
    sib_log: StoreLog,
    /// Model of the sibling's live in-memory store.
    sib_oracle: State,
    /// Model of the sibling's last acknowledged durable commit.
    sib_acked: State,
}

impl World {
    fn new(mutation: Mutation) -> Self {
        let mut disk = MemVfs::new();
        let (store, log) = open_pair(&mut disk, mutation, snap())
            .expect("opening a fresh logged store cannot fail");
        let (sib_store, sib_log) = open_pair(&mut disk, mutation, sib())
            .expect("opening a fresh sibling store cannot fail");
        let checkpoints = vec![(store.revision(), State::new())];
        World {
            mutation,
            disk,
            store,
            log,
            oracle: State::new(),
            acked: State::new(),
            boundaries: vec![State::new()],
            checkpoints,
            sib_store,
            sib_log,
            sib_oracle: State::new(),
            sib_acked: State::new(),
        }
    }

    fn intern(&mut self, s: usize, p: usize, o: usize, res: bool) -> Triple {
        intern_into(&mut self.store, s, p, o, res)
    }

    fn apply(&mut self, op: &WalOp) {
        match *op {
            WalOp::Insert { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                self.store.insert(t.subject, t.property, t.object);
                self.oracle.insert(model_key(s, p, o, res));
            }
            WalOp::Remove { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                self.store.remove(t);
                self.oracle.remove(&model_key(s, p, o, res));
            }
            WalOp::SetUnique { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                self.store.set_unique(t.subject, t.property, t.object);
                self.oracle.retain(|(ms, mp, _, _)| !(ms == SUBJECTS[s] && mp == PROPS[p]));
                self.oracle.insert(model_key(s, p, o, res));
            }
            WalOp::Checkpoint => {
                self.checkpoints.push((self.store.revision(), self.oracle.clone()));
            }
            WalOp::Undo { back } => {
                let idx = self.checkpoints.len() - 1 - (back % self.checkpoints.len());
                let (rev, snapshot) = self.checkpoints[idx].clone();
                self.store.undo_to(rev).expect("recorded revision must be undoable");
                self.oracle = snapshot;
                self.checkpoints.truncate(idx + 1);
            }
            WalOp::Commit => self.commit(),
            WalOp::Compact => {
                self.log
                    .compact(&self.disk, &mut self.store)
                    .expect("compact on MemVfs cannot fail");
                self.acked = self.oracle.clone();
                self.boundaries = vec![self.oracle.clone()];
            }
            WalOp::Reopen => self.reopen(),
            WalOp::CrashCommit { fault, mode, tear_seed } => {
                self.crash_commit(fault, mode, tear_seed)
            }
            WalOp::CrashCompact { step, mode, tear_seed } => {
                self.crash_compact(step, mode, tear_seed)
            }
            WalOp::CorruptTail { offset, flip } => self.corrupt_tail(offset, flip),
            WalOp::SiblingInsert { s, p, o, res } => {
                let t = intern_into(&mut self.sib_store, s, p, o, res);
                self.sib_store.insert(t.subject, t.property, t.object);
                self.sib_oracle.insert(model_key(s, p, o, res));
            }
            WalOp::SiblingCommit => {
                let outcome = self
                    .sib_log
                    .commit(&self.disk, &mut self.sib_store)
                    .expect("sibling commit on MemVfs cannot fail");
                self.note_sibling_outcome(outcome);
            }
            WalOp::SiblingCompact => {
                self.sib_log
                    .compact(&self.disk, &mut self.sib_store)
                    .expect("sibling compact on MemVfs cannot fail");
                self.sib_acked = self.sib_oracle.clone();
            }
            WalOp::SiblingCrashCommit { fault, mode, tear_seed } => {
                self.sibling_crash_commit(fault, mode, tear_seed)
            }
        }
    }

    fn commit(&mut self) {
        let outcome = self
            .log
            .commit(&self.disk, &mut self.store)
            .expect("commit on MemVfs cannot fail");
        self.note_outcome(outcome);
    }

    /// Fold a successful (unfaulted) commit outcome into the model.
    fn note_outcome(&mut self, outcome: CommitOutcome) {
        match outcome {
            CommitOutcome::Clean => {
                // An empty delta means the store is exactly at the
                // committed state — so must the model be.
                assert_eq!(
                    self.oracle, self.acked,
                    "commit reported Clean but the model has pending changes"
                );
            }
            CommitOutcome::Committed { .. } => {
                self.acked = self.oracle.clone();
                self.boundaries.push(self.oracle.clone());
            }
            CommitOutcome::NeedsFullSnapshot => {
                // Nothing was persisted; compaction re-establishes
                // durability (the same recovery adopters perform).
                self.log
                    .compact(&self.disk, &mut self.store)
                    .expect("compact on MemVfs cannot fail");
                self.acked = self.oracle.clone();
                self.boundaries = vec![self.oracle.clone()];
            }
        }
    }

    /// Fold a successful (unfaulted) sibling commit into its model.
    fn note_sibling_outcome(&mut self, outcome: CommitOutcome) {
        match outcome {
            CommitOutcome::Clean => {
                assert_eq!(
                    self.sib_oracle, self.sib_acked,
                    "sibling commit reported Clean but its model has pending changes"
                );
            }
            CommitOutcome::Committed { .. } => {
                self.sib_acked = self.sib_oracle.clone();
            }
            CommitOutcome::NeedsFullSnapshot => {
                self.sib_log
                    .compact(&self.disk, &mut self.sib_store)
                    .expect("sibling compact on MemVfs cannot fail");
                self.sib_acked = self.sib_oracle.clone();
            }
        }
    }

    /// Drop the live handles and recover from disk; graceful shutdown
    /// semantics — uncommitted in-memory changes die, acknowledged ones
    /// must all survive, in both sessions.
    fn reopen(&mut self) {
        let (store, log) = open_pair(&mut self.disk, self.mutation, snap())
            .expect("reopen of an intact pair must work");
        self.store = store;
        self.log = log;
        let got = contents(&self.store);
        assert_eq!(got, self.acked, "graceful reopen diverged from the acknowledged commit");
        self.oracle = self.acked.clone();
        self.checkpoints = vec![(self.store.revision(), self.oracle.clone())];
        self.reopen_sibling_exact("graceful reopen");
    }

    /// Recover the sibling session from disk and require it to land
    /// *exactly* on its acknowledged commit — used whenever the crash
    /// (or shutdown) happened outside the sibling's own commit path.
    fn reopen_sibling_exact(&mut self, context: &str) {
        let (store, log) = open_pair(&mut self.disk, self.mutation, sib())
            .unwrap_or_else(|e| panic!("sibling recovery after {context} failed: {e}"));
        self.sib_store = store;
        self.sib_log = log;
        let got = contents(&self.sib_store);
        assert_eq!(
            got, self.sib_acked,
            "{context} moved the sibling session's durability boundary"
        );
        self.sib_oracle = self.sib_acked.clone();
    }

    /// Reboot after a crash: recover from disk and check the recovered
    /// state is one of `allowed`. The sibling session — whose files the
    /// crashed operation never touched — must recover exactly its own
    /// acknowledged commit. Returns the recovered main state (which
    /// becomes both the durable and the in-memory truth).
    fn reboot(&mut self, context: &str, allowed: &[&State]) -> State {
        let (store, log) = open_pair(&mut self.disk, self.mutation, snap())
            .unwrap_or_else(|e| panic!("recovery after {context} failed: {e}"));
        self.store = store;
        self.log = log;
        let got = contents(&self.store);
        assert!(
            allowed.iter().any(|s| **s == got),
            "recovery after {context} landed on a state no commit acknowledged"
        );
        self.acked = got.clone();
        self.oracle = got.clone();
        self.checkpoints = vec![(self.store.revision(), self.oracle.clone())];
        self.reopen_sibling_exact(context);
        got
    }

    /// Crash mid-commit in the *sibling* session, then reboot both. The
    /// sibling recovers its previous acked state or the attempted batch;
    /// the main session must come back exactly at its own acked commit.
    fn sibling_crash_commit(&mut self, fault: usize, mode: usize, tear_seed: u64) {
        let op = COMMIT_FAULTS[fault % COMMIT_FAULTS.len()];
        let mode = FAULT_MODES[mode % FAULT_MODES.len()];
        let attempted = self.sib_oracle.clone();
        let config = FaultConfig::new(op, mode, 0, tear_seed).halting();
        let disk = std::mem::replace(&mut self.disk, MemVfs::new());
        let vfs = FaultVfs::new(disk, config);
        let result = self.sib_log.commit(&vfs, &mut self.sib_store);
        let fired = vfs.fault_fired();
        self.disk = vfs.into_inner();
        if !fired {
            self.note_sibling_outcome(result.expect("unfaulted sibling commit cannot fail"));
            return;
        }
        let context = format!("sibling crash-commit {op:?}/{mode:?}/{tear_seed}");
        // Sibling leg: acked-or-attempted, like any crashed commit.
        let (store, log) = open_pair(&mut self.disk, self.mutation, sib())
            .unwrap_or_else(|e| panic!("{context}: sibling recovery failed: {e}"));
        self.sib_store = store;
        self.sib_log = log;
        let got = contents(&self.sib_store);
        assert!(
            got == self.sib_acked || got == attempted,
            "{context}: sibling recovered a state no commit acknowledged"
        );
        self.sib_acked = got.clone();
        self.sib_oracle = got;
        // Main leg: untouched by the sibling's crash, must recover exact.
        let (store, log) = open_pair(&mut self.disk, self.mutation, snap())
            .unwrap_or_else(|e| panic!("{context}: main recovery failed: {e}"));
        self.store = store;
        self.log = log;
        assert_eq!(
            contents(&self.store),
            self.acked,
            "{context} moved the main session's durability boundary"
        );
        self.oracle = self.acked.clone();
        self.checkpoints = vec![(self.store.revision(), self.oracle.clone())];
    }

    /// Crash mid-commit (halting fault at the log append or sync), then
    /// reboot and recover.
    fn crash_commit(&mut self, fault: usize, mode: usize, tear_seed: u64) {
        let op = COMMIT_FAULTS[fault % COMMIT_FAULTS.len()];
        let mode = FAULT_MODES[mode % FAULT_MODES.len()];
        let attempted = self.oracle.clone();
        let config = FaultConfig::new(op, mode, 0, tear_seed).halting();
        let disk = std::mem::replace(&mut self.disk, MemVfs::new());
        let vfs = FaultVfs::new(disk, config);
        let result = self.log.commit(&vfs, &mut self.store);
        let fired = vfs.fault_fired();
        self.disk = vfs.into_inner();
        if !fired {
            // The commit never reached the faulted op — it was Clean or
            // NeedsFullSnapshot and did no log I/O. A plain outcome.
            self.note_outcome(result.expect("unfaulted commit on MemVfs cannot fail"));
            return;
        }
        // The process died at the fault. Whether the commit was
        // acknowledged (lying disk) or errored, recovery must land on the
        // previous acked state or — only if its frame landed whole — the
        // attempted batch. Never a partial batch.
        let prev_acked = self.acked.clone();
        let got = self.reboot(
            &format!("crash-commit {op:?}/{mode:?}/{tear_seed}"),
            &[&prev_acked, &attempted],
        );
        if got == attempted && got != prev_acked {
            self.boundaries.push(attempted);
        }
    }

    /// Crash at one of the eight compaction steps, then reboot. The
    /// recovered state must be the pre-compaction acknowledged state (old
    /// generation intact) or the full compacted state (new generation
    /// installed) — compaction never tears.
    fn crash_compact(&mut self, step: usize, mode: usize, tear_seed: u64) {
        let op = COMPACT_FAULTS[step % COMPACT_FAULTS.len()];
        let index = (step / COMPACT_FAULTS.len()) as u64 % 2;
        let mode = FAULT_MODES[mode % FAULT_MODES.len()];
        // Compaction persists the *current* store state, committed or not.
        let attempted = self.oracle.clone();
        let config = FaultConfig::new(op, mode, index, tear_seed).halting();
        let disk = std::mem::replace(&mut self.disk, MemVfs::new());
        let vfs = FaultVfs::new(disk, config);
        let result = self.log.compact(&vfs, &mut self.store);
        let fired = vfs.fault_fired();
        self.disk = vfs.into_inner();
        if !fired {
            result.expect("unfaulted compact on MemVfs cannot fail");
            self.acked = attempted.clone();
            self.boundaries = vec![attempted];
            return;
        }
        let prev_acked = self.acked.clone();
        let got = self.reboot(
            &format!("crash-compact {op:?}#{index}/{mode:?}/{tear_seed}"),
            &[&prev_acked, &attempted],
        );
        if got == attempted && got != prev_acked {
            // The new snapshot generation made it in.
            self.boundaries = vec![attempted];
        }
    }

    /// Flip one byte of the log on a *clone* of the disk and recover
    /// from it: CRC salvage must truncate at the damage and land on some
    /// commit boundary, or refuse with a typed error — never replay the
    /// damage into a state no commit acknowledged.
    fn corrupt_tail(&mut self, offset: u64, flip: u8) {
        let wal_file = StoreLog::wal_path(snap());
        let Some(bytes) = self.disk.bytes(&wal_file) else { return };
        if bytes.is_empty() {
            return;
        }
        let mut mangled = bytes.to_vec();
        let at = (offset % mangled.len() as u64) as usize;
        mangled[at] ^= if flip == 0 { 0x01 } else { flip };
        let mut side = self.disk.clone();
        side.write(&wal_file, &mangled).expect("MemVfs write cannot fail");
        // A typed refusal (`Err`) is sound: the corruption was detected.
        if let Ok((store, _)) = open_pair(&mut side, self.mutation, snap()) {
            store.check_invariants();
            let got = contents(&store);
            assert!(
                self.boundaries.contains(&got),
                "corrupted log byte {at} recovered a state that was never a commit boundary"
            );
        }
    }

    /// Per-step agreement between each live store and its model.
    fn verify(&self) {
        assert_eq!(self.store.len(), self.oracle.len(), "store len diverged from wal model");
        assert_eq!(contents(&self.store), self.oracle, "store contents diverged from wal model");
        assert_eq!(
            contents(&self.sib_store),
            self.sib_oracle,
            "sibling store contents diverged from wal model"
        );
    }
}

/// Recovery as adopters run it: sweep temps, strict snapshot load, log
/// attach + replay. Under [`Mutation::WalSkipTailCrc`] the tail frame's
/// CRC check is disabled (the seeded bug this layer must catch).
fn open_pair(
    disk: &mut MemVfs,
    mutation: Mutation,
    path: &Path,
) -> Result<(TripleStore, StoreLog), TrimError> {
    if mutation == Mutation::WalSkipTailCrc {
        slimio::sweep_stale_temp(disk, path);
        let mut store = if disk.exists(path) {
            TripleStore::load_from(disk, path)?
        } else {
            TripleStore::new()
        };
        let (log, _) = StoreLog::testonly_attach_skip_tail_crc(disk, path, &mut store)?;
        Ok((store, log))
    } else {
        let (store, log, _) = TripleStore::open_logged(disk, path)?;
        Ok((store, log))
    }
}

fn model_key(s: usize, p: usize, o: usize, res: bool) -> ModelTriple {
    (SUBJECTS[s].to_string(), PROPS[p].to_string(), OBJECTS[o].to_string(), res)
}

fn intern_into(store: &mut TripleStore, s: usize, p: usize, o: usize, res: bool) -> Triple {
    let subject = store.atom(SUBJECTS[s]);
    let property = store.atom(PROPS[p]);
    let object = if res {
        Value::Resource(store.atom(OBJECTS[o]))
    } else {
        store.literal_value(OBJECTS[o])
    };
    Triple { subject, property, object }
}

fn contents(store: &TripleStore) -> State {
    store
        .iter()
        .map(|t| {
            (
                store.resolve(t.subject).to_string(),
                store.resolve(t.property).to_string(),
                store.value_text(t.object).to_string(),
                t.object.is_resource(),
            )
        })
        .collect()
}
