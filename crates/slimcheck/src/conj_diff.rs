//! Conjunctive-engine differential check: seeded random conjunctive
//! queries (2–4 patterns, shared variables, constants skewed onto the
//! live atom pools) run through the planner + leapfrog executor and
//! compared against two independent oracles:
//!
//! * a **string-level cross-product evaluator** over a `BTreeSet` model
//!   of the triples — shares no code with `trim` at all, so a bug in the
//!   indexes, the planner, or the executor all surface here; and
//! * [`trim::naive_join`] — the in-crate index-free evaluator the bench
//!   baseline and property tests lean on, checked against the same
//!   model so *it* can't silently drift either.
//!
//! The conjunctive mutations ([`Mutation::ConjSkipRepeatedVarDedup`],
//! [`Mutation::ConjWrongPosRun`]) route through
//! [`trim::ConjQuery::testonly_solve_with_quirks`]; everything else
//! runs the production `solve` path.
//!
//! Every check here panics on divergence; the harness in `lib.rs`
//! catches the panic, shrinks the sequence, and reports a replay seed.

use crate::ops::{ConjOp, OBJECTS, PROPS, SUBJECTS};
use crate::Mutation;
use std::collections::BTreeSet;
use trim::conj::ExecQuirks;
use trim::{naive_join, ConjQuery, TripleStore, Triple, Value};

/// `(subject, property, object, object_is_resource)` at string level.
type ModelTriple = (String, String, String, bool);
/// A binding at string level: `(text, is_resource)` per variable, in
/// variable-declaration order.
type ModelRow = Vec<(String, bool)>;

/// Number of join templates `ConjOp::Query { shape }` selects from.
const SHAPES: usize = 6;

/// A term of a model-level pattern mirroring the real query's terms.
#[derive(Debug, Clone)]
enum MTerm {
    /// Constant text plus whether it names a resource (always true in
    /// the subject and property positions).
    Const(String, bool),
    /// Variable by declaration index.
    Var(usize),
}

#[derive(Debug, Clone)]
struct MPattern {
    s: MTerm,
    p: MTerm,
    o: MTerm,
}

/// Run `ops` through the conjunctive world; panics on any divergence.
pub fn check(ops: &[ConjOp], mutation: Mutation) {
    let quirks = ExecQuirks {
        skip_repeated_var_dedup: mutation == Mutation::ConjSkipRepeatedVarDedup,
        wrong_pos_run: mutation == Mutation::ConjWrongPosRun,
    };
    let mut world = World::new();
    for op in ops {
        world.apply(op, quirks);
    }
}

struct World {
    store: TripleStore,
    model: BTreeSet<ModelTriple>,
}

impl World {
    fn new() -> Self {
        World { store: TripleStore::new(), model: BTreeSet::new() }
    }

    fn intern(&mut self, s: usize, p: usize, o: usize, res: bool) -> Triple {
        let subject = self.store.atom(SUBJECTS[s]);
        let property = self.store.atom(PROPS[p]);
        let object = if res {
            Value::Resource(self.store.atom(OBJECTS[o]))
        } else {
            self.store.literal_value(OBJECTS[o])
        };
        Triple { subject, property, object }
    }

    fn apply(&mut self, op: &ConjOp, quirks: ExecQuirks) {
        match *op {
            ConjOp::Insert { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                let added = self.store.insert(t.subject, t.property, t.object);
                let model_added = self.model.insert(model_key(s, p, o, res));
                assert_eq!(added, model_added, "insert: store vs model on {op:?}");
            }
            ConjOp::Remove { s, p, o, res } => {
                let t = self.intern(s, p, o, res);
                let removed = self.store.remove(t);
                let model_removed = self.model.remove(&model_key(s, p, o, res));
                assert_eq!(removed, model_removed, "remove: store vs model on {op:?}");
            }
            ConjOp::Query { shape, p0, p1, c } => self.query(shape % SHAPES, p0, p1, c, quirks),
        }
    }

    /// Build template `shape`, solve it through the planner (with any
    /// active quirks), and compare the resolved binding set against the
    /// string-level oracle — and the oracle against `naive_join`.
    fn query(&mut self, shape: usize, p0: usize, p1: usize, c: usize, quirks: ExecQuirks) {
        let (query, mirror, name) = self.build(shape, p0, p1, c);
        let solved = query
            .testonly_solve_with_quirks(&self.store, quirks)
            .expect("generated join templates are valid");
        let engine: BTreeSet<ModelRow> =
            solved.iter().map(|row| resolve_row(&self.store, row)).collect();
        let oracle = model_eval(&self.model, &mirror, query.var_count());
        assert_eq!(engine, oracle, "join template `{name}` diverged from the string oracle");
        let naive: BTreeSet<ModelRow> = naive_join(&self.store, &query)
            .expect("generated join templates are valid")
            .iter()
            .map(|row| resolve_row(&self.store, row))
            .collect();
        assert_eq!(naive, oracle, "naive_join on `{name}` diverged from the string oracle");
    }

    /// One join template: the real [`ConjQuery`] plus its string-level
    /// mirror with identical variable indices. Property constants come
    /// from `p0`/`p1`, the subject constant from `c` — all drawn from
    /// the pools the inserts use, so constants hit live atoms often.
    fn build(
        &mut self,
        shape: usize,
        p0: usize,
        p1: usize,
        c: usize,
    ) -> (ConjQuery, Vec<MPattern>, &'static str) {
        let prop0 = self.store.atom(PROPS[p0]);
        let prop1 = self.store.atom(PROPS[p1]);
        let subj = self.store.atom(SUBJECTS[c]);
        let mp0 = || MTerm::Const(PROPS[p0].to_string(), true);
        let mp1 = || MTerm::Const(PROPS[p1].to_string(), true);
        let ms = || MTerm::Const(SUBJECTS[c].to_string(), true);
        let mut q = ConjQuery::new();
        match shape {
            // (C p0 ?a) ⋈ (?a p1 ?b) — constant-anchored membership walk.
            0 => {
                let (a, b) = (q.var("a"), q.var("b"));
                q.pattern(subj, prop0, a).pattern(a, prop1, b);
                let mirror = vec![
                    MPattern { s: ms(), p: mp0(), o: MTerm::Var(a.0) },
                    MPattern { s: MTerm::Var(a.0), p: mp1(), o: MTerm::Var(b.0) },
                ];
                (q, mirror, "membership")
            }
            // (?x p0 ?y) ⋈ (?y p1 ?z) — object-to-subject chain.
            1 => {
                let (x, y, z) = (q.var("x"), q.var("y"), q.var("z"));
                q.pattern(x, prop0, y).pattern(y, prop1, z);
                let mirror = vec![
                    MPattern { s: MTerm::Var(x.0), p: mp0(), o: MTerm::Var(y.0) },
                    MPattern { s: MTerm::Var(y.0), p: mp1(), o: MTerm::Var(z.0) },
                ];
                (q, mirror, "chain")
            }
            // (?x p0 ?y) ⋈ (?x p1 ?z) — shared-subject star.
            2 => {
                let (x, y, z) = (q.var("x"), q.var("y"), q.var("z"));
                q.pattern(x, prop0, y).pattern(x, prop1, z);
                let mirror = vec![
                    MPattern { s: MTerm::Var(x.0), p: mp0(), o: MTerm::Var(y.0) },
                    MPattern { s: MTerm::Var(x.0), p: mp1(), o: MTerm::Var(z.0) },
                ];
                (q, mirror, "star")
            }
            // (?x p0 ?x) ⋈ (?x ?pv ?y) — the repeated-variable diagonal.
            3 => {
                let (x, pv, y) = (q.var("x"), q.var("pv"), q.var("y"));
                q.pattern(x, prop0, x).pattern(x, pv, y);
                let mirror = vec![
                    MPattern { s: MTerm::Var(x.0), p: mp0(), o: MTerm::Var(x.0) },
                    MPattern { s: MTerm::Var(x.0), p: MTerm::Var(pv.0), o: MTerm::Var(y.0) },
                ];
                (q, mirror, "diagonal")
            }
            // (?x p0 ?v) ⋈ (?y p1 ?v) — shared object, declared first so
            // the planner proposes it off the property-bound object runs.
            4 => {
                let (v, x, y) = (q.var("v"), q.var("x"), q.var("y"));
                q.pattern(x, prop0, v).pattern(y, prop1, v);
                let mirror = vec![
                    MPattern { s: MTerm::Var(x.0), p: mp0(), o: MTerm::Var(v.0) },
                    MPattern { s: MTerm::Var(y.0), p: mp1(), o: MTerm::Var(v.0) },
                ];
                (q, mirror, "objshare")
            }
            // (C p0 ?a) ⋈ (?a p1 ?b) ⋈ (?b p0 ?c) ⋈ (?c ?pv ?d) — the
            // four-pattern walk, anchored at a constant.
            _ => {
                let (a, b, cc, pv, d) =
                    (q.var("a"), q.var("b"), q.var("c"), q.var("pv"), q.var("d"));
                q.pattern(subj, prop0, a)
                    .pattern(a, prop1, b)
                    .pattern(b, prop0, cc)
                    .pattern(cc, pv, d);
                let mirror = vec![
                    MPattern { s: ms(), p: mp0(), o: MTerm::Var(a.0) },
                    MPattern { s: MTerm::Var(a.0), p: mp1(), o: MTerm::Var(b.0) },
                    MPattern { s: MTerm::Var(b.0), p: mp0(), o: MTerm::Var(cc.0) },
                    MPattern { s: MTerm::Var(cc.0), p: MTerm::Var(pv.0), o: MTerm::Var(d.0) },
                ];
                (q, mirror, "quad")
            }
        }
    }
}

fn model_key(s: usize, p: usize, o: usize, res: bool) -> ModelTriple {
    (SUBJECTS[s].to_string(), PROPS[p].to_string(), OBJECTS[o].to_string(), res)
}

/// Resolve one engine binding row (values in variable-index order) to
/// the string level for comparison with the oracle.
fn resolve_row(store: &TripleStore, row: &[Value]) -> ModelRow {
    row.iter()
        .map(|&v| (store.value_text(v).to_string(), v.is_resource()))
        .collect()
}

/// The cross-product oracle: nested-loop the patterns over the model
/// with unification, entirely at string level. Subject and property
/// positions only ever hold resources; object position carries the
/// literal/resource flag, and a variable bound to a literal can never
/// match an atom position — mirroring the engine's typing rules.
fn model_eval(
    model: &BTreeSet<ModelTriple>,
    patterns: &[MPattern],
    vars: usize,
) -> BTreeSet<ModelRow> {
    let mut bindings: Vec<Option<(String, bool)>> = vec![None; vars];
    let mut out = BTreeSet::new();
    eval_rec(model, patterns, 0, &mut bindings, &mut out);
    out
}

fn eval_rec(
    model: &BTreeSet<ModelTriple>,
    patterns: &[MPattern],
    depth: usize,
    bindings: &mut [Option<(String, bool)>],
    out: &mut BTreeSet<ModelRow>,
) {
    if depth == patterns.len() {
        out.insert(bindings.iter().map(|b| b.clone().expect("all variables bound")).collect());
        return;
    }
    let p = &patterns[depth];
    for t in model.iter() {
        let mut newly = Vec::new();
        if unify_atom(&p.s, &t.0, bindings, &mut newly)
            && unify_atom(&p.p, &t.1, bindings, &mut newly)
            && unify_object(&p.o, &t.2, t.3, bindings, &mut newly)
        {
            eval_rec(model, patterns, depth + 1, bindings, out);
        }
        for v in newly {
            bindings[v] = None;
        }
    }
}

/// Unify a term against an atom position (subject or property): the
/// triple field is a resource by construction.
fn unify_atom(
    term: &MTerm,
    text: &str,
    bindings: &mut [Option<(String, bool)>],
    newly: &mut Vec<usize>,
) -> bool {
    match term {
        MTerm::Const(c, _) => c == text,
        MTerm::Var(v) => match &bindings[*v] {
            Some((bound, res)) => *res && bound == text,
            None => {
                bindings[*v] = Some((text.to_string(), true));
                newly.push(*v);
                true
            }
        },
    }
}

/// Unify a term against the object position, where the literal/resource
/// flag participates in equality.
fn unify_object(
    term: &MTerm,
    text: &str,
    res: bool,
    bindings: &mut [Option<(String, bool)>],
    newly: &mut Vec<usize>,
) -> bool {
    match term {
        MTerm::Const(c, cres) => c == text && *cres == res,
        MTerm::Var(v) => match &bindings[*v] {
            Some((bound, bres)) => bound == text && *bres == res,
            None => {
                bindings[*v] = Some((text.to_string(), res));
                newly.push(*v);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two seeded conjunctive bugs each diverge on a three-op
    /// sequence — the shapes the mutation-mode shrink bounds promise.
    #[test]
    fn seeded_conj_bugs_diverge_on_three_ops() {
        // Plant b2 ∈ subjects(name) and b2 ∈ objects(name) without the
        // diagonal (b2, name, b2): the dedup-skipping executor emits it.
        let ops = [
            ConjOp::Insert { s: 1, p: 0, o: 2, res: true },
            ConjOp::Insert { s: 2, p: 0, o: 0, res: true },
            ConjOp::Query { shape: 3, p0: 0, p1: 0, c: 0 },
        ];
        check(&ops, Mutation::None);
        let caught =
            std::panic::catch_unwind(|| check(&ops, Mutation::ConjSkipRepeatedVarDedup));
        assert!(caught.is_err(), "skip-dedup mutant must diverge on the diagonal");

        // One triple and a shared-object join: the wrong-index run reads
        // objects-of-subject("name") — empty — and loses the binding.
        let ops = [
            ConjOp::Insert { s: 1, p: 0, o: 2, res: false },
            ConjOp::Query { shape: 4, p0: 0, p1: 0, c: 0 },
        ];
        check(&ops, Mutation::None);
        let caught = std::panic::catch_unwind(|| check(&ops, Mutation::ConjWrongPosRun));
        assert!(caught.is_err(), "wrong-pos-run mutant must diverge on a shared object");
    }

    /// A removal-heavy sequence with every template: the engine, the
    /// naive evaluator, and the string oracle agree throughout.
    #[test]
    fn all_templates_agree_after_churn() {
        let mut ops = Vec::new();
        for i in 0..SUBJECTS.len() {
            for j in 0..PROPS.len() {
                ops.push(ConjOp::Insert { s: i, p: j, o: (i + j) % OBJECTS.len(), res: j % 2 == 0 });
            }
        }
        ops.push(ConjOp::Remove { s: 0, p: 0, o: 0, res: true });
        for shape in 0..SHAPES {
            ops.push(ConjOp::Query { shape, p0: shape % PROPS.len(), p1: 1, c: shape % SUBJECTS.len() });
        }
        check(&ops, Mutation::None);
    }
}
