//! The harness checking itself: bounded sweeps of every layer must pass
//! against the unmutated stack, every seeded mutant must be caught and
//! shrunk to a near-trivial sequence, and replays must be deterministic.

use slimcheck::{replay, run_layer, Layer, Mutation};

const SEED: u64 = 0x51_1c_e4_ec;

#[test]
fn store_layer_agrees_with_models() {
    if let Some(d) = run_layer(Layer::Store, SEED, 48, 48, Mutation::None) {
        panic!("unexpected store divergence:\n{}", d.report());
    }
}

#[test]
fn wal_layer_agrees_with_models() {
    if let Some(d) = run_layer(Layer::Wal, SEED, 48, 48, Mutation::None) {
        panic!("unexpected wal divergence:\n{}", d.report());
    }
}

#[test]
fn dmi_layer_agrees_with_models() {
    if let Some(d) = run_layer(Layer::Dmi, SEED, 32, 48, Mutation::None) {
        panic!("unexpected DMI divergence:\n{}", d.report());
    }
}

#[test]
fn pad_layer_agrees_with_models() {
    if let Some(d) = run_layer(Layer::Pad, SEED, 32, 48, Mutation::None) {
        panic!("unexpected pad divergence:\n{}", d.report());
    }
}

#[test]
fn resolver_layer_agrees_with_model() {
    if let Some(d) = run_layer(Layer::Resolver, SEED, 32, 48, Mutation::None) {
        panic!("unexpected resolver divergence:\n{}", d.report());
    }
}

#[test]
fn every_seeded_mutant_is_caught_and_shrunk() {
    for mutation in Mutation::ALL {
        let d = run_layer(mutation.layer(), SEED, 64, 48, mutation)
            .unwrap_or_else(|| panic!("mutant {:?} survived the sweep", mutation));
        assert!(
            d.minimal_len <= mutation.shrink_bound(),
            "mutant {:?} caught but only shrunk to {} ops:\n{}",
            mutation,
            d.minimal_len,
            d.report(),
        );
        assert!(d.minimal_len <= d.original_len);
    }
}

#[test]
fn replaying_a_reported_seed_reproduces_the_divergence() {
    let first = run_layer(Layer::Store, SEED, 64, 48, Mutation::LossySetUnique)
        .expect("lossy set_unique must diverge");
    // The seed from the report reproduces the same failing case and
    // shrinks to the same minimal sequence, twice over.
    let again = replay(Layer::Store, first.seed, 48, Mutation::LossySetUnique)
        .expect("replay must reproduce the divergence");
    assert_eq!(again.minimal_debug, first.minimal_debug, "replay shrank differently");
    assert_eq!(again.message, first.message);
    let third = replay(Layer::Store, first.seed, 48, Mutation::LossySetUnique)
        .expect("second replay must also reproduce");
    assert_eq!(third.minimal_debug, first.minimal_debug);
}

#[test]
fn replay_of_a_passing_seed_is_quiet() {
    // Without the mutation the same seed must pass — the divergence is
    // the bug's, not the harness's.
    let d = run_layer(Layer::Store, SEED, 64, 48, Mutation::UndoNoop)
        .expect("undo-noop must diverge");
    assert!(
        replay(Layer::Store, d.seed, 48, Mutation::None).is_none(),
        "sequence fails even without the seeded bug"
    );
}
