//! Property tests for TRIM: the indexed store must agree with a trivially
//! correct model under arbitrary operation sequences, selection must equal
//! full-scan filtering, persistence must round-trip, and undo must restore
//! exact prior state.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trim::{PatternShape, TriplePattern, TripleStore, Value};

/// A small vocabulary so operations collide often.
const SUBJECTS: &[&str] = &["b1", "b2", "s1", "s2", "pad"];
const PROPS: &[&str] = &["name", "content", "nested", "pos"];
const OBJECTS: &[&str] = &["b2", "s1", "John", "140", ""];

#[derive(Debug, Clone)]
enum Op {
    Insert { s: usize, p: usize, o: usize, res: bool },
    Remove { s: usize, p: usize, o: usize, res: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..SUBJECTS.len(), 0..PROPS.len(), 0..OBJECTS.len(), any::<bool>(), any::<bool>()).prop_map(
        |(s, p, o, res, ins)| {
            if ins {
                Op::Insert { s, p, o, res }
            } else {
                Op::Remove { s, p, o, res }
            }
        },
    )
}

type ModelTriple = (String, String, String, bool);

fn apply(store: &mut TripleStore, model: &mut BTreeSet<ModelTriple>, op: &Op) {
    let (s, p, o, res, insert) = match *op {
        Op::Insert { s, p, o, res } => (s, p, o, res, true),
        Op::Remove { s, p, o, res } => (s, p, o, res, false),
    };
    let (subj, prop, obj) = (SUBJECTS[s], PROPS[p], OBJECTS[o]);
    let sa = store.atom(subj);
    let pa = store.atom(prop);
    let ov = if res { Value::Resource(store.atom(obj)) } else { store.literal_value(obj) };
    if insert {
        let added = store.insert(sa, pa, ov);
        let model_added = model.insert((subj.into(), prop.into(), obj.into(), res));
        assert_eq!(added, model_added, "insert return value disagrees with model");
    } else {
        let removed = store.remove(trim::Triple { subject: sa, property: pa, object: ov });
        let model_removed = model.remove(&(subj.into(), prop.into(), obj.into(), res));
        assert_eq!(removed, model_removed, "remove return value disagrees with model");
    }
}

/// Build the pattern of a given shape over the shared vocabulary inside
/// `store` — interning there, so the same (shape, indices) describes the
/// same query in two stores with different atom numbering.
fn shape_pattern(
    store: &mut TripleStore,
    shape: PatternShape,
    qs: usize,
    qp: usize,
    qo: usize,
    o_res: bool,
) -> TriplePattern {
    let mut pattern = TriplePattern::default();
    if shape.binds_subject() {
        let a = store.atom(SUBJECTS[qs]);
        pattern = pattern.with_subject(a);
    }
    if shape.binds_property() {
        let a = store.atom(PROPS[qp]);
        pattern = pattern.with_property(a);
    }
    if shape.binds_object() {
        let v = if o_res {
            Value::Resource(store.atom(OBJECTS[qo]))
        } else {
            store.literal_value(OBJECTS[qo])
        };
        pattern = pattern.with_object(v);
    }
    pattern
}

fn store_contents(store: &TripleStore) -> BTreeSet<ModelTriple> {
    store
        .iter()
        .map(|t| {
            (
                store.resolve(t.subject).to_string(),
                store.resolve(t.property).to_string(),
                store.value_text(t.object).to_string(),
                t.object.is_resource(),
            )
        })
        .collect()
}

proptest! {
    /// The store agrees with a set model after any operation sequence,
    /// and its internal indexes stay consistent.
    #[test]
    fn store_matches_set_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut store = TripleStore::new();
        let mut model: BTreeSet<ModelTriple> = BTreeSet::new();
        for op in &ops {
            apply(&mut store, &mut model, op);
        }
        store.check_invariants();
        prop_assert_eq!(store_contents(&store), model);
    }

    /// Indexed selection equals brute-force filtering for every pattern
    /// shape over the vocabulary.
    #[test]
    fn select_equals_full_scan(
        ops in proptest::collection::vec(op_strategy(), 0..80),
        qs in 0..SUBJECTS.len(), qp in 0..PROPS.len(), qo in 0..OBJECTS.len(),
        use_s in any::<bool>(), use_p in any::<bool>(), use_o in any::<bool>(), o_res in any::<bool>(),
    ) {
        let mut store = TripleStore::new();
        let mut model = BTreeSet::new();
        for op in &ops {
            apply(&mut store, &mut model, op);
        }
        let mut pattern = TriplePattern::default();
        if use_s { pattern = pattern.with_subject(store.atom(SUBJECTS[qs])); }
        if use_p { pattern = pattern.with_property(store.atom(PROPS[qp])); }
        if use_o {
            let v = if o_res { Value::Resource(store.atom(OBJECTS[qo])) } else { store.literal_value(OBJECTS[qo]) };
            pattern = pattern.with_object(v);
        }
        let selected: BTreeSet<_> = store.select(&pattern).into_iter().collect();
        let scanned: BTreeSet<_> = store.iter().filter(|t| pattern.matches(t)).collect();
        prop_assert_eq!(&selected, &scanned);
        prop_assert_eq!(store.count(&pattern), selected.len());
    }

    /// XML round-trip is the identity on contents.
    #[test]
    fn xml_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut store = TripleStore::new();
        let mut model = BTreeSet::new();
        for op in &ops {
            apply(&mut store, &mut model, op);
        }
        let reloaded = TripleStore::from_xml(&store.to_xml()).unwrap();
        reloaded.check_invariants();
        prop_assert_eq!(store_contents(&reloaded), model);
        // Canonical: serializing again yields identical bytes.
        prop_assert_eq!(reloaded.to_xml(), store.to_xml());
    }

    /// undo_to(rev) restores exactly the contents at rev.
    #[test]
    fn undo_restores_snapshot(
        before in proptest::collection::vec(op_strategy(), 0..40),
        after in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let mut store = TripleStore::new();
        let mut model = BTreeSet::new();
        for op in &before {
            apply(&mut store, &mut model, op);
        }
        let rev = store.revision();
        let snapshot = store_contents(&store);
        let mut ignored = model.clone();
        for op in &after {
            apply(&mut store, &mut ignored, op);
        }
        store.undo_to(rev).unwrap();
        store.check_invariants();
        prop_assert_eq!(store_contents(&store), snapshot);
        prop_assert_eq!(store.revision(), rev);
    }

    /// Indexes rebuilt by a load answer every pattern shape exactly like
    /// the incrementally-maintained in-memory indexes: save → load →
    /// query equals in-memory query, for all 8 shapes, through the full
    /// sealed-file persistence stack.
    #[test]
    fn save_load_query_agrees_for_every_shape(
        ops in proptest::collection::vec(op_strategy(), 0..80),
        qs in 0..SUBJECTS.len(), qp in 0..PROPS.len(), qo in 0..OBJECTS.len(), o_res in any::<bool>(),
    ) {
        use std::path::Path;
        let mut store = TripleStore::new();
        let mut model = BTreeSet::new();
        for op in &ops {
            apply(&mut store, &mut model, op);
        }
        let vfs = slimio::MemVfs::new();
        store.save_to(&vfs, Path::new("pad.xml")).unwrap();
        let mut reloaded = TripleStore::load_from(&vfs, Path::new("pad.xml")).unwrap();
        reloaded.check_invariants();
        let stringify = |st: &TripleStore, hits: Vec<trim::Triple>| -> BTreeSet<ModelTriple> {
            hits.into_iter()
                .map(|t| {
                    (
                        st.resolve(t.subject).to_string(),
                        st.resolve(t.property).to_string(),
                        st.value_text(t.object).to_string(),
                        t.object.is_resource(),
                    )
                })
                .collect()
        };
        for shape in PatternShape::ALL {
            let live_pattern = shape_pattern(&mut store, shape, qs, qp, qo, o_res);
            let loaded_pattern = shape_pattern(&mut reloaded, shape, qs, qp, qo, o_res);
            // Same plan on both sides: planning is shape-pure.
            prop_assert_eq!(store.explain(&live_pattern), reloaded.explain(&loaded_pattern));
            prop_assert_eq!(store.explain(&live_pattern).shape, shape);
            let live = stringify(&store, store.select(&live_pattern));
            let loaded = stringify(&reloaded, reloaded.select(&loaded_pattern));
            prop_assert_eq!(reloaded.count(&loaded_pattern), loaded.len());
            prop_assert_eq!(
                live, loaded,
                "shape {} diverged between live and reloaded store", shape.name()
            );
        }
    }

    /// A reachability view contains a triple iff its subject is reachable
    /// from the root by resource edges (checked against a model BFS).
    #[test]
    fn view_matches_model_reachability(ops in proptest::collection::vec(op_strategy(), 0..80), root in 0..SUBJECTS.len()) {
        let mut store = TripleStore::new();
        let mut model = BTreeSet::new();
        for op in &ops {
            apply(&mut store, &mut model, op);
        }
        let root_name = SUBJECTS[root];
        let root_atom = store.atom(root_name);
        // Model BFS over the string model.
        let mut reach: BTreeSet<String> = BTreeSet::new();
        let mut frontier = vec![root_name.to_string()];
        reach.insert(root_name.to_string());
        while let Some(cur) = frontier.pop() {
            for (s, _, o, is_res) in &model {
                if *s == cur && *is_res && reach.insert(o.clone()) {
                    frontier.push(o.clone());
                }
            }
        }
        let expected: BTreeSet<ModelTriple> =
            model.iter().filter(|(s, _, _, _)| reach.contains(s)).cloned().collect();
        let view = store.view(root_atom);
        let got: BTreeSet<ModelTriple> = view
            .triples
            .iter()
            .map(|t| {
                (
                    store.resolve(t.subject).to_string(),
                    store.resolve(t.property).to_string(),
                    store.value_text(t.object).to_string(),
                    t.object.is_resource(),
                )
            })
            .collect();
        prop_assert_eq!(got, expected);
    }
}
