//! Conjunctive-engine property tests.
//!
//! Two properties the join engine must hold for *any* store and query:
//!
//! 1. **Order insensitivity** — forcing the engine through every
//!    permutation of the variable binding order yields the identical
//!    binding set (solve output is canonically sorted, so plain equality
//!    is the order-insensitive comparison).
//! 2. **Naive agreement** — the leapfrog result equals the index-free
//!    cross-product evaluator's, pattern for pattern.
//!
//! Plus determinism: for a fixed store, `explain_join` renders the same
//! join tree every time it is asked.

use proptest::prelude::*;
use trim::conj::{ConjQuery, Var};
use trim::{naive_join, TripleStore};

/// Small vocabulary so patterns collide and joins produce rows.
const NODES: &[&str] = &["a", "b", "c", "d"];
const PROPS: &[&str] = &["p", "q"];
const LITS: &[&str] = &["x", "y"];

#[derive(Debug, Clone)]
struct TripleSpec {
    s: usize,
    p: usize,
    o: usize,
    res: bool,
}

fn triples_strategy() -> impl Strategy<Value = Vec<TripleSpec>> {
    proptest::collection::vec(
        (0..NODES.len(), 0..PROPS.len(), 0..NODES.len().max(LITS.len()), any::<bool>())
            .prop_map(|(s, p, o, res)| TripleSpec {
                s,
                p,
                o: if res { o % NODES.len() } else { o % LITS.len() },
                res,
            }),
        1..12,
    )
}

/// Query templates over 2–3 variables exercising chains, stars, repeated
/// variables, and variable properties.
#[derive(Debug, Clone, Copy)]
enum QueryShape {
    /// (?x p0 ?y) ⋈ (?y p1 ?z)
    Chain,
    /// (?x p0 ?y) ⋈ (?x p1 ?z)
    Star,
    /// (?x p0 ?x) ⋈ (?x ?q ?y)
    Diagonal,
    /// (?x ?q ?y) ⋈ (?y ?q ?z) — shared variable property
    PropShare,
}

fn shape_strategy() -> impl Strategy<Value = QueryShape> {
    prop_oneof![
        Just(QueryShape::Chain),
        Just(QueryShape::Star),
        Just(QueryShape::Diagonal),
        Just(QueryShape::PropShare),
    ]
}

fn build_store(triples: &[TripleSpec]) -> TripleStore {
    let mut store = TripleStore::new();
    for t in triples {
        if t.res {
            store.insert_resource(NODES[t.s], PROPS[t.p], NODES[t.o]);
        } else {
            store.insert_literal(NODES[t.s], PROPS[t.p], LITS[t.o]);
        }
    }
    store
}

fn build_query(store: &mut TripleStore, shape: QueryShape, p0: usize, p1: usize) -> ConjQuery {
    let prop0 = store.atom(PROPS[p0]);
    let prop1 = store.atom(PROPS[p1]);
    let mut q = ConjQuery::new();
    match shape {
        QueryShape::Chain => {
            let (x, y, z) = (q.var("x"), q.var("y"), q.var("z"));
            q.pattern(x, prop0, y).pattern(y, prop1, z);
        }
        QueryShape::Star => {
            let (x, y, z) = (q.var("x"), q.var("y"), q.var("z"));
            q.pattern(x, prop0, y).pattern(x, prop1, z);
        }
        QueryShape::Diagonal => {
            let (x, pv, y) = (q.var("x"), q.var("pv"), q.var("y"));
            q.pattern(x, prop0, x).pattern(x, pv, y);
        }
        QueryShape::PropShare => {
            let (x, pv, y, z) = (q.var("x"), q.var("pv"), q.var("y"), q.var("z"));
            q.pattern(x, pv, y).pattern(y, pv, z);
        }
    }
    q
}

fn permutations(n: usize) -> Vec<Vec<Var>> {
    fn rec(rest: &mut Vec<usize>, acc: &mut Vec<usize>, out: &mut Vec<Vec<Var>>) {
        if rest.is_empty() {
            out.push(acc.iter().map(|&i| Var(i)).collect());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            acc.push(v);
            rec(rest, acc, out);
            acc.pop();
            rest.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..n).collect(), &mut Vec::new(), &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every forced binding order returns the planner's binding set, and
    /// the planner agrees with the naive cross-product evaluator.
    #[test]
    fn all_binding_orders_agree_with_naive(
        triples in triples_strategy(),
        shape in shape_strategy(),
        p0 in 0..PROPS.len(),
        p1 in 0..PROPS.len(),
    ) {
        let mut store = build_store(&triples);
        let q = build_query(&mut store, shape, p0, p1);
        let planned = q.solve(&store).unwrap();
        let oracle = naive_join(&store, &q).unwrap();
        prop_assert_eq!(&planned, &oracle, "planner vs naive for {:?}", shape);
        for order in permutations(q.var_count()) {
            let forced = q.solve_ordered(&store, &order).unwrap();
            prop_assert_eq!(&forced, &planned, "forced order {:?} for {:?}", order, shape);
        }
    }

    /// The rendered join tree is a deterministic function of the store:
    /// byte-identical across repeated renders and across a rebuilt
    /// identical store.
    #[test]
    fn explain_join_trees_are_deterministic(
        triples in triples_strategy(),
        shape in shape_strategy(),
        p0 in 0..PROPS.len(),
        p1 in 0..PROPS.len(),
    ) {
        let mut store = build_store(&triples);
        let q = build_query(&mut store, shape, p0, p1);
        let first = store.explain_join(&q).unwrap();
        prop_assert_eq!(&first, &store.explain_join(&q).unwrap());

        let mut rebuilt = build_store(&triples);
        let q2 = build_query(&mut rebuilt, shape, p0, p1);
        prop_assert_eq!(&first, &rebuilt.explain_join(&q2).unwrap());

        // The tree names every pattern and a bind step per variable.
        for v in q.vars() {
            prop_assert!(first.contains(&format!("bind ?{}", q.var_name(v))));
        }
        for i in 0..q.patterns().len() {
            prop_assert!(first.contains(&format!("p{i} ")));
        }
    }
}
