//! Differential property tests: the indexed [`TripleStore`] must agree
//! with the scan-everything [`NaiveStore`] on queries, bulk removal, and
//! size after arbitrary operation sequences, and `undo_to` must restore
//! the exact triple set at any recorded revision — including across
//! `set_unique`, whose replace-then-insert expansion spans several
//! journal entries.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trim::{NaiveStore, PatternShape, Plan, Revision, TriplePattern, TripleStore, Value};

/// A small vocabulary so operations collide often.
const SUBJECTS: &[&str] = &["b1", "b2", "s1", "s2", "pad"];
const PROPS: &[&str] = &["name", "content", "nested", "pos"];
const OBJECTS: &[&str] = &["b2", "s1", "John", "140", ""];

#[derive(Debug, Clone)]
enum Op {
    Insert { s: usize, p: usize, o: usize, res: bool },
    Remove { s: usize, p: usize, o: usize, res: bool },
    SetUnique { s: usize, p: usize, o: usize, res: bool },
    RemoveMatching { s: Option<usize>, p: Option<usize>, o: Option<(usize, bool)> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let field = (0..SUBJECTS.len(), 0..PROPS.len(), 0..OBJECTS.len(), any::<bool>());
    prop_oneof![
        field.clone().prop_map(|(s, p, o, res)| Op::Insert { s, p, o, res }),
        field.clone().prop_map(|(s, p, o, res)| Op::Remove { s, p, o, res }),
        field.prop_map(|(s, p, o, res)| Op::SetUnique { s, p, o, res }),
        (
            proptest::option::of(0..SUBJECTS.len()),
            proptest::option::of(0..PROPS.len()),
            proptest::option::of((0..OBJECTS.len(), any::<bool>())),
        )
            .prop_map(|(s, p, o)| Op::RemoveMatching { s, p, o }),
    ]
}

/// Build the kind-aware pattern for the indexed store; atoms are interned
/// on demand so a query over never-seen strings still typechecks.
fn pattern_for(
    store: &mut TripleStore,
    s: Option<usize>,
    p: Option<usize>,
    o: Option<(usize, bool)>,
) -> TriplePattern {
    let mut pattern = TriplePattern::default();
    if let Some(s) = s {
        let a = store.atom(SUBJECTS[s]);
        pattern = pattern.with_subject(a);
    }
    if let Some(p) = p {
        let a = store.atom(PROPS[p]);
        pattern = pattern.with_property(a);
    }
    if let Some((o, res)) = o {
        let v = if res {
            let a = store.atom(OBJECTS[o]);
            Value::Resource(a)
        } else {
            store.literal_value(OBJECTS[o])
        };
        pattern = pattern.with_object(v);
    }
    pattern
}

/// Apply one op to both stores, asserting result agreement where the op
/// reports one (insert/remove booleans, remove_matching counts).
fn apply(store: &mut TripleStore, naive: &mut NaiveStore, op: &Op) {
    match *op {
        Op::Insert { s, p, o, res } => {
            let (subj, prop, obj) = (SUBJECTS[s], PROPS[p], OBJECTS[o]);
            let sa = store.atom(subj);
            let pa = store.atom(prop);
            let ov = if res { Value::Resource(store.atom(obj)) } else { store.literal_value(obj) };
            let added = store.insert(sa, pa, ov);
            let naive_added = naive.insert(subj, prop, obj, res);
            assert_eq!(added, naive_added, "insert disagreement on {op:?}");
        }
        Op::Remove { s, p, o, res } => {
            let (subj, prop, obj) = (SUBJECTS[s], PROPS[p], OBJECTS[o]);
            let sa = store.atom(subj);
            let pa = store.atom(prop);
            let ov = if res { Value::Resource(store.atom(obj)) } else { store.literal_value(obj) };
            let removed = store.remove(trim::Triple { subject: sa, property: pa, object: ov });
            let naive_removed = naive.remove_exact(subj, prop, obj, res);
            assert_eq!(removed, naive_removed, "remove disagreement on {op:?}");
        }
        Op::SetUnique { s, p, o, res } => {
            let (subj, prop, obj) = (SUBJECTS[s], PROPS[p], OBJECTS[o]);
            let sa = store.atom(subj);
            let pa = store.atom(prop);
            let ov = if res { Value::Resource(store.atom(obj)) } else { store.literal_value(obj) };
            store.set_unique(sa, pa, ov);
            naive.set_unique(subj, prop, obj, res);
        }
        Op::RemoveMatching { s, p, o } => {
            let pattern = pattern_for(store, s, p, o);
            let removed = store.remove_matching(&pattern);
            let naive_removed = naive.remove_matching(
                s.map(|i| SUBJECTS[i]),
                p.map(|i| PROPS[i]),
                o.map(|(i, res)| (OBJECTS[i], res)),
            );
            assert_eq!(removed, naive_removed, "remove_matching disagreement on {op:?}");
        }
    }
}

/// Replay one op into a naive store alone — used to reconstruct the
/// naive baseline at an undo point (NaiveStore has no journal).
fn apply_naive(naive: &mut NaiveStore, op: &Op) {
    match *op {
        Op::Insert { s, p, o, res } => {
            naive.insert(SUBJECTS[s], PROPS[p], OBJECTS[o], res);
        }
        Op::Remove { s, p, o, res } => {
            naive.remove_exact(SUBJECTS[s], PROPS[p], OBJECTS[o], res);
        }
        Op::SetUnique { s, p, o, res } => naive.set_unique(SUBJECTS[s], PROPS[p], OBJECTS[o], res),
        Op::RemoveMatching { s, p, o } => {
            naive.remove_matching(
                s.map(|i| SUBJECTS[i]),
                p.map(|i| PROPS[i]),
                o.map(|(i, res)| (OBJECTS[i], res)),
            );
        }
    }
}

type ModelTriple = (String, String, String, bool);

fn store_contents(store: &TripleStore) -> BTreeSet<ModelTriple> {
    store
        .iter()
        .map(|t| {
            (
                store.resolve(t.subject).to_string(),
                store.resolve(t.property).to_string(),
                store.value_text(t.object).to_string(),
                t.object.is_resource(),
            )
        })
        .collect()
}

fn naive_contents(naive: &NaiveStore) -> BTreeSet<ModelTriple> {
    naive
        .select_matching(None, None, None)
        .into_iter()
        .map(|t| (t.subject.clone(), t.property.clone(), t.object.clone(), t.object_is_resource))
        .collect()
}

/// Query both stores with every one of the 8 pattern shapes over the same
/// vocabulary point, asserting the planner's result set, count, and
/// `explain()` index choice against the naive scan.
fn sweep_all_shapes(
    store: &mut TripleStore,
    naive: &NaiveStore,
    qs: usize,
    qp: usize,
    qo: (usize, bool),
) {
    for shape in PatternShape::ALL {
        let s = shape.binds_subject().then_some(qs);
        let p = shape.binds_property().then_some(qp);
        let o = shape.binds_object().then_some(qo);
        let pattern = pattern_for(store, s, p, o);
        let plan = store.explain(&pattern);
        assert_eq!(plan.shape, shape, "pattern classified under the wrong shape");
        assert_eq!(
            plan,
            Plan::for_shape(shape),
            "explain() deviated from the selection table for shape {}",
            shape.name()
        );
        let indexed: BTreeSet<ModelTriple> = store
            .select(&pattern)
            .into_iter()
            .map(|t| {
                (
                    store.resolve(t.subject).to_string(),
                    store.resolve(t.property).to_string(),
                    store.value_text(t.object).to_string(),
                    t.object.is_resource(),
                )
            })
            .collect();
        assert_eq!(
            store.count(&pattern),
            indexed.len(),
            "count disagrees with select for shape {}",
            shape.name()
        );
        let scanned: BTreeSet<ModelTriple> = naive
            .select_matching(
                s.map(|i| SUBJECTS[i]),
                p.map(|i| PROPS[i]),
                o.map(|(i, res)| (OBJECTS[i], res)),
            )
            .into_iter()
            .map(|t| (t.subject.clone(), t.property.clone(), t.object.clone(), t.object_is_resource))
            .collect();
        assert_eq!(indexed, scanned, "select diverged for shape {}", shape.name());
    }
}

proptest! {
    /// Full differential agreement: same ops into both stores ⇒ same
    /// contents, same len, consistent indexes.
    #[test]
    fn indexed_store_agrees_with_naive(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut store = TripleStore::new();
        let mut naive = NaiveStore::new();
        for op in &ops {
            apply(&mut store, &mut naive, op);
            prop_assert_eq!(store.len(), naive.len(), "len diverged after {:?}", op);
        }
        store.check_invariants();
        prop_assert_eq!(store_contents(&store), naive_contents(&naive));
    }

    /// Every query shape answers identically in both stores.
    #[test]
    fn queries_agree_between_stores(
        ops in proptest::collection::vec(op_strategy(), 0..80),
        qs in proptest::option::of(0..SUBJECTS.len()),
        qp in proptest::option::of(0..PROPS.len()),
        qo in proptest::option::of((0..OBJECTS.len(), any::<bool>())),
    ) {
        let mut store = TripleStore::new();
        let mut naive = NaiveStore::new();
        for op in &ops {
            apply(&mut store, &mut naive, op);
        }
        let pattern = pattern_for(&mut store, qs, qp, qo);
        let indexed: BTreeSet<ModelTriple> = store
            .select(&pattern)
            .into_iter()
            .map(|t| {
                (
                    store.resolve(t.subject).to_string(),
                    store.resolve(t.property).to_string(),
                    store.value_text(t.object).to_string(),
                    t.object.is_resource(),
                )
            })
            .collect();
        let scanned: BTreeSet<ModelTriple> = naive
            .select_matching(
                qs.map(|i| SUBJECTS[i]),
                qp.map(|i| PROPS[i]),
                qo.map(|(i, res)| (OBJECTS[i], res)),
            )
            .into_iter()
            .map(|t| (t.subject.clone(), t.property.clone(), t.object.clone(), t.object_is_resource))
            .collect();
        prop_assert_eq!(indexed.len(), store.count(&pattern));
        prop_assert_eq!(indexed, scanned);
    }

    /// All-8-pattern-shapes sweep: the planner's results, counts, and
    /// `explain()` index choices must agree with the naive scan on a
    /// seeded random workload — and must *still* agree after undoing to
    /// an arbitrary op boundary, proving every permutation index (not
    /// just the membership set) is maintained through rollback.
    #[test]
    fn all_shapes_sweep_with_explain_and_post_undo(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        qs in 0..SUBJECTS.len(),
        qp in 0..PROPS.len(),
        qo in (0..OBJECTS.len(), any::<bool>()),
        pick in 0usize..80,
    ) {
        let mut store = TripleStore::new();
        let mut naive = NaiveStore::new();
        let mut revisions = vec![store.revision()];
        for op in &ops {
            apply(&mut store, &mut naive, op);
            revisions.push(store.revision());
        }
        sweep_all_shapes(&mut store, &naive, qs, qp, qo);
        // Roll back to a random op boundary, replay the naive baseline to
        // the same point, and sweep again.
        let k = pick % revisions.len();
        store.undo_to(revisions[k]).expect("op-boundary revision must be undoable");
        store.check_invariants();
        let mut replayed = NaiveStore::new();
        for op in &ops[..k] {
            apply_naive(&mut replayed, op);
        }
        sweep_all_shapes(&mut store, &replayed, qs, qp, qo);
    }

    /// Undoing to any recorded revision restores the exact triple set as
    /// of that revision, no matter what ran afterwards — including
    /// `set_unique`, which journals a removal batch plus an insert.
    #[test]
    fn undo_to_restores_any_recorded_revision(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        pick in 0usize..100,
    ) {
        let mut store = TripleStore::new();
        let mut naive = NaiveStore::new();
        let mut timeline: Vec<(Revision, BTreeSet<ModelTriple>)> = Vec::new();
        timeline.push((store.revision(), store_contents(&store)));
        for op in &ops {
            apply(&mut store, &mut naive, op);
            timeline.push((store.revision(), store_contents(&store)));
        }
        let (rev, snapshot) = timeline[pick % timeline.len()].clone();
        store.undo_to(rev).expect("recorded revision must be undoable");
        store.check_invariants();
        prop_assert_eq!(store.revision(), rev);
        prop_assert_eq!(store_contents(&store), snapshot);
    }
}
