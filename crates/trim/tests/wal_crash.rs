//! The (snapshot, log) crash matrix.
//!
//! PR 1 proved the full-rewrite save crash-safe by injecting faults at
//! every step of the atomic install and truncating a saved file at every
//! byte. This suite extends that discipline to the logged commit path:
//!
//! * every fault mode (Fail / Torn / SilentTorn) at every WAL step —
//!   commit append, commit sync, and each write/sync/rename/sync_dir of
//!   the two-phase compaction — with the process halting at the fault;
//! * every byte offset of a truncated log tail.
//!
//! The invariant throughout: reopening the pair recovers the state of
//! some *acknowledged* commit — the latest one unless the disk lied
//! about durability, and never a partial batch or invented triples.

use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs, Vfs};
use trim::{CommitOutcome, TripleStore, Value};
use std::path::Path;

const SNAP: &str = "store.xml";

fn snap() -> &'static Path {
    Path::new(SNAP)
}

fn contents(store: &TripleStore) -> Vec<(String, String, bool, String)> {
    let mut out: Vec<_> = store
        .iter()
        .map(|t| {
            let (is_res, obj) = match t.object {
                Value::Resource(a) => (true, store.resolve(a).to_string()),
                Value::Literal(a) => (false, store.resolve(a).to_string()),
            };
            (
                store.resolve(t.subject).to_string(),
                store.resolve(t.property).to_string(),
                is_res,
                obj,
            )
        })
        .collect();
    out.sort();
    out
}

type State = Vec<(String, String, bool, String)>;

/// A store with two acknowledged commits on disk; returns the disk, the
/// live handles, and the state after each acknowledged commit.
fn committed_world() -> (MemVfs, TripleStore, trim::StoreLog, Vec<State>) {
    let vfs = MemVfs::new();
    let (mut store, mut log, _) = TripleStore::open_logged(&vfs, snap()).unwrap();
    let mut acked = vec![contents(&store)];
    store.insert_literal("b:1", "bundleName", "John Smith");
    store.insert_resource("b:1", "nestedBundle", "b:2");
    assert!(matches!(
        log.commit(&vfs, &mut store).unwrap(),
        CommitOutcome::Committed { .. }
    ));
    acked.push(contents(&store));
    store.insert_literal("b:2", "bundleName", "Labs");
    store.insert_literal("b:2", "annotation", "check potassium");
    assert!(matches!(
        log.commit(&vfs, &mut store).unwrap(),
        CommitOutcome::Committed { .. }
    ));
    acked.push(contents(&store));
    (vfs, store, log, acked)
}

#[test]
fn faulted_commit_recovers_an_acknowledged_state() {
    for op in [FaultOp::Append, FaultOp::Sync] {
        for mode in [FaultMode::Fail, FaultMode::Torn, FaultMode::SilentTorn] {
            for seed in 0..8u64 {
                let (base, mut store, mut log, acked) = committed_world();
                let last_acked = acked.last().unwrap().clone();
                store.insert_literal("b:3", "bundleName", "Pharmacy");
                store.insert_literal("b:3", "annotation", "unacked batch");
                let attempted = contents(&store);

                let config = FaultConfig::new(op, mode, 0, seed).halting();
                let vfs = FaultVfs::new(base, config);
                let result = log.commit(&vfs, &mut store);
                assert!(vfs.fault_fired(), "{op:?}/{mode:?}/{seed}");

                // Reboot: recover from whatever the crash left behind.
                let disk = vfs.into_inner();
                let (recovered, _, _) = TripleStore::open_logged(&disk, snap())
                    .unwrap_or_else(|e| panic!("{op:?}/{mode:?}/{seed}: reopen failed: {e}"));
                recovered.check_invariants();
                let got = contents(&recovered);

                match result {
                    // The commit was not acknowledged: the previous acked
                    // state must survive. (If the batch's bytes all landed
                    // before the fault, recovering the attempted batch is
                    // also sound — it is complete, not partial.)
                    Err(_) => assert!(
                        got == last_acked || got == attempted,
                        "{op:?}/{mode:?}/{seed}: lost an acknowledged commit"
                    ),
                    // The disk lied (SilentTorn sync): the commit was
                    // acknowledged but may not be durable. Recovery must
                    // still land on a complete batch boundary.
                    Ok(_) => assert!(
                        got == attempted || got == last_acked,
                        "{op:?}/{mode:?}/{seed}: partial batch after lying disk"
                    ),
                }
            }
        }
    }
}

#[test]
fn repair_after_a_failed_commit_discards_the_suspect_tail() {
    // A torn append can land every byte of the batch's frames and still
    // report failure: the surviving frames are CRC-valid and
    // seq-contiguous, so a plain reopen may adopt a batch the caller was
    // told was refused. After repair the refusal is authoritative: only
    // the last acknowledged state is recoverable.
    for op in [FaultOp::Append, FaultOp::Sync] {
        for mode in [FaultMode::Fail, FaultMode::Torn] {
            for seed in 0..16u64 {
                let (base, mut store, mut log, acked) = committed_world();
                let last_acked = acked.last().unwrap().clone();
                store.insert_literal("b:3", "bundleName", "Pharmacy");
                store.insert_literal("b:3", "annotation", "refused batch");

                let config = FaultConfig::new(op, mode, 0, seed);
                let vfs = FaultVfs::new(base, config);
                assert!(
                    log.commit(&vfs, &mut store).is_err(),
                    "{op:?}/{mode:?}/{seed}: commit should fail"
                );
                log.repair(&vfs)
                    .unwrap_or_else(|e| panic!("{op:?}/{mode:?}/{seed}: repair failed: {e}"));

                let disk = vfs.into_inner();
                let (recovered, _, _) = TripleStore::open_logged(&disk, snap())
                    .unwrap_or_else(|e| panic!("{op:?}/{mode:?}/{seed}: reopen failed: {e}"));
                recovered.check_invariants();
                assert_eq!(
                    contents(&recovered),
                    last_acked,
                    "{op:?}/{mode:?}/{seed}: a refused batch survived repair"
                );
            }
        }
    }
}

#[test]
fn faulted_compaction_recovers_an_acknowledged_state() {
    // Compaction issues: write(tmp-snap), sync, rename, sync_dir for the
    // snapshot install, then the same quartet for the log reset. Fault
    // every one of those eight steps in every mode.
    for op in [FaultOp::Write, FaultOp::Sync, FaultOp::Rename, FaultOp::SyncDir] {
        for index in [0u64, 1] {
            for mode in [FaultMode::Fail, FaultMode::Torn, FaultMode::SilentTorn] {
                for seed in 0..4u64 {
                    let (base, mut store, mut log, acked) = committed_world();
                    let last_acked = acked.last().unwrap().clone();

                    let config = FaultConfig::new(op, mode, index, seed).halting();
                    let vfs = FaultVfs::new(base, config);
                    let result = log.compact(&vfs, &mut store);
                    if !vfs.fault_fired() {
                        // This step count wasn't reached (e.g. the run
                        // errored before the second rename).
                        continue;
                    }

                    let disk = vfs.into_inner();
                    let (recovered, _, _) = TripleStore::open_logged(&disk, snap())
                        .unwrap_or_else(|e| {
                            panic!("{op:?}#{index}/{mode:?}/{seed}: reopen failed: {e}")
                        });
                    recovered.check_invariants();
                    let got = contents(&recovered);
                    // Compaction rewrites the same acknowledged state; no
                    // matter where it dies — or lies — recovery must land
                    // on exactly that state.
                    assert!(
                        got == last_acked,
                        "{op:?}#{index}/{mode:?}/{seed}: recovered wrong state\n\
                         (compact {})",
                        if result.is_ok() { "acked" } else { "failed" }
                    );
                }
            }
        }
    }
}

#[test]
fn every_byte_truncation_of_the_log_recovers_a_commit_boundary() {
    let (vfs, _, _, acked) = committed_world();
    let wal_file = trim::StoreLog::wal_path(snap());
    let full = vfs.bytes(&wal_file).unwrap().to_vec();

    for cut in 0..=full.len() {
        let disk = vfs.clone();
        disk.write(&wal_file, &full[..cut]).unwrap();
        let (recovered, _, _) = TripleStore::open_logged(&disk, snap())
            .unwrap_or_else(|e| panic!("cut at byte {cut}: reopen failed: {e}"));
        recovered.check_invariants();
        let got = contents(&recovered);
        assert!(
            acked.contains(&got),
            "cut at byte {cut}: recovered state is not an acknowledged commit"
        );
        // Monotone: a longer surviving prefix never recovers less.
        if cut == full.len() {
            assert_eq!(&got, acked.last().unwrap());
        }
    }
}

#[test]
fn every_byte_truncation_after_compaction_recovers_the_snapshot() {
    let (vfs, mut store, mut log, _) = committed_world();
    log.compact(&vfs, &mut store).unwrap();
    store.insert_literal("post", "compact", "commit");
    log.commit(&vfs, &mut store).unwrap();
    let with_tail = contents(&store);
    let compacted: State = with_tail
        .iter()
        .filter(|row| row.0 != "post")
        .cloned()
        .collect();

    let wal_file = trim::StoreLog::wal_path(snap());
    let full = vfs.bytes(&wal_file).unwrap().to_vec();
    for cut in 0..=full.len() {
        let disk = vfs.clone();
        disk.write(&wal_file, &full[..cut]).unwrap();
        let (recovered, _, _) = TripleStore::open_logged(&disk, snap()).unwrap();
        let got = contents(&recovered);
        assert!(
            got == with_tail || got == compacted,
            "cut at byte {cut}: not a commit boundary of the new generation"
        );
    }
}
