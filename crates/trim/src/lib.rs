//! `trim` — TRIM, the Triple Manager.
//!
//! TRIM is the storage sub-component of the SLIM architecture (paper
//! §4.3–4.4, Figure 9): superimposed model, schema, and instance data are
//! all represented uniformly as RDF-style **triples** — *(resource,
//! property, value)* — and every higher layer (the metamodel, the SLIM
//! Store, application DMIs) manipulates those triples through this crate.
//!
//! The paper specifies TRIM's operation surface directly:
//!
//! > "Through TRIM, the DMI can **create**, **remove**, **persist**
//! > (through XML files), **query**, and create simple **views** over the
//! > underlying triples. Query is specified by **selection**, where one or
//! > more of the triple fields is fixed, and the result is a set of
//! > triples. A view is specified by selecting a resource …, where all
//! > triples that can be **reached** from this resource are returned."
//!
//! This crate implements exactly that surface:
//!
//! * [`AtomTable`] — string interning, so a triple is three machine words
//!   ([`Triple`] is `Copy`) and repeated resource/property names cost one
//!   allocation total;
//! * [`TripleStore`] — a set of triples held in three sorted permutation
//!   indexes (SPO, POS, OSP) so a selection query with *any* combination
//!   of fixed fields is a single membership probe, prefix range scan, or
//!   full scan — the [`plan`] module's selection table, exposed through
//!   [`TripleStore::explain`];
//! * [`TriplePattern`] selection queries and [`TripleStore::view`]
//!   reachability views;
//! * XML persistence ([`TripleStore::to_xml`] / [`TripleStore::from_xml`])
//!   using `xmlkit`;
//! * a [`Journal`] of changes with undo, so DMIs can implement atomic
//!   multi-triple operations;
//! * [`naive::NaiveStore`] — the unindexed scan baseline used by the E9
//!   ablation benchmark.
//!
//! # Example
//!
//! ```
//! use trim::TripleStore;
//!
//! let mut store = TripleStore::new();
//! let b1 = store.fresh_resource("Bundle");
//! let name = store.atom("bundleName");
//! let label = store.literal_value("John Smith");
//! store.insert(b1, name, label);
//!
//! // Selection query: fix the property field.
//! let pattern = TripleStore::pattern().with_property(name);
//! let hits = store.select(&pattern);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(store.value_str(hits[0].object), Some("John Smith"));
//! ```

pub mod atom;
pub mod conj;
pub mod error;
pub mod journal;
pub mod naive;
pub mod persist;
pub mod plan;
pub mod snapshot;
pub mod store;
pub mod view;
pub mod wal;

pub use atom::{Atom, AtomTable};
pub use conj::{naive_join, AtomTerm, ConjError, ConjPattern, ConjPlan, ConjQuery, ValueTerm, Var};
pub use error::TrimError;
pub use journal::{Change, Journal, Revision};
pub use naive::{NaiveStore, NaiveTriple};
pub use plan::{Access, IndexKind, PatternShape, Plan};
pub use snapshot::{
    PublishPath, SnapBinding, SnapPattern, SnapTerm, SnapTriple, SnapValue, Snapshot,
    SnapshotPublisher,
};
pub use store::{StoreStats, Triple, TriplePattern, TripleStore, Value};
pub use wal::{verify_frame_payload, CommitOutcome, FrameSummary, LogReport, StoreLog};
