//! Snapshot-isolated read views over a [`TripleStore`].
//!
//! A concurrent front-end (the `slimserve` crate) has one writer thread
//! that owns the mutable [`TripleStore`] and many reader sessions that
//! must see a *consistent* state without blocking the writer. Atoms are
//! indexes into the writer's private interning table, so a reader view
//! cannot share `Triple`s — instead a [`Snapshot`] holds triples
//! **resolved to strings**, fully self-contained and `Send + Sync`.
//!
//! Publishing is copy-on-write: a [`SnapshotPublisher`] keeps a large
//! immutable base (`Arc<Vec<SnapTriple>>`, SPO-sorted) shared by every
//! outstanding snapshot, plus a small adds/dels delta rebuilt from the
//! store's [`Journal`] after each commit. Readers holding old snapshots
//! keep the base alive for free; the writer only pays O(delta) per
//! publish until the delta grows past [`SnapshotPublisher::FOLD_LIMIT`],
//! at which point it folds into a fresh base.
//!
//! The publisher trusts the journal suffix only while the journal can
//! vouch for it: if history was truncated past the last published
//! revision, or an undo rewound *below* it (detected through the
//! journal's dedicated snapshot low-water channel — the same contract
//! [`StoreLog::commit`] uses on its own channel), the delta is no longer
//! the difference between the published base and the live store, and
//! the publisher falls back to a full rebuild. A rebuild is always safe
//! — only slower.
//!
//! [`StoreLog::commit`]: crate::wal::StoreLog::commit

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use crate::journal::{Change, Revision};
use crate::store::{TripleStore, Value};

/// A resolved triple object: literal text or a resource name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SnapValue {
    /// A literal string value.
    Literal(String),
    /// A reference to another resource, by name.
    Resource(String),
}

impl SnapValue {
    /// The underlying text, literal or resource name alike.
    pub fn text(&self) -> &str {
        match self {
            SnapValue::Literal(s) | SnapValue::Resource(s) => s,
        }
    }
}

/// One fully-resolved triple, self-contained (no atom table needed).
/// Derived `Ord` is (subject, property, object) — SPO order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapTriple {
    pub subject: String,
    pub property: String,
    pub object: SnapValue,
}

impl SnapTriple {
    fn resolve(store: &TripleStore, t: crate::store::Triple) -> Self {
        let object = match t.object {
            Value::Literal(a) => SnapValue::Literal(store.resolve(a).to_string()),
            Value::Resource(a) => SnapValue::Resource(store.resolve(a).to_string()),
        };
        SnapTriple {
            subject: store.resolve(t.subject).to_string(),
            property: store.resolve(t.property).to_string(),
            object,
        }
    }
}

type Delta = std::collections::BTreeSet<SnapTriple>;

/// An immutable, consistent view of a store at one revision.
///
/// Cheap to clone (three `Arc`s and a counter); safe to ship across
/// threads; never blocks or observes the writer. Logically it is
/// `base ∪ adds − dels` where `adds` and `dels` are disjoint from each
/// other and small relative to `base`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    base: Arc<Vec<SnapTriple>>,
    adds: Arc<Delta>,
    dels: Arc<Delta>,
    revision: Revision,
}

impl Snapshot {
    /// An empty snapshot at revision zero.
    pub fn empty() -> Self {
        Snapshot {
            base: Arc::new(Vec::new()),
            adds: Arc::new(Delta::new()),
            dels: Arc::new(Delta::new()),
            revision: Revision::start(),
        }
    }

    /// The store revision this snapshot reflects.
    pub fn revision(&self) -> Revision {
        self.revision
    }

    /// Number of triples visible in this snapshot.
    pub fn len(&self) -> usize {
        self.base.len() + self.adds.len() - self.dels.len()
    }

    /// True if no triples are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn in_base(&self, t: &SnapTriple) -> bool {
        self.base.binary_search(t).is_ok()
    }

    /// Membership probe: `O(log n)` against base and delta.
    pub fn contains(&self, t: &SnapTriple) -> bool {
        self.adds.contains(t) || (self.in_base(t) && !self.dels.contains(t))
    }

    /// Iterate every visible triple in (subject, property, object) order —
    /// a sorted merge of the base (minus deletions) with the additions.
    pub fn iter(&self) -> impl Iterator<Item = &SnapTriple> {
        let mut base = self.base.iter().filter(|t| !self.dels.contains(*t)).peekable();
        let mut adds = self.adds.iter().peekable();
        std::iter::from_fn(move || match (base.peek(), adds.peek()) {
            (Some(b), Some(a)) => {
                if *b <= *a {
                    base.next()
                } else {
                    adds.next()
                }
            }
            (Some(_), None) => base.next(),
            (None, _) => adds.next(),
        })
    }

    /// All visible triples for one subject, in (property, object) order —
    /// the subject-bound range scan readers use, without touching the
    /// writer's indexes.
    pub fn scan_subject<'a>(&'a self, subject: &'a str) -> impl Iterator<Item = &'a SnapTriple> {
        let start = self.base.partition_point(|t| t.subject.as_str() < subject);
        let base_range = self.base[start..]
            .iter()
            .take_while(move |t| t.subject == subject)
            .filter(|t| !self.dels.contains(*t));
        let lo = SnapTriple {
            subject: subject.to_string(),
            property: String::new(),
            object: SnapValue::Literal(String::new()),
        };
        let adds_range = self
            .adds
            .range((Bound::Included(lo), Bound::Unbounded))
            .take_while(move |t| t.subject == subject);
        // Both halves are SPO-sorted and disjoint; a merge keeps order.
        let mut base_range = base_range.peekable();
        let mut adds_range = adds_range.peekable();
        std::iter::from_fn(move || match (base_range.peek(), adds_range.peek()) {
            (Some(b), Some(a)) => {
                if *b <= *a {
                    base_range.next()
                } else {
                    adds_range.next()
                }
            }
            (Some(_), None) => base_range.next(),
            (None, _) => adds_range.next(),
        })
    }

    /// Solve a conjunctive query against this snapshot without touching
    /// the writer: each pattern's candidates come from the subject-bound
    /// scan (or the sorted merge iterator), and candidate sets are then
    /// combined smallest-first by sort-merge joins on their shared
    /// variables — the snapshot-level counterpart of
    /// [`crate::conj::ConjQuery::solve`], working on resolved strings
    /// instead of atoms. Results are sorted and deduplicated.
    pub fn join(&self, patterns: &[SnapPattern]) -> Vec<SnapBinding> {
        if patterns.is_empty() {
            return Vec::new();
        }
        // Per-pattern candidate bindings plus the variable set each binds.
        let mut parts: Vec<(Vec<String>, Vec<SnapBinding>)> =
            patterns.iter().map(|p| (p.var_names(), self.pattern_bindings(p))).collect();
        // Fold smallest-first, preferring patterns that share a variable
        // with what is already joined, so cross products only happen for
        // genuinely disconnected queries.
        let start = parts
            .iter()
            .enumerate()
            .min_by_key(|(i, (_, b))| (b.len(), *i))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (mut vars, mut acc) = parts.remove(start);
        while !parts.is_empty() {
            let next = parts
                .iter()
                .enumerate()
                .min_by_key(|(i, (pv, b))| {
                    let disconnected = !pv.iter().any(|v| vars.contains(v));
                    (disconnected, b.len(), *i)
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            let (pv, cand) = parts.remove(next);
            let shared: Vec<String> =
                pv.iter().filter(|v| vars.contains(*v)).cloned().collect();
            acc = merge_join(acc, cand, &shared);
            for v in pv {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        acc.sort_unstable();
        acc.dedup();
        acc
    }

    /// All bindings one pattern admits, subject-bound scans when possible.
    fn pattern_bindings(&self, p: &SnapPattern) -> Vec<SnapBinding> {
        let mut out = Vec::new();
        let mut try_bind = |t: &SnapTriple| {
            if let Some(b) = p.bind(t) {
                out.push(b);
            }
        };
        match &p.subject {
            SnapTerm::Const(SnapValue::Resource(s)) => {
                for t in self.scan_subject(s) {
                    try_bind(t);
                }
            }
            SnapTerm::Const(SnapValue::Literal(_)) => {} // never a subject
            SnapTerm::Var(_) => {
                for t in self.iter() {
                    try_bind(t);
                }
            }
        }
        out
    }

    /// Order-insensitive-free digest of the visible triples: FNV-1a over
    /// the canonical (SPO-sorted) iteration. Two snapshots with the same
    /// visible triples digest identically regardless of base/delta split.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h ^= 0xff;
            h = h.wrapping_mul(PRIME);
        };
        for t in self.iter() {
            eat(t.subject.as_bytes());
            eat(t.property.as_bytes());
            match &t.object {
                SnapValue::Literal(s) => {
                    eat(b"L");
                    eat(s.as_bytes());
                }
                SnapValue::Resource(s) => {
                    eat(b"R");
                    eat(s.as_bytes());
                }
            }
        }
        h
    }
}

/// One variable assignment of a snapshot join: variable name → value.
pub type SnapBinding = BTreeMap<String, SnapValue>;

/// One position of a [`SnapPattern`]: a constant or a named variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapTerm {
    /// A fixed value. In subject/property position only
    /// `SnapValue::Resource` can match.
    Const(SnapValue),
    /// A shared variable, joined by name across patterns.
    Var(String),
}

impl SnapTerm {
    /// A resource-name constant.
    pub fn res(name: &str) -> Self {
        SnapTerm::Const(SnapValue::Resource(name.to_string()))
    }

    /// A literal constant.
    pub fn lit(text: &str) -> Self {
        SnapTerm::Const(SnapValue::Literal(text.to_string()))
    }

    /// A variable.
    pub fn var(name: &str) -> Self {
        SnapTerm::Var(name.to_string())
    }
}

/// One triple pattern of a snapshot-level conjunctive query. Variables in
/// subject/property position bind `SnapValue::Resource` names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapPattern {
    pub subject: SnapTerm,
    pub property: SnapTerm,
    pub object: SnapTerm,
}

impl SnapPattern {
    /// Shorthand constructor.
    pub fn new(subject: SnapTerm, property: SnapTerm, object: SnapTerm) -> Self {
        SnapPattern { subject, property, object }
    }

    /// The distinct variable names this pattern binds, in S/P/O order.
    fn var_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for term in [&self.subject, &self.property, &self.object] {
            if let SnapTerm::Var(n) = term {
                if !names.contains(n) {
                    names.push(n.clone());
                }
            }
        }
        names
    }

    /// Bind this pattern against one triple; `None` on any mismatch,
    /// including a repeated variable taking two different values.
    fn bind(&self, t: &SnapTriple) -> Option<SnapBinding> {
        let mut b = SnapBinding::new();
        let mut take = |term: &SnapTerm, actual: SnapValue| -> bool {
            match term {
                SnapTerm::Const(want) => *want == actual,
                SnapTerm::Var(name) => match b.get(name) {
                    Some(existing) => *existing == actual,
                    None => {
                        b.insert(name.clone(), actual);
                        true
                    }
                },
            }
        };
        if !take(&self.subject, SnapValue::Resource(t.subject.clone())) {
            return None;
        }
        if !take(&self.property, SnapValue::Resource(t.property.clone())) {
            return None;
        }
        if !take(&self.object, t.object.clone()) {
            return None;
        }
        Some(b)
    }
}

/// Sort-merge join of two binding sets on `shared` variable names. With
/// no shared names this degenerates to the cross product (disconnected
/// query), which callers avoid by joining connected patterns first.
fn merge_join(left: Vec<SnapBinding>, right: Vec<SnapBinding>, shared: &[String]) -> Vec<SnapBinding> {
    let key = |b: &SnapBinding| -> Vec<SnapValue> {
        shared.iter().map(|k| b.get(k).cloned().expect("shared key bound")).collect()
    };
    let mut left: Vec<(Vec<SnapValue>, SnapBinding)> =
        left.into_iter().map(|b| (key(&b), b)).collect();
    let mut right: Vec<(Vec<SnapValue>, SnapBinding)> =
        right.into_iter().map(|b| (key(&b), b)).collect();
    left.sort_unstable();
    right.sort_unstable();
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        match left[i].0.cmp(&right[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full group product for this key.
                let k = left[i].0.clone();
                let li = i;
                while i < left.len() && left[i].0 == k {
                    i += 1;
                }
                let rj = j;
                while j < right.len() && right[j].0 == k {
                    j += 1;
                }
                for (_, lb) in &left[li..i] {
                    for (_, rb) in &right[rj..j] {
                        let mut merged = lb.clone();
                        for (name, v) in rb {
                            merged.insert(name.clone(), v.clone());
                        }
                        out.push(merged);
                    }
                }
            }
        }
    }
    out
}

/// Why the last [`SnapshotPublisher::publish`] rebuilt (or didn't) —
/// exposed so tests and the service can assert the fast path is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishPath {
    /// Journal suffix replayed onto the existing base (the fast path).
    Incremental,
    /// Delta grew past the fold limit and was folded into a new base.
    Folded,
    /// Journal could not vouch for the suffix (truncated history or an
    /// undo below the published revision); base rebuilt from the store.
    Rebuilt,
}

/// The writer-side state that turns a live [`TripleStore`] into
/// [`Snapshot`]s. One publisher per store; call
/// [`SnapshotPublisher::publish`] after each durable commit.
#[derive(Debug)]
pub struct SnapshotPublisher {
    base: Arc<Vec<SnapTriple>>,
    adds: Delta,
    dels: Delta,
    last_rev: Revision,
    fold_limit: usize,
}

impl SnapshotPublisher {
    /// Default delta size at which the base is refolded.
    pub const FOLD_LIMIT: usize = 4096;

    /// Build a publisher whose first snapshot is the store's current
    /// state (full resolve).
    pub fn new(store: &mut TripleStore) -> Self {
        let mut p = SnapshotPublisher {
            base: Arc::new(Vec::new()),
            adds: Delta::new(),
            dels: Delta::new(),
            last_rev: Revision::start(),
            fold_limit: Self::FOLD_LIMIT,
        };
        p.rebuild(store);
        p
    }

    /// Override the fold threshold (tests use a tiny one).
    pub fn with_fold_limit(mut self, limit: usize) -> Self {
        self.fold_limit = limit.max(1);
        self
    }

    fn rebuild(&mut self, store: &mut TripleStore) {
        // `TripleStore::iter` yields SPO order and `SnapTriple`'s Ord
        // mirrors it per-field, but atom order is interning order, not
        // lexicographic — so resolved strings still need a sort.
        let mut base: Vec<SnapTriple> =
            store.iter().map(|t| SnapTriple::resolve(store, t)).collect();
        base.sort_unstable();
        self.base = Arc::new(base);
        self.adds.clear();
        self.dels.clear();
        self.last_rev = store.revision();
        store.journal_mut().reset_snapshot_low_water();
    }

    fn apply(&mut self, store: &TripleStore, change: &Change) {
        let t = SnapTriple::resolve(store, change.triple());
        match change {
            Change::Insert(_) => {
                if !self.dels.remove(&t) {
                    self.adds.insert(t);
                }
            }
            Change::Remove(_) => {
                if !self.adds.remove(&t) {
                    self.dels.insert(t);
                }
            }
        }
    }

    /// Publish a snapshot of the store's current state, replaying the
    /// journal suffix since the last publish when the journal can vouch
    /// for it and rebuilding from scratch when it cannot. Returns the
    /// snapshot and which path produced it.
    pub fn publish(&mut self, store: &mut TripleStore) -> (Snapshot, PublishPath) {
        let journal = store.journal();
        let trustworthy = journal.earliest() <= self.last_rev
            && journal.snapshot_low_water() >= self.last_rev
            && store.revision() >= self.last_rev;
        let path = if !trustworthy {
            self.rebuild(store);
            PublishPath::Rebuilt
        } else {
            let changes: Vec<Change> = journal.since(self.last_rev).to_vec();
            for change in &changes {
                self.apply(store, change);
            }
            self.last_rev = store.revision();
            store.journal_mut().reset_snapshot_low_water();
            if self.adds.len() + self.dels.len() > self.fold_limit {
                self.rebuild(store);
                PublishPath::Folded
            } else {
                PublishPath::Incremental
            }
        };
        let snap = Snapshot {
            base: Arc::clone(&self.base),
            adds: Arc::new(self.adds.clone()),
            dels: Arc::new(self.dels.clone()),
            revision: self.last_rev,
        };
        (snap, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn snap_of(store: &mut TripleStore) -> Snapshot {
        SnapshotPublisher::new(store).publish(store).0
    }

    fn store_triples(store: &TripleStore) -> Vec<SnapTriple> {
        let mut v: Vec<SnapTriple> =
            store.iter().map(|t| SnapTriple::resolve(store, t)).collect();
        v.sort_unstable();
        v
    }

    fn assert_matches_store(snap: &Snapshot, store: &TripleStore) {
        let want = store_triples(store);
        let got: Vec<SnapTriple> = snap.iter().cloned().collect();
        assert_eq!(got, want);
        assert_eq!(snap.len(), store.len());
        for t in &want {
            assert!(snap.contains(t));
        }
    }

    #[test]
    fn snapshot_reflects_store_contents() {
        let mut store = TripleStore::new();
        store.insert_literal("b:1", "name", "John");
        store.insert_resource("b:1", "member", "s:1");
        store.insert_literal("s:1", "text", "lab result");
        let snap = snap_of(&mut store);
        assert_matches_store(&snap, &store);
        assert_eq!(snap.scan_subject("b:1").count(), 2);
        assert_eq!(snap.scan_subject("s:1").count(), 1);
        assert_eq!(snap.scan_subject("zzz").count(), 0);
    }

    #[test]
    fn old_snapshots_are_isolated_from_later_writes() {
        let mut store = TripleStore::new();
        store.insert_literal("b:1", "name", "John");
        let mut publisher = SnapshotPublisher::new(&mut store);
        let (before, _) = publisher.publish(&mut store);

        let victim = store.insert_literal("b:1", "ward", "W3");
        store.remove(victim);
        store.insert_literal("b:2", "name", "Mary");
        let (after, path) = publisher.publish(&mut store);

        assert_eq!(path, PublishPath::Incremental);
        assert_eq!(before.len(), 1, "old view must not see new writes");
        assert_eq!(after.len(), 2);
        assert_matches_store(&after, &store);
        assert!(!after.contains(&SnapTriple {
            subject: "b:1".into(),
            property: "ward".into(),
            object: SnapValue::Literal("W3".into()),
        }));
    }

    #[test]
    fn incremental_publish_matches_full_rebuild() {
        let mut store = TripleStore::new();
        let mut publisher = SnapshotPublisher::new(&mut store);
        for i in 0..40 {
            store.insert_literal(&format!("b:{}", i % 7), "seq", &i.to_string());
            if i % 3 == 0 {
                let pat = TripleStore::pattern()
                    .with_subject(store.atom(&format!("b:{}", i % 7)));
                let hits = store.select(&pat);
                if let Some(&first) = hits.first() {
                    store.remove(first);
                }
            }
            let (snap, _) = publisher.publish(&mut store);
            assert_matches_store(&snap, &store);
            assert_eq!(snap.digest(), snap_of(&mut store).digest(), "digest split-invariant");
        }
    }

    #[test]
    fn delta_folds_into_base_past_the_limit() {
        let mut store = TripleStore::new();
        let mut publisher = SnapshotPublisher::new(&mut store).with_fold_limit(4);
        for i in 0..4 {
            store.insert_literal("b:1", "seq", &i.to_string());
        }
        let (_, path) = publisher.publish(&mut store);
        assert_eq!(path, PublishPath::Incremental);
        store.insert_literal("b:1", "seq", "last");
        let (snap, path) = publisher.publish(&mut store);
        assert_eq!(path, PublishPath::Folded);
        assert_matches_store(&snap, &store);
        assert!(publisher.adds.is_empty() && publisher.dels.is_empty());
    }

    #[test]
    fn undo_below_published_revision_forces_rebuild() {
        let mut store = TripleStore::new();
        store.insert_literal("b:1", "name", "John");
        let mark = store.revision();
        store.insert_literal("b:1", "ward", "W3");
        let mut publisher = SnapshotPublisher::new(&mut store);

        store.undo_to(mark).unwrap();
        store.insert_literal("b:1", "ward", "W4");
        let (snap, path) = publisher.publish(&mut store);
        assert_eq!(path, PublishPath::Rebuilt, "undo crossed the published revision");
        assert_matches_store(&snap, &store);
        // The rebuild re-arms the watermark: publishing resumes the
        // fast path instead of rebuilding forever.
        store.insert_literal("b:2", "name", "Mary");
        let (snap, path) = publisher.publish(&mut store);
        assert_eq!(path, PublishPath::Incremental);
        assert_matches_store(&snap, &store);
    }

    #[test]
    fn truncated_history_forces_rebuild() {
        let mut store = TripleStore::new();
        let mut publisher = SnapshotPublisher::new(&mut store);
        store.insert_literal("b:1", "name", "John");
        store.journal_mut().truncate();
        store.insert_literal("b:2", "name", "Mary");
        // last_rev (0) predates retained history: suffix unverifiable.
        let (snap, path) = publisher.publish(&mut store);
        assert_eq!(path, PublishPath::Rebuilt);
        assert_matches_store(&snap, &store);
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn takes_send_sync<T: Send + Sync + 'static>(_: T) {}
        takes_send_sync(Snapshot::empty());
        let snap = snap_of(&mut TripleStore::new());
        let handle = std::thread::spawn(move || snap.len());
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn snapshot_join_runs_conjunctive_queries() {
        let mut store = TripleStore::new();
        store.insert_resource("b:1", "member", "s:1");
        store.insert_resource("b:1", "member", "s:2");
        store.insert_resource("b:2", "member", "s:3");
        store.insert_literal("s:1", "name", "alpha");
        store.insert_literal("s:2", "name", "beta");
        store.insert_literal("s:3", "name", "alpha");
        let snap = snap_of(&mut store);

        // Scraps in bundle b:1 with their names — 2-pattern join.
        let rows = snap.join(&[
            SnapPattern::new(SnapTerm::res("b:1"), SnapTerm::res("member"), SnapTerm::var("s")),
            SnapPattern::new(SnapTerm::var("s"), SnapTerm::res("name"), SnapTerm::var("n")),
        ]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["s"], SnapValue::Resource("s:1".into()));
        assert_eq!(rows[0]["n"], SnapValue::Literal("alpha".into()));
        assert_eq!(rows[1]["s"], SnapValue::Resource("s:2".into()));

        // Join on a literal: subjects sharing the same name.
        let rows = snap.join(&[
            SnapPattern::new(SnapTerm::var("a"), SnapTerm::res("name"), SnapTerm::var("n")),
            SnapPattern::new(SnapTerm::var("b"), SnapTerm::res("name"), SnapTerm::var("n")),
        ]);
        // (s1,s1) (s1,s3) (s2,s2) (s3,s1) (s3,s3)
        assert_eq!(rows.len(), 5);

        // The old snapshot keeps answering the same join after new writes.
        let mut publisher = SnapshotPublisher::new(&mut store);
        let (before, _) = publisher.publish(&mut store);
        store.insert_resource("b:1", "member", "s:9");
        store.insert_literal("s:9", "name", "gamma");
        let (after, _) = publisher.publish(&mut store);
        let q = [
            SnapPattern::new(SnapTerm::res("b:1"), SnapTerm::res("member"), SnapTerm::var("s")),
            SnapPattern::new(SnapTerm::var("s"), SnapTerm::res("name"), SnapTerm::var("n")),
        ];
        assert_eq!(before.join(&q).len(), 2);
        assert_eq!(after.join(&q).len(), 3);
    }

    #[test]
    fn snapshot_join_handles_edge_shapes() {
        let mut store = TripleStore::new();
        store.insert_resource("a", "p", "a");
        store.insert_resource("a", "p", "b");
        let snap = snap_of(&mut store);
        // Repeated variable within one pattern: diagonal only.
        let rows = snap.join(&[SnapPattern::new(
            SnapTerm::var("x"),
            SnapTerm::res("p"),
            SnapTerm::var("x"),
        )]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["x"], SnapValue::Resource("a".into()));
        // Empty pattern list and unmatched constants yield nothing.
        assert!(snap.join(&[]).is_empty());
        assert!(snap
            .join(&[SnapPattern::new(
                SnapTerm::lit("oops"),
                SnapTerm::res("p"),
                SnapTerm::var("x"),
            )])
            .is_empty());
    }

    #[test]
    fn scan_subject_merges_base_and_delta_in_order() {
        let mut store = TripleStore::new();
        store.insert_literal("b:1", "alpha", "1");
        store.insert_literal("b:1", "omega", "2");
        let mut publisher = SnapshotPublisher::new(&mut store);
        publisher.publish(&mut store);
        store.insert_literal("b:1", "middle", "3");
        let (snap, _) = publisher.publish(&mut store);
        let props: Vec<&str> =
            snap.scan_subject("b:1").map(|t| t.property.as_str()).collect();
        assert_eq!(props, ["alpha", "middle", "omega"]);
    }
}
