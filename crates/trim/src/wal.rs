//! Logged persistence: the write-ahead log as the store's commit path.
//!
//! Rewriting the whole sealed XML artifact on every save is O(store);
//! with a log in front of it, a commit costs O(changes since the last
//! commit): the journal suffix is encoded as one CRC-framed record batch
//! and appended with a single sync (group commit, [`slimio::Wal`]).
//! The full `to_xml` rewrite survives as the *compaction* step, run
//! periodically to bound log length and restart time.
//!
//! Recovery = snapshot + replay:
//!
//! 1. load the snapshot (atomic, sealed — exactly as before),
//! 2. open the log, salvaging a torn tail down to the longest CRC-valid
//!    frame prefix,
//! 3. replay the surviving frames' operations onto the store.
//!
//! The result is the state as of the last acknowledged commit — never a
//! partial batch, because a batch is one frame and a frame is atomic
//! under CRC.
//!
//! Compaction is crash-consistent by ordering + binding: the new
//! snapshot is installed atomically *first*, then the log is reset. The
//! log header carries the CRC of the snapshot generation it extends
//! ([`slimio::Wal`] "bind"), so a crash between the two steps leaves a
//! stale log that the next open detects and discards instead of
//! replaying old operations over the newer snapshot.
//!
//! [`StoreLog`] deliberately does not own the [`TripleStore`]: the
//! SLIMPad DMI embeds its store, and the pad file format embeds the
//! store's XML inside a larger document. Callers that snapshot a
//! different payload (the pad) use [`StoreLog::compact_with`]; the aux
//! record channel ([`StoreLog::commit_with_aux`]) lets them ride small
//! sidecar blobs (the mark store) in the same committed frame.

use crate::journal::{Change, Revision};
use crate::store::{Triple, TripleStore, Value};
use crate::TrimError;
use slimio::{crc32, Vfs, Wal, WalFrame, WalReport};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Record tags inside a frame payload.
const REC_INSERT: u8 = 0;
const REC_REMOVE: u8 = 1;
const REC_AUX: u8 = 2;

/// Object kind bytes.
const OBJ_LITERAL: u8 = 0;
const OBJ_RESOURCE: u8 = 1;

/// Compact when the log grows past this many bytes (callers can tune it
/// with [`StoreLog::set_compact_threshold`]).
const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

/// What [`StoreLog::attach`] (and [`TripleStore::open_logged`]) found:
/// the low-level log salvage report plus the replay accounting.
#[derive(Debug, Clone, Default)]
pub struct LogReport {
    /// The frame-level open/salvage report.
    pub wal: WalReport,
    /// Frames whose operations were replayed onto the store.
    pub frames_replayed: usize,
    /// Individual insert/remove operations replayed.
    pub ops_replayed: usize,
    /// Aux records recovered from the log, last write per key.
    pub aux: BTreeMap<String, Vec<u8>>,
}

impl LogReport {
    /// True when the open found a pristine snapshot+log pair.
    pub fn is_clean(&self) -> bool {
        self.wal.is_clean() || (self.wal.created && self.wal.notes.is_empty())
    }
}

impl std::fmt::Display for LogReport {
    /// Status-bar summary of a recovery, e.g.
    /// `replayed 2 frames (9 ops); dropped 7 torn tail bytes`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.wal.created {
            write!(f, "started a fresh log")?;
        } else {
            write!(f, "replayed {} frames ({} ops)", self.frames_replayed, self.ops_replayed)?;
        }
        if !self.aux.is_empty() {
            write!(f, ", {} aux record(s)", self.aux.len())?;
        }
        if self.wal.torn_bytes > 0 {
            write!(f, "; dropped {} torn tail bytes", self.wal.torn_bytes)?;
        }
        if self.wal.discarded_frames > 0 {
            write!(f, "; discarded {} stale frames", self.wal.discarded_frames)?;
        }
        if self.wal.swept_temp {
            write!(f, "; swept a stale temp file")?;
        }
        for note in &self.wal.notes {
            write!(f, "; {note}")?;
        }
        Ok(())
    }
}

/// The result of a [`StoreLog::commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Nothing changed since the last commit; nothing was written.
    Clean,
    /// One frame holding `ops` store operations was group-committed with
    /// sequence number `seq`.
    Committed { seq: u64, ops: usize },
    /// The delta since the last commit could not be derived — an undo
    /// crossed the commit boundary, or the journal was truncated.
    /// **Nothing was persisted**: the caller must run a compaction
    /// ([`StoreLog::compact`] or [`StoreLog::compact_with`]) to make the
    /// current state durable.
    NeedsFullSnapshot,
}

/// A write-ahead log attached to a snapshot file, tracking which store
/// revision is durably committed.
#[derive(Debug, Clone)]
pub struct StoreLog {
    snapshot_path: PathBuf,
    wal: Wal,
    committed: Revision,
    compact_threshold: u64,
}

impl StoreLog {
    /// The log file that pairs with a snapshot: `pad.xml` → `pad.xml.wal`
    /// (a sibling, so both live on the same file system).
    pub fn wal_path(snapshot_path: &Path) -> PathBuf {
        let mut name =
            snapshot_path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".wal");
        snapshot_path.with_file_name(name)
    }

    /// Open the log paired with `snapshot_path` and replay its frames
    /// onto `store` (which the caller loaded from the snapshot, or
    /// created fresh if no snapshot exists). Returns the attached log
    /// and a report of what recovery found.
    ///
    /// After this call `store` holds the last-committed state, its
    /// journal is truncated (replay is not undoable), and subsequent
    /// [`StoreLog::commit`] calls persist exactly the journal suffix.
    pub fn attach(
        vfs: &dyn Vfs,
        snapshot_path: &Path,
        store: &mut TripleStore,
    ) -> Result<(StoreLog, LogReport), TrimError> {
        Self::attach_impl(vfs, snapshot_path, store, true)
    }

    /// [`StoreLog::attach`] with tail-frame CRC verification disabled —
    /// exists only for the slimcheck mutation harness.
    #[doc(hidden)]
    pub fn testonly_attach_skip_tail_crc(
        vfs: &dyn Vfs,
        snapshot_path: &Path,
        store: &mut TripleStore,
    ) -> Result<(StoreLog, LogReport), TrimError> {
        Self::attach_impl(vfs, snapshot_path, store, false)
    }

    fn attach_impl(
        vfs: &dyn Vfs,
        snapshot_path: &Path,
        store: &mut TripleStore,
        verify_crc: bool,
    ) -> Result<(StoreLog, LogReport), TrimError> {
        let bind = snapshot_bind(vfs, snapshot_path)?;
        let wal_path = Self::wal_path(snapshot_path);
        let (wal, frames, wal_report) = if verify_crc {
            Wal::open(vfs, &wal_path, bind)?
        } else {
            Wal::testonly_open_skip_tail_crc(vfs, &wal_path, bind)?
        };
        let mut report = LogReport { wal: wal_report, ..LogReport::default() };
        report.frames_replayed = frames.len();
        report.ops_replayed = replay_frames(store, &frames, &mut report.aux)?;
        // Replay restores committed state; it is not an edit the user can
        // undo, and the commit boundary starts here.
        store.journal_mut().truncate();
        // Frames may have interned ids the snapshot did not hold; keep
        // future mints past every name ever seen.
        store.resync_fresh_counter();
        let log = StoreLog {
            snapshot_path: snapshot_path.to_path_buf(),
            wal,
            committed: store.revision(),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        };
        Ok((log, report))
    }

    /// Group-commit every store change since the last commit as one log
    /// frame: one append, one sync, regardless of how many operations
    /// the batch holds. See [`CommitOutcome`] for the three results.
    pub fn commit(
        &mut self,
        vfs: &dyn Vfs,
        store: &mut TripleStore,
    ) -> Result<CommitOutcome, TrimError> {
        self.commit_with_aux(vfs, store, &[])
    }

    /// [`StoreLog::commit`] plus sidecar aux records riding in the same
    /// frame (e.g. the pad's mark-store XML). Aux records replay
    /// last-write-wins into [`LogReport::aux`] on recovery.
    pub fn commit_with_aux(
        &mut self,
        vfs: &dyn Vfs,
        store: &mut TripleStore,
        aux: &[(&str, &[u8])],
    ) -> Result<CommitOutcome, TrimError> {
        let rev = store.revision();
        {
            let journal = store.journal();
            // The journal suffix after `committed` is the delta between
            // the persisted state and the current one only if (a) history
            // still reaches back to `committed` and (b) no undo rewound
            // below it since the last commit. Otherwise only a full
            // snapshot can re-establish durability.
            if journal.earliest() > self.committed || journal.low_water() < self.committed {
                return Ok(CommitOutcome::NeedsFullSnapshot);
            }
        }
        let (payload, ops) = {
            let changes = store.journal().since(self.committed);
            if changes.is_empty() && aux.is_empty() {
                return Ok(CommitOutcome::Clean);
            }
            (encode_records(store, changes, aux), changes.len())
        };
        let seq = self.wal.append(vfs, &payload)?;
        self.committed = rev;
        store.journal_mut().reset_low_water();
        Ok(CommitOutcome::Committed { seq, ops })
    }

    /// Truncate any unacknowledged suffix a failed commit's append may
    /// have left on disk, restoring the log to its last acknowledged
    /// length. A torn append can land the doomed frame *fully readable*
    /// — CRC-valid and sequence-contiguous — and a cold reopen cannot
    /// tell it from real history, so a refused batch would silently
    /// become durable at the next restart. Supervisors call this right
    /// after a commit error to make the refusal durable; it is
    /// idempotent and a no-op when the tail is already clean.
    pub fn repair(&mut self, vfs: &dyn Vfs) -> Result<(), TrimError> {
        Ok(self.wal.repair(vfs)?)
    }

    /// Compact: fold the log into a fresh snapshot of the store itself
    /// (canonical sealed XML, atomically installed), then reset the log
    /// to an empty generation bound to that snapshot.
    ///
    /// Crash-consistent at every step: before the snapshot rename the old
    /// (snapshot, log) pair is intact; between snapshot install and log
    /// reset the stale log is detected by its bind and discarded on the
    /// next open; after the reset the pair is the new generation.
    pub fn compact(
        &mut self,
        vfs: &dyn Vfs,
        store: &mut TripleStore,
    ) -> Result<(), TrimError> {
        let xml = store.to_xml();
        self.compact_with(vfs, store, &xml)
    }

    /// [`StoreLog::compact`] with a caller-provided snapshot payload, for
    /// adopters whose snapshot file embeds the store in a larger document
    /// (the pad file). `payload` must be a document that, when reopened
    /// through the caller's load path, reproduces `store`'s current
    /// contents.
    pub fn compact_with(
        &mut self,
        vfs: &dyn Vfs,
        store: &mut TripleStore,
        payload: &str,
    ) -> Result<(), TrimError> {
        let sealed = slimio::seal(payload);
        slimio::install_atomic(vfs, &self.snapshot_path, sealed.as_bytes())?;
        self.wal.reset(vfs, crc32(sealed.as_bytes()))?;
        self.committed = store.revision();
        store.journal_mut().reset_low_water();
        Ok(())
    }

    /// True when the log has grown past the compaction threshold and the
    /// caller should fold it into a snapshot at the next opportunity.
    pub fn should_compact(&self) -> bool {
        self.wal.len_bytes() > self.compact_threshold
    }

    /// Tune the [`StoreLog::should_compact`] threshold (bytes of log).
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        self.compact_threshold = bytes;
    }

    /// The store revision whose effects are durably committed.
    pub fn committed_revision(&self) -> Revision {
        self.committed
    }

    /// Acknowledged log length in bytes (header + committed frames).
    pub fn log_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The snapshot file this log extends.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }
}

/// The bind CRC for the snapshot currently on disk: the CRC32 of the raw
/// file bytes, or of the empty string when no snapshot exists yet. The
/// same value is computed from the sealed payload at compaction time, so
/// snapshot and log agree on the generation they form together.
fn snapshot_bind(vfs: &dyn Vfs, snapshot_path: &Path) -> Result<u32, TrimError> {
    if !vfs.exists(snapshot_path) {
        return Ok(crc32(b""));
    }
    let bytes = vfs.read(snapshot_path).map_err(TrimError::Io)?;
    Ok(crc32(&bytes))
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn push_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

/// Encode a journal suffix (plus aux records) as one frame payload.
fn encode_records(store: &TripleStore, changes: &[Change], aux: &[(&str, &[u8])]) -> Vec<u8> {
    let mut buf = Vec::new();
    for change in changes {
        let (tag, t) = match change {
            Change::Insert(t) => (REC_INSERT, t),
            Change::Remove(t) => (REC_REMOVE, t),
        };
        buf.push(tag);
        push_str(&mut buf, store.resolve(t.subject));
        push_str(&mut buf, store.resolve(t.property));
        match t.object {
            Value::Literal(a) => {
                buf.push(OBJ_LITERAL);
                push_str(&mut buf, store.resolve(a));
            }
            Value::Resource(a) => {
                buf.push(OBJ_RESOURCE);
                push_str(&mut buf, store.resolve(a));
            }
        }
    }
    for (key, value) in aux {
        buf.push(REC_AUX);
        push_str(&mut buf, key);
        push_bytes(&mut buf, value);
    }
    buf
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
    seq: u64,
}

impl<'a> Cursor<'a> {
    fn corrupt(&self, what: &str) -> TrimError {
        TrimError::Corrupt {
            detail: format!(
                "log frame {} is malformed at byte {}: {what}",
                self.seq, self.at
            ),
        }
    }

    fn u8(&mut self) -> Result<u8, TrimError> {
        let b = *self.bytes.get(self.at).ok_or_else(|| self.corrupt("truncated record"))?;
        self.at += 1;
        Ok(b)
    }

    fn blob(&mut self) -> Result<&'a [u8], TrimError> {
        if self.bytes.len() - self.at < 4 {
            return Err(self.corrupt("truncated length prefix"));
        }
        let len =
            u32::from_le_bytes(self.bytes[self.at..self.at + 4].try_into().unwrap()) as usize;
        self.at += 4;
        if self.bytes.len() - self.at < len {
            return Err(self.corrupt("length prefix exceeds record"));
        }
        let out = &self.bytes[self.at..self.at + len];
        self.at += len;
        Ok(out)
    }

    fn str(&mut self) -> Result<&'a str, TrimError> {
        let blob = self.blob()?;
        std::str::from_utf8(blob).map_err(|_| self.corrupt("non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.at >= self.bytes.len()
    }
}

/// What [`verify_frame_payload`] decoded out of one frame payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameSummary {
    pub inserts: usize,
    pub removes: usize,
    /// Aux sidecar keys in record order (duplicates preserved).
    pub aux_keys: Vec<String>,
}

/// Structurally decode one frame payload without a store behind it — the
/// offline fsck path (`wal-verify`). Applies exactly the checks replay
/// would: record tags, length prefixes, UTF-8 strings, object kinds.
/// Returns the record counts, or the same typed corruption error a real
/// recovery would refuse with.
pub fn verify_frame_payload(seq: u64, payload: &[u8]) -> Result<FrameSummary, TrimError> {
    let mut cur = Cursor { bytes: payload, at: 0, seq };
    let mut out = FrameSummary::default();
    while !cur.done() {
        let tag = cur.u8()?;
        match tag {
            REC_INSERT | REC_REMOVE => {
                cur.str()?;
                cur.str()?;
                let kind = cur.u8()?;
                if kind != OBJ_LITERAL && kind != OBJ_RESOURCE {
                    return Err(cur.corrupt(&format!("unknown object kind {kind}")));
                }
                cur.str()?;
                if tag == REC_INSERT {
                    out.inserts += 1;
                } else {
                    out.removes += 1;
                }
            }
            REC_AUX => {
                let key = cur.str()?.to_string();
                cur.blob()?;
                out.aux_keys.push(key);
            }
            other => return Err(cur.corrupt(&format!("unknown record tag {other}"))),
        }
    }
    Ok(out)
}

/// Replay recovered frames onto the store, collecting aux records
/// last-write-wins. Returns the number of store operations applied.
fn replay_frames(
    store: &mut TripleStore,
    frames: &[WalFrame],
    aux: &mut BTreeMap<String, Vec<u8>>,
) -> Result<usize, TrimError> {
    let mut ops = 0;
    for frame in frames {
        let mut cur = Cursor { bytes: &frame.payload, at: 0, seq: frame.seq };
        while !cur.done() {
            let tag = cur.u8()?;
            match tag {
                REC_INSERT | REC_REMOVE => {
                    let s = store.try_atom(cur.str()?)?;
                    let p = store.try_atom(cur.str()?)?;
                    let kind = cur.u8()?;
                    let o = store.try_atom(cur.str()?)?;
                    let object = match kind {
                        OBJ_LITERAL => Value::Literal(o),
                        OBJ_RESOURCE => Value::Resource(o),
                        other => {
                            return Err(cur.corrupt(&format!("unknown object kind {other}")))
                        }
                    };
                    let triple = Triple { subject: s, property: p, object };
                    if tag == REC_INSERT {
                        store.insert(s, p, object);
                    } else {
                        store.remove(triple);
                    }
                    ops += 1;
                }
                REC_AUX => {
                    let key = cur.str()?.to_string();
                    let value = cur.blob()?.to_vec();
                    aux.insert(key, value);
                }
                other => return Err(cur.corrupt(&format!("unknown record tag {other}"))),
            }
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};

    const SNAP: &str = "store.xml";

    fn snap() -> &'static Path {
        Path::new(SNAP)
    }

    fn contents(store: &TripleStore) -> Vec<(String, String, bool, String)> {
        let mut out: Vec<_> = store
            .iter()
            .map(|t| {
                let (is_res, obj) = match t.object {
                    Value::Resource(a) => (true, store.resolve(a).to_string()),
                    Value::Literal(a) => (false, store.resolve(a).to_string()),
                };
                (
                    store.resolve(t.subject).to_string(),
                    store.resolve(t.property).to_string(),
                    is_res,
                    obj,
                )
            })
            .collect();
        out.sort();
        out
    }

    fn reopen(vfs: &mut MemVfs) -> (TripleStore, StoreLog, LogReport) {
        TripleStore::open_logged(vfs, snap()).unwrap()
    }

    #[test]
    fn open_commit_reopen_roundtrip() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, report) = reopen(&mut vfs);
        assert!(report.wal.created);
        store.insert_literal("b:1", "bundleName", "John Smith");
        store.insert_resource("b:1", "nestedBundle", "b:2");
        let outcome = log.commit(&vfs, &mut store).unwrap();
        assert!(matches!(outcome, CommitOutcome::Committed { seq: 0, ops: 2 }));

        let (recovered, log2, report) = reopen(&mut vfs);
        assert_eq!(report.frames_replayed, 1);
        assert_eq!(report.ops_replayed, 2);
        assert_eq!(contents(&recovered), contents(&store));
        assert_eq!(log2.committed_revision(), recovered.revision());
    }

    #[test]
    fn clean_commit_writes_nothing() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("s", "p", "v");
        log.commit(&vfs, &mut store).unwrap();
        let before = log.log_bytes();
        assert_eq!(log.commit(&vfs, &mut store).unwrap(), CommitOutcome::Clean);
        assert_eq!(log.log_bytes(), before);
    }

    #[test]
    fn a_batch_is_one_frame() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        for i in 0..100 {
            store.insert_literal(&format!("s:{i}"), "p", "v");
        }
        let outcome = log.commit(&vfs, &mut store).unwrap();
        assert!(matches!(outcome, CommitOutcome::Committed { seq: 0, ops: 100 }));
        store.insert_literal("one", "more", "row");
        let outcome = log.commit(&vfs, &mut store).unwrap();
        assert!(matches!(outcome, CommitOutcome::Committed { seq: 1, ops: 1 }));
    }

    #[test]
    fn removes_and_set_unique_replay_correctly() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        let s = store.atom("b:1");
        let p = store.atom("bundleName");
        let v1 = store.literal_value("first");
        store.insert(s, p, v1);
        log.commit(&vfs, &mut store).unwrap();
        let v2 = store.literal_value("second");
        store.set_unique(s, p, v2);
        let t = store.insert_literal("x", "y", "z");
        store.remove(t);
        log.commit(&vfs, &mut store).unwrap();

        let (recovered, _, _) = reopen(&mut vfs);
        assert_eq!(contents(&recovered), contents(&store));
        recovered.check_invariants();
    }

    #[test]
    fn undo_within_the_commit_window_commits_the_net_delta() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("keep", "p", "v");
        let mark = store.revision();
        store.insert_literal("oops", "p", "v");
        store.undo_to(mark).unwrap();
        let outcome = log.commit(&vfs, &mut store).unwrap();
        assert!(matches!(outcome, CommitOutcome::Committed { ops: 1, .. }), "{outcome:?}");
        let (recovered, _, _) = reopen(&mut vfs);
        assert_eq!(contents(&recovered), contents(&store));
    }

    #[test]
    fn undo_across_the_commit_boundary_forces_a_snapshot() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("a", "p", "v");
        let mark = store.revision();
        store.insert_literal("b", "p", "v");
        log.commit(&vfs, &mut store).unwrap();
        // Rewind below the committed revision: the journal suffix no
        // longer describes the delta from the persisted state.
        store.undo_to(mark).unwrap();
        store.insert_literal("c", "p", "v");
        let outcome = log.commit(&vfs, &mut store).unwrap();
        assert_eq!(outcome, CommitOutcome::NeedsFullSnapshot);
        // Nothing was persisted by that call; compaction re-establishes
        // durability and subsequent commits are incremental again.
        log.compact(&vfs, &mut store).unwrap();
        let (recovered, mut log2, report) = reopen(&mut vfs);
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(contents(&recovered), contents(&store));
        let mut recovered = recovered;
        recovered.insert_literal("d", "p", "v");
        assert!(matches!(
            log2.commit(&vfs, &mut recovered).unwrap(),
            CommitOutcome::Committed { ops: 1, .. }
        ));
    }

    #[test]
    fn compaction_folds_the_log_and_preserves_state() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        for i in 0..20 {
            store.insert_literal(&format!("s:{i}"), "p", "v");
            log.commit(&vfs, &mut store).unwrap();
        }
        let long_log = log.log_bytes();
        log.compact(&vfs, &mut store).unwrap();
        assert!(log.log_bytes() < long_log);
        let (recovered, _, report) = reopen(&mut vfs);
        assert_eq!(report.frames_replayed, 0, "compacted log must be empty");
        assert_eq!(contents(&recovered), contents(&store));
    }

    #[test]
    fn should_compact_follows_the_threshold() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        log.set_compact_threshold(64);
        assert!(!log.should_compact());
        store.insert_literal("some-subject", "some-property", "some-value");
        log.commit(&vfs, &mut store).unwrap();
        assert!(log.should_compact());
        log.compact(&vfs, &mut store).unwrap();
        assert!(!log.should_compact());
    }

    #[test]
    fn aux_records_ride_the_frame_and_replay_last_wins() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("s", "p", "v");
        log.commit_with_aux(&vfs, &mut store, &[("marks", b"<marks v=1/>")]).unwrap();
        store.insert_literal("s2", "p", "v");
        log.commit_with_aux(&vfs, &mut store, &[("marks", b"<marks v=2/>")]).unwrap();

        let (_, _, report) = reopen(&mut vfs);
        assert_eq!(report.aux.get("marks").map(Vec::as_slice), Some(&b"<marks v=2/>"[..]));
    }

    #[test]
    fn aux_only_commit_is_a_frame() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        let outcome =
            log.commit_with_aux(&vfs, &mut store, &[("marks", b"<m/>")]).unwrap();
        assert!(matches!(outcome, CommitOutcome::Committed { ops: 0, .. }));
        let (_, _, report) = reopen(&mut vfs);
        assert_eq!(report.aux.get("marks").map(Vec::as_slice), Some(&b"<m/>"[..]));
    }

    #[test]
    fn verify_frame_payload_mirrors_replay_checks() {
        let mut store = TripleStore::new();
        let base = store.revision();
        store.insert_literal("b:1", "bundleName", "Ward");
        store.insert_resource("b:1", "nestedBundle", "b:2");
        let t = store.insert_literal("x", "y", "z");
        store.remove(t);
        let changes = store.journal().since(base);
        let payload = encode_records(&store, changes, &[("marks", b"<marks/>")]);
        let summary = verify_frame_payload(0, &payload).unwrap();
        assert_eq!(summary.inserts, 3);
        assert_eq!(summary.removes, 1);
        assert_eq!(summary.aux_keys, vec!["marks".to_string()]);
        // Damage decodes as the same typed refusal replay would raise.
        assert!(matches!(
            verify_frame_payload(0, &payload[..payload.len() - 1]),
            Err(TrimError::Corrupt { .. })
        ));
        assert!(matches!(
            verify_frame_payload(0, &[0xEE]),
            Err(TrimError::Corrupt { .. })
        ));
    }

    #[test]
    fn stale_log_after_external_snapshot_rewrite_is_discarded() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("logged", "p", "v");
        log.commit(&vfs, &mut store).unwrap();
        // Someone rewrites the snapshot through the classic full-save
        // path, without touching the log: the snapshot is now the newer
        // authority and the log frames are stale.
        let mut authoritative = TripleStore::new();
        authoritative.insert_literal("authoritative", "p", "v");
        authoritative.save_to(&vfs, snap()).unwrap();

        let (recovered, _, report) = reopen(&mut vfs);
        assert_eq!(report.wal.discarded_frames, 1);
        assert_eq!(contents(&recovered), contents(&authoritative));
    }

    #[test]
    fn crash_between_snapshot_install_and_log_reset_recovers_the_snapshot() {
        // Simulate the exact compaction window: the new snapshot is
        // installed but the log reset never happens (halting fault on the
        // log's header rewrite).
        let mut base = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut base);
        store.insert_literal("s1", "p", "v");
        log.commit(&base, &mut store).unwrap();
        store.insert_literal("s2", "p", "v");
        log.commit(&base, &mut store).unwrap();

        // The snapshot install is the first write+sync+rename+sync_dir
        // quartet; the log reset is the second write. Fail it.
        let config = FaultConfig::new(FaultOp::Write, FaultMode::Fail, 1, 0).halting();
        let vfs = FaultVfs::new(base, config);
        assert!(log.compact(&vfs, &mut store).is_err());
        assert!(vfs.fault_fired());

        let mut disk = vfs.into_inner();
        let (recovered, _, report) = reopen(&mut disk);
        assert_eq!(
            report.wal.discarded_frames, 2,
            "stale pre-compaction frames must be discarded, not replayed"
        );
        assert_eq!(contents(&recovered), contents(&store));
    }

    #[test]
    fn corrupt_snapshot_is_refused_strictly() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("s", "p", "v");
        log.compact(&vfs, &mut store).unwrap();
        let mut bytes = vfs.bytes(SNAP).unwrap().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        vfs.write(snap(), &bytes).unwrap();
        assert!(matches!(
            TripleStore::open_logged(&vfs, snap()),
            Err(TrimError::Corrupt { .. })
        ));
    }

    #[test]
    fn open_logged_sweeps_stale_snapshot_temps() {
        let mut vfs = MemVfs::new();
        let (mut store, mut log, _) = reopen(&mut vfs);
        store.insert_literal("s", "p", "v");
        log.compact(&vfs, &mut store).unwrap();
        vfs.write(Path::new("store.xml.slimio-tmp"), b"crash leftover").unwrap();
        vfs.write(Path::new("store.xml.wal.slimio-tmp"), b"crash leftover").unwrap();
        let (_, _, report) = reopen(&mut vfs);
        assert!(report.wal.swept_temp);
        assert!(!vfs.exists(Path::new("store.xml.slimio-tmp")));
        assert!(!vfs.exists(Path::new("store.xml.wal.slimio-tmp")));
    }
}
