//! The indexed triple store: insertion, removal, and selection queries.

use crate::atom::{Atom, AtomTable};
use crate::journal::{Change, Journal, Revision};
use std::collections::{HashMap, HashSet};

/// The object position of a triple: either another resource (forming the
/// graph edges reachability views follow) or a literal string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A reference to a resource; traversed by views.
    Resource(Atom),
    /// An opaque literal; never traversed.
    Literal(Atom),
}

impl Value {
    /// The underlying atom regardless of kind.
    pub fn atom(self) -> Atom {
        match self {
            Value::Resource(a) | Value::Literal(a) => a,
        }
    }

    /// True if this value is a resource reference.
    pub fn is_resource(self) -> bool {
        matches!(self, Value::Resource(_))
    }
}

/// One (resource, property, value) statement. `Copy` — three words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The resource the statement is about.
    pub subject: Atom,
    /// The property name.
    pub property: Atom,
    /// The value: resource reference or literal.
    pub object: Value,
}

/// A selection query: any combination of the three fields may be fixed.
///
/// "Query is specified by selection, where one or more of the triple
/// fields is fixed, and the result is a set of triples" (paper §4.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: Option<Atom>,
    pub property: Option<Atom>,
    pub object: Option<Value>,
}

impl TriplePattern {
    /// Fix the subject field.
    pub fn with_subject(mut self, s: Atom) -> Self {
        self.subject = Some(s);
        self
    }

    /// Fix the property field.
    pub fn with_property(mut self, p: Atom) -> Self {
        self.property = Some(p);
        self
    }

    /// Fix the object field.
    pub fn with_object(mut self, o: Value) -> Self {
        self.object = Some(o);
        self
    }

    /// True if `t` satisfies every fixed field.
    pub fn matches(&self, t: &Triple) -> bool {
        self.subject.is_none_or(|s| s == t.subject)
            && self.property.is_none_or(|p| p == t.property)
            && self.object.is_none_or(|o| o == t.object)
    }

    /// True if no field is fixed (matches everything).
    pub fn is_unconstrained(&self) -> bool {
        self.subject.is_none() && self.property.is_none() && self.object.is_none()
    }
}

/// Size and composition statistics, reported by [`TripleStore::stats`] and
/// consumed by the E1 space-overhead experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of triples currently stored.
    pub triples: usize,
    /// Number of distinct interned strings.
    pub atoms: usize,
    /// Total bytes of interned string content.
    pub atom_string_bytes: usize,
    /// Estimated resident bytes: triple copies in the membership set and
    /// the three indexes, plus interned strings and per-atom bookkeeping.
    /// An estimate for comparative experiments, not an allocator audit.
    pub estimated_bytes: usize,
    /// Changes recorded in the journal since creation (or last clear).
    pub journal_len: usize,
}

/// The TRIM triple store (see crate docs).
///
/// Invariants, enforced by construction and checked by
/// [`TripleStore::check_invariants`] in tests:
/// * the membership set and all three indexes contain exactly the same
///   triples;
/// * every atom appearing in a triple resolves in the atom table;
/// * the journal replays to the current contents.
#[derive(Debug, Default)]
pub struct TripleStore {
    atoms: AtomTable,
    /// Membership set: the authoritative contents.
    all: HashSet<Triple>,
    by_subject: HashMap<Atom, HashSet<Triple>>,
    by_property: HashMap<Atom, HashSet<Triple>>,
    by_object: HashMap<Value, HashSet<Triple>>,
    journal: Journal,
    fresh_counter: u64,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a selection pattern.
    pub fn pattern() -> TriplePattern {
        TriplePattern::default()
    }

    // ---- atoms and values ------------------------------------------------

    /// Intern a string (used for subjects, properties, and resource names).
    pub fn atom(&mut self, s: &str) -> Atom {
        self.atoms.intern(s)
    }

    /// Intern a string, surfacing interner exhaustion as a typed error
    /// instead of a panic — the entry point for untrusted input paths
    /// such as the persistence loaders.
    pub fn try_atom(&mut self, s: &str) -> Result<Atom, crate::error::TrimError> {
        self.atoms.try_intern(s).ok_or(crate::error::TrimError::CapacityExhausted)
    }

    /// Look up a string without interning.
    pub fn find_atom(&self, s: &str) -> Option<Atom> {
        self.atoms.get(s)
    }

    /// Resolve an atom back to its string.
    pub fn resolve(&self, a: Atom) -> &str {
        self.atoms.resolve(a)
    }

    /// Intern a literal string as a [`Value::Literal`].
    pub fn literal_value(&mut self, s: &str) -> Value {
        Value::Literal(self.atoms.intern(s))
    }

    /// Wrap an atom as a [`Value::Resource`].
    pub fn resource_value(a: Atom) -> Value {
        Value::Resource(a)
    }

    /// The literal text of a value, or `None` if it is a resource.
    pub fn value_str(&self, v: Value) -> Option<&str> {
        match v {
            Value::Literal(a) => Some(self.atoms.resolve(a)),
            Value::Resource(_) => None,
        }
    }

    /// The underlying text of a value, literal or resource name alike.
    pub fn value_text(&self, v: Value) -> &str {
        self.atoms.resolve(v.atom())
    }

    /// Mint a resource atom guaranteed not to collide with any existing
    /// atom, of the form `prefix:N`. Used by DMIs to create object ids.
    pub fn fresh_resource(&mut self, prefix: &str) -> Atom {
        loop {
            let candidate = format!("{prefix}:{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.atoms.get(&candidate).is_none() {
                return self.atoms.intern(&candidate);
            }
        }
    }

    /// Access to the underlying atom table (read-only).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    // ---- mutation ----------------------------------------------------------

    /// Insert a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, subject: Atom, property: Atom, object: Value) -> bool {
        let t = Triple { subject, property, object };
        if !self.all.insert(t) {
            return false;
        }
        self.by_subject.entry(subject).or_default().insert(t);
        self.by_property.entry(property).or_default().insert(t);
        self.by_object.entry(object).or_default().insert(t);
        self.journal.record(Change::Insert(t));
        true
    }

    /// Convenience: intern all three fields and insert, with the object as
    /// a literal.
    pub fn insert_literal(&mut self, subject: &str, property: &str, literal: &str) -> Triple {
        let s = self.atom(subject);
        let p = self.atom(property);
        let o = self.literal_value(literal);
        self.insert(s, p, o);
        Triple { subject: s, property: p, object: o }
    }

    /// Convenience: intern all three fields and insert, with the object as
    /// a resource reference.
    pub fn insert_resource(&mut self, subject: &str, property: &str, object: &str) -> Triple {
        let s = self.atom(subject);
        let p = self.atom(property);
        let o = Value::Resource(self.atom(object));
        self.insert(s, p, o);
        Triple { subject: s, property: p, object: o }
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: Triple) -> bool {
        if !self.all.remove(&t) {
            return false;
        }
        Self::index_remove(&mut self.by_subject, t.subject, &t);
        Self::index_remove(&mut self.by_property, t.property, &t);
        Self::index_remove(&mut self.by_object, t.object, &t);
        self.journal.record(Change::Remove(t));
        true
    }

    /// Drop `t` from the subject index only, leaving membership and the
    /// other indexes untouched — i.e. deliberately corrupt the store.
    /// Exists solely so mutation-testing harnesses (slimcheck `--mutate`)
    /// can prove they detect a skipped index-maintenance bug; never call
    /// this from production code.
    #[doc(hidden)]
    pub fn testonly_unindex_subject(&mut self, t: Triple) {
        Self::index_remove(&mut self.by_subject, t.subject, &t);
    }

    fn index_remove<K: std::hash::Hash + Eq>(
        index: &mut HashMap<K, HashSet<Triple>>,
        key: K,
        t: &Triple,
    ) {
        if let Some(set) = index.get_mut(&key) {
            set.remove(t);
            if set.is_empty() {
                index.remove(&key);
            }
        }
    }

    /// Remove every triple matching the pattern; returns how many went.
    pub fn remove_matching(&mut self, pattern: &TriplePattern) -> usize {
        let victims = self.select(pattern);
        for t in &victims {
            self.remove(*t);
        }
        victims.len()
    }

    /// Replace the object of the unique triple `(subject, property, _)`.
    ///
    /// This is the DMI's `Update_*` primitive: if exactly zero or one
    /// triple matches, the result is the single triple
    /// `(subject, property, new_object)`. With multiple matches, all are
    /// replaced by the single new value.
    pub fn set_unique(&mut self, subject: Atom, property: Atom, object: Value) {
        let pattern =
            TriplePattern::default().with_subject(subject).with_property(property);
        self.remove_matching(&pattern);
        self.insert(subject, property, object);
    }

    /// Drop everything, including the journal and interned strings.
    pub fn clear(&mut self) {
        *self = TripleStore::new();
    }

    // ---- queries ---------------------------------------------------------

    /// True if the exact triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.all.contains(t)
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Iterate all triples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.all.iter()
    }

    /// Selection query: all triples matching the pattern, using the most
    /// selective available index. Result order is unspecified.
    pub fn select(&self, pattern: &TriplePattern) -> Vec<Triple> {
        self.candidates(pattern)
            .map(|set| set.iter().filter(|t| pattern.matches(t)).copied().collect())
            .unwrap_or_else(|| {
                self.all.iter().filter(|t| pattern.matches(t)).copied().collect()
            })
    }

    /// Selection query returning results in a deterministic (sorted)
    /// order, for display and golden tests.
    pub fn select_sorted(&self, pattern: &TriplePattern) -> Vec<Triple> {
        let mut v = self.select(pattern);
        v.sort_unstable();
        v
    }

    /// Count matches without materializing them.
    pub fn count(&self, pattern: &TriplePattern) -> usize {
        self.candidates(pattern)
            .map(|set| set.iter().filter(|t| pattern.matches(t)).count())
            .unwrap_or_else(|| self.all.iter().filter(|t| pattern.matches(t)).count())
    }

    /// The single triple matching `(subject, property, _)`, if exactly one
    /// exists.
    pub fn get_unique(&self, subject: Atom, property: Atom) -> Option<Triple> {
        let pattern =
            TriplePattern::default().with_subject(subject).with_property(property);
        let mut hits = self.select(&pattern).into_iter();
        let first = hits.next()?;
        if hits.next().is_some() {
            return None;
        }
        Some(first)
    }

    /// The object of the unique `(subject, property, _)` triple.
    pub fn object_of(&self, subject: Atom, property: Atom) -> Option<Value> {
        self.get_unique(subject, property).map(|t| t.object)
    }

    /// Full-text-lite: every triple whose *literal* object contains
    /// `needle` (case-insensitive). A scan over the object index keys —
    /// each distinct literal string is tested once no matter how many
    /// triples carry it. Results sorted for determinism.
    pub fn find_literals(&self, needle: &str) -> Vec<Triple> {
        let lower = needle.to_lowercase();
        let mut out = Vec::new();
        for (value, triples) in &self.by_object {
            if let Value::Literal(a) = value {
                if self.atoms.resolve(*a).to_lowercase().contains(&lower) {
                    out.extend(triples.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Pick the smallest candidate set among the indexes the pattern can
    /// use. `None` means no field is fixed (full scan).
    fn candidates(&self, pattern: &TriplePattern) -> Option<&HashSet<Triple>> {
        static EMPTY: std::sync::OnceLock<HashSet<Triple>> = std::sync::OnceLock::new();
        let empty = EMPTY.get_or_init(HashSet::new);
        let mut best: Option<&HashSet<Triple>> = None;
        // A fixed field with no index entry means zero matches, so the
        // shared empty set is the (optimal) candidate set in that case.
        let options = [
            pattern.subject.map(|s| self.by_subject.get(&s).unwrap_or(empty)),
            pattern.property.map(|p| self.by_property.get(&p).unwrap_or(empty)),
            pattern.object.map(|o| self.by_object.get(&o).unwrap_or(empty)),
        ];
        for set in options.into_iter().flatten() {
            match best {
                Some(b) if b.len() <= set.len() => {}
                _ => best = Some(set),
            }
        }
        best
    }

    // ---- journal ---------------------------------------------------------

    /// The current revision (monotone change count).
    pub fn revision(&self) -> Revision {
        self.journal.revision()
    }

    /// Read-only access to the change journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Crate-internal mutable journal access (used by persistence to
    /// start loaded stores with clean history).
    pub(crate) fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Undo all changes made after `rev`, restoring the store contents at
    /// that revision. The undone entries are removed from the journal.
    ///
    /// # Errors
    ///
    /// [`crate::TrimError::UndoPastStart`] if `rev` is newer than the
    /// current revision... cannot happen; if `rev` predates the journal's
    /// retained history an error is returned.
    pub fn undo_to(&mut self, rev: Revision) -> Result<(), crate::TrimError> {
        let undone = self.journal.take_since(rev)?;
        for change in undone.into_iter().rev() {
            match change {
                Change::Insert(t) => {
                    self.all.remove(&t);
                    Self::index_remove(&mut self.by_subject, t.subject, &t);
                    Self::index_remove(&mut self.by_property, t.property, &t);
                    Self::index_remove(&mut self.by_object, t.object, &t);
                }
                Change::Remove(t) => {
                    self.all.insert(t);
                    self.by_subject.entry(t.subject).or_default().insert(t);
                    self.by_property.entry(t.property).or_default().insert(t);
                    self.by_object.entry(t.object).or_default().insert(t);
                }
            }
        }
        Ok(())
    }

    // ---- stats and invariants ---------------------------------------------

    /// Current size statistics.
    pub fn stats(&self) -> StoreStats {
        use std::mem::size_of;
        let triple_copies = self.all.len() * 4; // membership + three indexes
        let estimated_bytes = triple_copies * size_of::<Triple>()
            + self.atoms.string_bytes()
            + self.atoms.len() * (size_of::<Box<str>>() + size_of::<Atom>());
        StoreStats {
            triples: self.all.len(),
            atoms: self.atoms.len(),
            atom_string_bytes: self.atoms.string_bytes(),
            estimated_bytes,
            journal_len: self.journal.len(),
        }
    }

    /// Verify internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let mut indexed: HashSet<Triple> = HashSet::new();
        for set in self.by_subject.values() {
            indexed.extend(set.iter().copied());
        }
        assert_eq!(indexed, self.all, "subject index disagrees with membership set");
        let mut indexed: HashSet<Triple> = HashSet::new();
        for set in self.by_property.values() {
            indexed.extend(set.iter().copied());
        }
        assert_eq!(indexed, self.all, "property index disagrees with membership set");
        let mut indexed: HashSet<Triple> = HashSet::new();
        for set in self.by_object.values() {
            indexed.extend(set.iter().copied());
        }
        assert_eq!(indexed, self.all, "object index disagrees with membership set");
        for t in &self.all {
            // resolve() panics on foreign atoms; reaching it at all is the check
            let _ = self.atoms.resolve(t.subject);
            let _ = self.atoms.resolve(t.property);
            let _ = self.atoms.resolve(t.object.atom());
        }
    }

    /// Render a triple as `subject --property--> value` for diagnostics.
    pub fn display_triple(&self, t: &Triple) -> String {
        let obj = match t.object {
            Value::Resource(a) => format!("<{}>", self.atoms.resolve(a)),
            Value::Literal(a) => format!("{:?}", self.atoms.resolve(a)),
        };
        format!(
            "{} --{}--> {}",
            self.atoms.resolve(t.subject),
            self.atoms.resolve(t.property),
            obj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_bundle() -> (TripleStore, Atom, Atom) {
        let mut s = TripleStore::new();
        let b1 = s.atom("bundle:1");
        let b2 = s.atom("bundle:2");
        let name = s.atom("bundleName");
        let nested = s.atom("nestedBundle");
        let n1 = s.literal_value("John Smith");
        let n2 = s.literal_value("Electrolyte");
        s.insert(b1, name, n1);
        s.insert(b2, name, n2);
        s.insert(b1, nested, Value::Resource(b2));
        (s, b1, b2)
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let p = s.atom("p");
        let v = s.literal_value("v");
        assert!(s.insert(a, p, v));
        assert!(!s.insert(a, p, v), "duplicate insert must report false");
        assert_eq!(s.len(), 1);
        s.check_invariants();
    }

    #[test]
    fn remove_present_and_absent() {
        let (mut s, b1, _) = store_with_bundle();
        let name = s.atom("bundleName");
        let v = s.literal_value("John Smith");
        let t = Triple { subject: b1, property: name, object: v };
        assert!(s.remove(t));
        assert!(!s.remove(t));
        assert_eq!(s.len(), 2);
        s.check_invariants();
    }

    #[test]
    fn select_by_each_field_combination() {
        let (s, b1, b2) = store_with_bundle();
        let name = s.find_atom("bundleName").unwrap();
        let nested = s.find_atom("nestedBundle").unwrap();

        assert_eq!(s.select(&TriplePattern::default()).len(), 3);
        assert_eq!(s.select(&TriplePattern::default().with_subject(b1)).len(), 2);
        assert_eq!(s.select(&TriplePattern::default().with_property(name)).len(), 2);
        assert_eq!(
            s.select(&TriplePattern::default().with_object(Value::Resource(b2))).len(),
            1
        );
        assert_eq!(
            s.select(&TriplePattern::default().with_subject(b1).with_property(nested)).len(),
            1
        );
        assert_eq!(
            s.select(
                &TriplePattern::default()
                    .with_subject(b1)
                    .with_property(name)
                    .with_object(Value::Resource(b2))
            )
            .len(),
            0
        );
    }

    #[test]
    fn select_with_unindexed_atom_is_empty() {
        let (mut s, _, _) = store_with_bundle();
        let ghost = s.atom("never-used-in-a-triple");
        assert!(s.select(&TriplePattern::default().with_subject(ghost)).is_empty());
        assert_eq!(s.count(&TriplePattern::default().with_property(ghost)), 0);
    }

    #[test]
    fn count_agrees_with_select() {
        let (s, b1, _) = store_with_bundle();
        let p = TriplePattern::default().with_subject(b1);
        assert_eq!(s.count(&p), s.select(&p).len());
    }

    #[test]
    fn set_unique_replaces_value() {
        let (mut s, b1, _) = store_with_bundle();
        let name = s.atom("bundleName");
        let new = s.literal_value("J. Smith");
        s.set_unique(b1, name, new);
        assert_eq!(s.object_of(b1, name), Some(new));
        assert_eq!(s.count(&TriplePattern::default().with_subject(b1).with_property(name)), 1);
        s.check_invariants();
    }

    #[test]
    fn get_unique_rejects_ambiguity() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let p = s.atom("p");
        let v1 = s.literal_value("1");
        let v2 = s.literal_value("2");
        s.insert(a, p, v1);
        assert!(s.get_unique(a, p).is_some());
        s.insert(a, p, v2);
        assert!(s.get_unique(a, p).is_none(), "two matches must yield None");
    }

    #[test]
    fn remove_matching_removes_all() {
        let (mut s, b1, _) = store_with_bundle();
        let removed = s.remove_matching(&TriplePattern::default().with_subject(b1));
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 1);
        s.check_invariants();
    }

    #[test]
    fn fresh_resources_never_collide() {
        let mut s = TripleStore::new();
        s.atom("Bundle:0"); // occupy the first candidate
        let r1 = s.fresh_resource("Bundle");
        let r2 = s.fresh_resource("Bundle");
        assert_ne!(r1, r2);
        assert_ne!(s.resolve(r1), "Bundle:0");
        assert!(s.resolve(r1).starts_with("Bundle:"));
    }

    #[test]
    fn undo_restores_prior_contents() {
        let (mut s, b1, _) = store_with_bundle();
        let rev = s.revision();
        let before: std::collections::BTreeSet<_> = s.iter().copied().collect();
        let extra = s.atom("extra");
        let v = s.literal_value("x");
        s.insert(b1, extra, v);
        let name = s.find_atom("bundleName").unwrap();
        let old = s.get_unique(b1, name).unwrap();
        s.remove(old);
        assert_ne!(before, s.iter().copied().collect());
        s.undo_to(rev).unwrap();
        let after: std::collections::BTreeSet<_> = s.iter().copied().collect();
        assert_eq!(before, after);
        s.check_invariants();
    }

    #[test]
    fn undo_to_current_revision_is_noop() {
        let (mut s, _, _) = store_with_bundle();
        let rev = s.revision();
        s.undo_to(rev).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn stats_track_growth() {
        let (s, _, _) = store_with_bundle();
        let st = s.stats();
        assert_eq!(st.triples, 3);
        assert!(st.atoms >= 6);
        assert!(st.estimated_bytes > 0);
        assert_eq!(st.journal_len, 3);
    }

    #[test]
    fn display_triple_is_readable() {
        let (s, b1, _) = store_with_bundle();
        let nested = s.find_atom("nestedBundle").unwrap();
        let t = s.get_unique(b1, nested).unwrap();
        assert_eq!(s.display_triple(&t), "bundle:1 --nestedBundle--> <bundle:2>");
    }

    #[test]
    fn find_literals_is_case_insensitive_and_literal_only() {
        let mut s = TripleStore::new();
        s.insert_literal("scrap:1", "scrapName", "Lasix 40 IV");
        s.insert_literal("scrap:2", "scrapName", "lasix drip");
        s.insert_literal("scrap:3", "scrapName", "KCl 20");
        s.insert_resource("bundle:1", "bundleContent", "Lasix-shrine"); // resource: excluded
        let hits = s.find_literals("LASIX");
        assert_eq!(hits.len(), 2);
        assert!(s.find_literals("digoxin").is_empty());
        assert_eq!(s.find_literals("").len(), 3, "empty needle matches all literals");
    }

    #[test]
    fn insert_helpers_intern_and_insert() {
        let mut s = TripleStore::new();
        s.insert_literal("scrap:1", "scrapName", "Na 140");
        s.insert_resource("bundle:1", "bundleContent", "scrap:1");
        assert_eq!(s.len(), 2);
        let scrap = s.find_atom("scrap:1").unwrap();
        assert_eq!(
            s.count(&TriplePattern::default().with_object(Value::Resource(scrap))),
            1
        );
    }

    #[test]
    fn clear_resets_everything() {
        let (mut s, _, _) = store_with_bundle();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats().atoms, 0);
        assert_eq!(s.revision(), Revision::start());
    }

    #[test]
    fn value_helpers() {
        let mut s = TripleStore::new();
        let lit = s.literal_value("text");
        let res = Value::Resource(s.atom("r:1"));
        assert_eq!(s.value_str(lit), Some("text"));
        assert_eq!(s.value_str(res), None);
        assert_eq!(s.value_text(res), "r:1");
        assert!(res.is_resource());
        assert!(!lit.is_resource());
    }
}
