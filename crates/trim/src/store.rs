//! The indexed triple store: insertion, removal, and selection queries.
//!
//! Storage is three sorted permutation indexes — SPO, POS, OSP — each
//! holding every triple, reordered so that any combination of bound
//! pattern fields is a contiguous prefix range of exactly one index (see
//! [`crate::plan`] for the selection table). A fourth, refcounted index
//! tracks which literal atoms are in use, backing
//! [`TripleStore::find_literals`].

use crate::atom::{Atom, AtomTable};
use crate::journal::{Change, Journal, Revision};
use crate::plan::{Access, IndexKind, Plan};
use std::collections::{BTreeMap, BTreeSet};

/// The object position of a triple: either another resource (forming the
/// graph edges reachability views follow) or a literal string.
///
/// The derived ordering (resources before literals, then by atom) is what
/// the permutation indexes sort by; [`VALUE_MIN`]/[`VALUE_MAX`] below are
/// its inclusive extremes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A reference to a resource; traversed by views.
    Resource(Atom),
    /// An opaque literal; never traversed.
    Literal(Atom),
}

/// Inclusive lower bound over all [`Value`]s, for range-scan sentinels.
/// `pub(crate)` so the conjunctive engine can seed its leapfrog cursors.
pub(crate) const VALUE_MIN: Value = Value::Resource(Atom::MIN);
/// Inclusive upper bound over all [`Value`]s, for range-scan sentinels.
pub(crate) const VALUE_MAX: Value = Value::Literal(Atom::MAX);

impl Value {
    /// The underlying atom regardless of kind.
    pub fn atom(self) -> Atom {
        match self {
            Value::Resource(a) | Value::Literal(a) => a,
        }
    }

    /// True if this value is a resource reference.
    pub fn is_resource(self) -> bool {
        matches!(self, Value::Resource(_))
    }
}

/// One (resource, property, value) statement. `Copy` — three words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The resource the statement is about.
    pub subject: Atom,
    /// The property name.
    pub property: Atom,
    /// The value: resource reference or literal.
    pub object: Value,
}

/// A selection query: any combination of the three fields may be fixed.
///
/// "Query is specified by selection, where one or more of the triple
/// fields is fixed, and the result is a set of triples" (paper §4.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: Option<Atom>,
    pub property: Option<Atom>,
    pub object: Option<Value>,
}

impl TriplePattern {
    /// Fix the subject field.
    pub fn with_subject(mut self, s: Atom) -> Self {
        self.subject = Some(s);
        self
    }

    /// Fix the property field.
    pub fn with_property(mut self, p: Atom) -> Self {
        self.property = Some(p);
        self
    }

    /// Fix the object field.
    pub fn with_object(mut self, o: Value) -> Self {
        self.object = Some(o);
        self
    }

    /// True if `t` satisfies every fixed field.
    pub fn matches(&self, t: &Triple) -> bool {
        self.subject.is_none_or(|s| s == t.subject)
            && self.property.is_none_or(|p| p == t.property)
            && self.object.is_none_or(|o| o == t.object)
    }

    /// True if no field is fixed (matches everything).
    pub fn is_unconstrained(&self) -> bool {
        self.subject.is_none() && self.property.is_none() && self.object.is_none()
    }
}

/// Size and composition statistics, reported by [`TripleStore::stats`] and
/// consumed by the E1 space-overhead experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of triples currently stored.
    pub triples: usize,
    /// Number of distinct interned strings.
    pub atoms: usize,
    /// Total bytes of interned string content.
    pub atom_string_bytes: usize,
    /// Estimated resident bytes: triple copies in the three permutation
    /// indexes, plus interned strings and per-atom bookkeeping. An
    /// estimate for comparative experiments, not an allocator audit.
    pub estimated_bytes: usize,
    /// Changes recorded in the journal since creation (or last clear).
    pub journal_len: usize,
}

/// The TRIM triple store (see crate docs).
///
/// Invariants, enforced by construction and checked by
/// [`TripleStore::check_invariants`] in tests:
/// * the three permutation indexes contain exactly the same triples (SPO
///   is the authoritative membership set);
/// * the literal index refcounts exactly the literal objects present;
/// * every atom appearing in a triple resolves in the atom table;
/// * the journal replays to the current contents.
#[derive(Debug, Default)]
pub struct TripleStore {
    atoms: AtomTable,
    /// (subject, property, object) permutation — also the membership set
    /// and the store's canonical iteration order.
    spo: BTreeSet<(Atom, Atom, Value)>,
    /// (property, object, subject) permutation.
    pos: BTreeSet<(Atom, Value, Atom)>,
    /// (object, subject, property) permutation.
    osp: BTreeSet<(Value, Atom, Atom)>,
    /// Literal atoms currently used as objects → number of carrying
    /// triples. Keys ascend in atom (= first-interning) order.
    literals: BTreeMap<Atom, u32>,
    journal: Journal,
    fresh_counter: u64,
}

fn spo_key(t: Triple) -> (Atom, Atom, Value) {
    (t.subject, t.property, t.object)
}

fn pos_key(t: Triple) -> (Atom, Value, Atom) {
    (t.property, t.object, t.subject)
}

fn osp_key(t: Triple) -> (Value, Atom, Atom) {
    (t.object, t.subject, t.property)
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a selection pattern.
    pub fn pattern() -> TriplePattern {
        TriplePattern::default()
    }

    // ---- atoms and values ------------------------------------------------

    /// Intern a string (used for subjects, properties, and resource names).
    pub fn atom(&mut self, s: &str) -> Atom {
        self.atoms.intern(s)
    }

    /// Intern a string, surfacing interner exhaustion as a typed error
    /// instead of a panic — the entry point for untrusted input paths
    /// such as the persistence loaders.
    pub fn try_atom(&mut self, s: &str) -> Result<Atom, crate::error::TrimError> {
        self.atoms.try_intern(s).ok_or(crate::error::TrimError::CapacityExhausted)
    }

    /// Look up a string without interning.
    pub fn find_atom(&self, s: &str) -> Option<Atom> {
        self.atoms.get(s)
    }

    /// Resolve an atom back to its string.
    pub fn resolve(&self, a: Atom) -> &str {
        self.atoms.resolve(a)
    }

    /// Intern a literal string as a [`Value::Literal`].
    pub fn literal_value(&mut self, s: &str) -> Value {
        Value::Literal(self.atoms.intern(s))
    }

    /// Wrap an atom as a [`Value::Resource`].
    pub fn resource_value(a: Atom) -> Value {
        Value::Resource(a)
    }

    /// The literal text of a value, or `None` if it is a resource.
    pub fn value_str(&self, v: Value) -> Option<&str> {
        match v {
            Value::Literal(a) => Some(self.atoms.resolve(a)),
            Value::Resource(_) => None,
        }
    }

    /// The underlying text of a value, literal or resource name alike.
    pub fn value_text(&self, v: Value) -> &str {
        self.atoms.resolve(v.atom())
    }

    /// Mint a resource atom guaranteed not to collide with any existing
    /// atom, of the form `prefix:N`. Used by DMIs to create object ids.
    pub fn fresh_resource(&mut self, prefix: &str) -> Atom {
        loop {
            let candidate = format!("{prefix}:{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.atoms.get(&candidate).is_none() {
                return self.atoms.intern(&candidate);
            }
        }
    }

    /// Advance the fresh-resource counter past every numeric `name:N`
    /// suffix the atom table holds. Load paths (snapshot parse, WAL
    /// replay) call this because [`TripleStore::fresh_resource`] only
    /// probes the *current* table for collisions: a reloaded table no
    /// longer holds the atoms of entities deleted before the save, so
    /// without the resync a post-reload mint could re-issue a dead
    /// entity's name — and any ordering derived from resource names
    /// (creation-order enumeration, differential digests) would permute
    /// across the reload.
    pub fn resync_fresh_counter(&mut self) {
        let mut floor = self.fresh_counter;
        for (_, name) in self.atoms.iter() {
            if let Some((_, suffix)) = name.rsplit_once(':') {
                if let Ok(n) = suffix.parse::<u64>() {
                    floor = floor.max(n.saturating_add(1));
                }
            }
        }
        self.fresh_counter = floor;
    }

    /// Access to the underlying atom table (read-only).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    // ---- index maintenance -------------------------------------------------

    /// Add `t` to every index, without journaling. Returns `true` if it
    /// was new.
    fn link(&mut self, t: Triple) -> bool {
        if !self.spo.insert(spo_key(t)) {
            return false;
        }
        self.pos.insert(pos_key(t));
        self.osp.insert(osp_key(t));
        if let Value::Literal(a) = t.object {
            *self.literals.entry(a).or_insert(0) += 1;
        }
        true
    }

    /// Drop `t` from every index, without journaling. Returns `true` if
    /// it was present.
    fn unlink(&mut self, t: Triple) -> bool {
        if !self.spo.remove(&spo_key(t)) {
            return false;
        }
        self.pos.remove(&pos_key(t));
        self.osp.remove(&osp_key(t));
        if let Value::Literal(a) = t.object {
            if let Some(n) = self.literals.get_mut(&a) {
                *n -= 1;
                if *n == 0 {
                    self.literals.remove(&a);
                }
            }
        }
        true
    }

    // ---- mutation ----------------------------------------------------------

    /// Insert a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, subject: Atom, property: Atom, object: Value) -> bool {
        let t = Triple { subject, property, object };
        if !self.link(t) {
            return false;
        }
        self.journal.record(Change::Insert(t));
        true
    }

    /// Insert a batch of triples, amortizing journal growth over the
    /// whole batch. Equivalent to calling [`TripleStore::insert`] per
    /// triple (each new triple is journaled individually, so `undo_to`
    /// can still land between any two of them); returns how many were
    /// actually new. This is the write path DMI structural operations
    /// and pad load use.
    pub fn insert_all<I>(&mut self, triples: I) -> usize
    where
        I: IntoIterator<Item = Triple>,
    {
        let iter = triples.into_iter();
        self.journal.reserve(iter.size_hint().0);
        let mut added = 0;
        for t in iter {
            if self.link(t) {
                self.journal.record(Change::Insert(t));
                added += 1;
            }
        }
        added
    }

    /// Convenience: intern all three fields and insert, with the object as
    /// a literal.
    pub fn insert_literal(&mut self, subject: &str, property: &str, literal: &str) -> Triple {
        let s = self.atom(subject);
        let p = self.atom(property);
        let o = self.literal_value(literal);
        self.insert(s, p, o);
        Triple { subject: s, property: p, object: o }
    }

    /// Convenience: intern all three fields and insert, with the object as
    /// a resource reference.
    pub fn insert_resource(&mut self, subject: &str, property: &str, object: &str) -> Triple {
        let s = self.atom(subject);
        let p = self.atom(property);
        let o = Value::Resource(self.atom(object));
        self.insert(s, p, o);
        Triple { subject: s, property: p, object: o }
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: Triple) -> bool {
        if !self.unlink(t) {
            return false;
        }
        self.journal.record(Change::Remove(t));
        true
    }

    /// Remove a batch of triples; the removal-side twin of
    /// [`TripleStore::insert_all`]. Returns how many were present.
    pub fn remove_all<I>(&mut self, triples: I) -> usize
    where
        I: IntoIterator<Item = Triple>,
    {
        let iter = triples.into_iter();
        self.journal.reserve(iter.size_hint().0);
        let mut removed = 0;
        for t in iter {
            if self.unlink(t) {
                self.journal.record(Change::Remove(t));
                removed += 1;
            }
        }
        removed
    }

    /// Drop `t` from the subject-led (SPO) index only, leaving the other
    /// permutations untouched — i.e. deliberately corrupt the store.
    /// Exists solely so mutation-testing harnesses (slimcheck `--mutate`)
    /// can prove they detect a skipped index-maintenance bug; never call
    /// this from production code.
    #[doc(hidden)]
    pub fn testonly_unindex_subject(&mut self, t: Triple) {
        self.spo.remove(&spo_key(t));
    }

    /// Re-add `t` to the POS index after a remove, simulating a remove
    /// path that forgot POS maintenance: property-bound queries then see
    /// a phantom triple. Mutation-testing hook (slimcheck `--mutate`);
    /// never call this from production code.
    #[doc(hidden)]
    pub fn testonly_reinsert_pos(&mut self, t: Triple) {
        self.pos.insert(pos_key(t));
    }

    /// Remove every triple matching the pattern; returns how many went.
    pub fn remove_matching(&mut self, pattern: &TriplePattern) -> usize {
        let victims = self.select(pattern);
        self.remove_all(victims)
    }

    /// Replace the object of the unique triple `(subject, property, _)`.
    ///
    /// This is the DMI's `Update_*` primitive: if exactly zero or one
    /// triple matches, the result is the single triple
    /// `(subject, property, new_object)`. With multiple matches, all are
    /// replaced by the single new value.
    pub fn set_unique(&mut self, subject: Atom, property: Atom, object: Value) {
        let pattern =
            TriplePattern::default().with_subject(subject).with_property(property);
        self.remove_matching(&pattern);
        self.insert(subject, property, object);
    }

    /// Drop everything, including the journal and interned strings.
    pub fn clear(&mut self) {
        *self = TripleStore::new();
    }

    // ---- queries ---------------------------------------------------------

    /// True if the exact triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&spo_key(*t))
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate all triples in (subject, property, object) sorted order —
    /// the SPO index order, which is also [`Triple`]'s derived `Ord`.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(subject, property, object)| Triple {
            subject,
            property,
            object,
        })
    }

    /// The access plan [`TripleStore::select`], [`TripleStore::count`],
    /// and [`TripleStore::remove_matching`] will execute for `pattern` —
    /// a pure function of the pattern's shape (see [`crate::plan`]).
    /// Lets tests and slimcheck assert *which* index answers a query.
    pub fn explain(&self, pattern: &TriplePattern) -> Plan {
        Plan::for_pattern(pattern)
    }

    /// Selection query: all triples matching the pattern, answered by the
    /// one index whose sort order leads with the bound fields (see
    /// [`TripleStore::explain`]). No residual filtering is ever needed.
    ///
    /// Result order is deterministic: the chosen index's sort order —
    /// (s, p, o) for subject-led scans, full scans, and probes;
    /// (p, o, s) for property-led scans; (o, s, p) for object-led scans.
    /// Use [`TripleStore::select_sorted`] for canonical (s, p, o) order
    /// regardless of shape.
    pub fn select(&self, pattern: &TriplePattern) -> Vec<Triple> {
        let out = self.execute(pattern, |iter| iter.collect::<Vec<_>>());
        debug_assert!(out.iter().all(|t| pattern.matches(t)));
        out
    }

    /// Selection query returning results in canonical (s, p, o) sorted
    /// order regardless of pattern shape, for display and golden tests.
    pub fn select_sorted(&self, pattern: &TriplePattern) -> Vec<Triple> {
        let mut v = self.select(pattern);
        v.sort_unstable();
        v
    }

    /// Count matches without materializing them. Executes the same plan
    /// as [`TripleStore::select`].
    pub fn count(&self, pattern: &TriplePattern) -> usize {
        self.execute(pattern, |iter| iter.count())
    }

    /// Run `consume` over the pattern's matches, produced by the plan
    /// from [`crate::plan::Plan::for_pattern`].
    fn execute<R>(
        &self,
        pattern: &TriplePattern,
        consume: impl FnOnce(&mut dyn Iterator<Item = Triple>) -> R,
    ) -> R {
        match Plan::for_pattern(pattern).access {
            Access::Probe => {
                let t = Triple {
                    subject: pattern.subject.expect("probe binds subject"),
                    property: pattern.property.expect("probe binds property"),
                    object: pattern.object.expect("probe binds object"),
                };
                let mut iter = self.contains(&t).then_some(t).into_iter();
                consume(&mut iter)
            }
            Access::FullScan => consume(&mut self.iter()),
            Access::Scan { index: IndexKind::Spo, .. } => {
                let s = pattern.subject.expect("SPO scan binds subject");
                let (p_lo, p_hi) = match pattern.property {
                    Some(p) => (p, p),
                    None => (Atom::MIN, Atom::MAX),
                };
                let mut iter = self
                    .spo
                    .range((s, p_lo, VALUE_MIN)..=(s, p_hi, VALUE_MAX))
                    .map(|&(subject, property, object)| Triple { subject, property, object });
                consume(&mut iter)
            }
            Access::Scan { index: IndexKind::Pos, .. } => {
                let p = pattern.property.expect("POS scan binds property");
                let (o_lo, o_hi) = match pattern.object {
                    Some(o) => (o, o),
                    None => (VALUE_MIN, VALUE_MAX),
                };
                let mut iter = self
                    .pos
                    .range((p, o_lo, Atom::MIN)..=(p, o_hi, Atom::MAX))
                    .map(|&(property, object, subject)| Triple { subject, property, object });
                consume(&mut iter)
            }
            Access::Scan { index: IndexKind::Osp, .. } => {
                let o = pattern.object.expect("OSP scan binds object");
                let (s_lo, s_hi) = match pattern.subject {
                    Some(s) => (s, s),
                    None => (Atom::MIN, Atom::MAX),
                };
                let mut iter = self
                    .osp
                    .range((o, s_lo, Atom::MIN)..=(o, s_hi, Atom::MAX))
                    .map(|&(object, subject, property)| Triple { subject, property, object });
                consume(&mut iter)
            }
        }
    }

    // ---- sorted-run seeks for the conjunctive engine ---------------------
    //
    // Each probe returns the first value >= `lo` in the named distinct-value
    // run, answered by one O(log n) range lookup. The leapfrog cursors in
    // [`crate::conj`] call these with strictly increasing `lo`, so a k-way
    // run intersection streams without materializing any run.

    /// First subject >= `lo` in the SPO index (distinct-subject run).
    pub(crate) fn run_subject_geq(&self, lo: Atom) -> Option<Atom> {
        self.spo.range((lo, Atom::MIN, VALUE_MIN)..).next().map(|&(s, _, _)| s)
    }

    /// First property >= `lo` among triples with subject `s` (SPO run).
    pub(crate) fn run_property_of_s_geq(&self, s: Atom, lo: Atom) -> Option<Atom> {
        self.spo
            .range((s, lo, VALUE_MIN)..=(s, Atom::MAX, VALUE_MAX))
            .next()
            .map(|&(_, p, _)| p)
    }

    /// First object >= `lo` among triples with subject `s` and property
    /// `p` (SPO run).
    pub(crate) fn run_object_of_sp_geq(&self, s: Atom, p: Atom, lo: Value) -> Option<Value> {
        self.spo.range((s, p, lo)..=(s, p, VALUE_MAX)).next().map(|&(_, _, o)| o)
    }

    /// First property >= `lo` in the POS index (distinct-property run).
    pub(crate) fn run_property_geq(&self, lo: Atom) -> Option<Atom> {
        self.pos.range((lo, VALUE_MIN, Atom::MIN)..).next().map(|&(p, _, _)| p)
    }

    /// First object >= `lo` among triples with property `p` (POS run).
    pub(crate) fn run_object_of_p_geq(&self, p: Atom, lo: Value) -> Option<Value> {
        self.pos
            .range((p, lo, Atom::MIN)..=(p, VALUE_MAX, Atom::MAX))
            .next()
            .map(|&(_, o, _)| o)
    }

    /// First subject >= `lo` among triples with property `p` and object
    /// `o` (POS run).
    pub(crate) fn run_subject_of_po_geq(&self, p: Atom, o: Value, lo: Atom) -> Option<Atom> {
        self.pos.range((p, o, lo)..=(p, o, Atom::MAX)).next().map(|&(_, _, s)| s)
    }

    /// First object >= `lo` in the OSP index (distinct-object run).
    pub(crate) fn run_object_geq(&self, lo: Value) -> Option<Value> {
        self.osp.range((lo, Atom::MIN, Atom::MIN)..).next().map(|&(o, _, _)| o)
    }

    /// First subject >= `lo` among triples with object `o` (OSP run).
    pub(crate) fn run_subject_of_o_geq(&self, o: Value, lo: Atom) -> Option<Atom> {
        self.osp
            .range((o, lo, Atom::MIN)..=(o, Atom::MAX, Atom::MAX))
            .next()
            .map(|&(_, s, _)| s)
    }

    /// First property >= `lo` among triples with object `o` and subject
    /// `s` (OSP run).
    pub(crate) fn run_property_of_os_geq(&self, o: Value, s: Atom, lo: Atom) -> Option<Atom> {
        self.osp.range((o, s, lo)..=(o, s, Atom::MAX)).next().map(|&(_, _, p)| p)
    }

    // Three (bound → proposed) combinations have no permutation whose sort
    // order is (bound, proposed, rest): P→S, O→P, S→O. Those runs are
    // served by *skip-scans* over the index that leads with the proposed
    // position: alternating range probes that seek the probe value's
    // (value, bound) block and, when it is absent, jump to the next value
    // the index itself proposes. Each probe is one O(log n) lookup and
    // the probe count is bounded by the values *between* matches, so even
    // these fallback runs stream — nothing is materialized.

    /// First subject >= `lo` with at least one `(subject, p, _)` triple —
    /// the P→S skip-scan over SPO.
    pub(crate) fn run_subject_with_p_geq(&self, p: Atom, lo: Atom) -> Option<Atom> {
        let mut s = lo;
        loop {
            let &(ts, tp, _) = self.spo.range((s, p, VALUE_MIN)..).next()?;
            if tp == p {
                // Subjects strictly between `s` and `ts` have no triples
                // at all, so `ts` is the first subject carrying `p`.
                return Some(ts);
            }
            // `ts`'s smallest property past the probe point is below `p`:
            // probe its own (ts, p) block next. Otherwise `ts` (or `s`
            // itself, when ts == s) has no `p`; advance past it.
            s = if ts > s && tp < p { ts } else { ts.succ()? };
        }
    }

    /// First property >= `lo` with at least one `(_, property, o)` triple —
    /// the O→P skip-scan over POS.
    pub(crate) fn run_property_with_o_geq(&self, o: Value, lo: Atom) -> Option<Atom> {
        let mut p = lo;
        loop {
            let &(tp, to, _) = self.pos.range((p, o, Atom::MIN)..).next()?;
            if to == o {
                return Some(tp);
            }
            p = if tp > p && to < o { tp } else { tp.succ()? };
        }
    }

    /// First object >= `lo` with at least one `(s, _, object)` triple —
    /// the S→O skip-scan over OSP.
    pub(crate) fn run_object_with_s_geq(&self, s: Atom, lo: Value) -> Option<Value> {
        let mut o = lo;
        loop {
            let &(to, ts, _) = self.osp.range((o, s, Atom::MIN)..).next()?;
            if ts == s {
                return Some(to);
            }
            o = if to > o && ts < s {
                to
            } else {
                crate::conj::value_succ(to)?
            };
        }
    }

    /// Distinct objects of subject `s`, sorted. Kept for the seeded
    /// `wrong_pos_run` mutation (slimcheck `--mutate`), which deliberately
    /// reads an object run off the wrong index.
    pub(crate) fn collect_objects_of_s(&self, s: Atom) -> Vec<Value> {
        let set: BTreeSet<Value> = self
            .spo
            .range((s, Atom::MIN, VALUE_MIN)..=(s, Atom::MAX, VALUE_MAX))
            .map(|&(_, _, o)| o)
            .collect();
        set.into_iter().collect()
    }

    /// The single triple matching `(subject, property, _)`, if exactly one
    /// exists.
    pub fn get_unique(&self, subject: Atom, property: Atom) -> Option<Triple> {
        let pattern =
            TriplePattern::default().with_subject(subject).with_property(property);
        self.execute(&pattern, |iter| {
            let first = iter.next()?;
            if iter.next().is_some() {
                return None;
            }
            Some(first)
        })
    }

    /// The object of the unique `(subject, property, _)` triple.
    pub fn object_of(&self, subject: Atom, property: Atom) -> Option<Value> {
        self.get_unique(subject, property).map(|t| t.object)
    }

    /// Full-text-lite: every triple whose *literal* object contains
    /// `needle` (case-insensitive). The lowercased needle is built once,
    /// off the scan path, and each distinct literal string is tested once
    /// no matter how many triples carry it — candidates come from the
    /// refcounted literal index, matches from an OSP prefix scan.
    ///
    /// Result order is deterministic: matching literals in first-interning
    /// order (the order each literal string first entered the store, which
    /// for a freshly built store is insertion order), and within one
    /// literal by (subject, property) atom order — again first-interning
    /// order, not lexicographic. Tested by
    /// `find_literals_returns_interning_order`.
    pub fn find_literals(&self, needle: &str) -> Vec<Triple> {
        let lower = needle.to_lowercase();
        let mut out = Vec::new();
        for &lit in self.literals.keys() {
            if self.atoms.resolve(lit).to_lowercase().contains(&lower) {
                let o = Value::Literal(lit);
                out.extend(
                    self.osp
                        .range((o, Atom::MIN, Atom::MIN)..=(o, Atom::MAX, Atom::MAX))
                        .map(|&(object, subject, property)| Triple {
                            subject,
                            property,
                            object,
                        }),
                );
            }
        }
        out
    }

    // ---- journal ---------------------------------------------------------

    /// The current revision (monotone change count).
    pub fn revision(&self) -> Revision {
        self.journal.revision()
    }

    /// Read-only access to the change journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Crate-internal mutable journal access (used by persistence to
    /// start loaded stores with clean history).
    pub(crate) fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Undo all changes made after `rev`, restoring the store contents at
    /// that revision. The undone entries are removed from the journal.
    /// All four indexes are maintained through the rollback.
    ///
    /// # Errors
    ///
    /// [`crate::TrimError::UndoPastStart`] if `rev` predates the
    /// journal's retained history.
    pub fn undo_to(&mut self, rev: Revision) -> Result<(), crate::TrimError> {
        let undone = self.journal.take_since(rev)?;
        for change in undone.into_iter().rev() {
            match change {
                Change::Insert(t) => {
                    self.unlink(t);
                }
                Change::Remove(t) => {
                    self.link(t);
                }
            }
        }
        Ok(())
    }

    // ---- stats and invariants ---------------------------------------------

    /// Current size statistics.
    pub fn stats(&self) -> StoreStats {
        use std::mem::size_of;
        let triple_copies = self.spo.len() * 3; // three permutation indexes
        let estimated_bytes = triple_copies * size_of::<Triple>()
            + self.literals.len() * (size_of::<Atom>() + size_of::<u32>())
            + self.atoms.string_bytes()
            + self.atoms.len() * (size_of::<Box<str>>() + size_of::<Atom>());
        StoreStats {
            triples: self.spo.len(),
            atoms: self.atoms.len(),
            atom_string_bytes: self.atoms.string_bytes(),
            estimated_bytes,
            journal_len: self.journal.len(),
        }
    }

    /// Verify internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert_eq!(self.pos.len(), self.spo.len(), "POS index size disagrees with SPO");
        assert_eq!(self.osp.len(), self.spo.len(), "OSP index size disagrees with SPO");
        let mut literal_counts: BTreeMap<Atom, u32> = BTreeMap::new();
        for &(s, p, o) in &self.spo {
            // Equal sizes plus SPO ⊆ POS/OSP makes the three indexes equal.
            assert!(self.pos.contains(&(p, o, s)), "triple missing from POS index");
            assert!(self.osp.contains(&(o, s, p)), "triple missing from OSP index");
            if let Value::Literal(a) = o {
                *literal_counts.entry(a).or_insert(0) += 1;
            }
            // resolve() panics on foreign atoms; reaching it at all is the check
            let _ = self.atoms.resolve(s);
            let _ = self.atoms.resolve(p);
            let _ = self.atoms.resolve(o.atom());
        }
        assert_eq!(
            literal_counts, self.literals,
            "literal index refcounts disagree with contents"
        );
    }

    /// Render a triple as `subject --property--> value` for diagnostics.
    pub fn display_triple(&self, t: &Triple) -> String {
        let obj = match t.object {
            Value::Resource(a) => format!("<{}>", self.atoms.resolve(a)),
            Value::Literal(a) => format!("{:?}", self.atoms.resolve(a)),
        };
        format!(
            "{} --{}--> {}",
            self.atoms.resolve(t.subject),
            self.atoms.resolve(t.property),
            obj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PatternShape;

    fn store_with_bundle() -> (TripleStore, Atom, Atom) {
        let mut s = TripleStore::new();
        let b1 = s.atom("bundle:1");
        let b2 = s.atom("bundle:2");
        let name = s.atom("bundleName");
        let nested = s.atom("nestedBundle");
        let n1 = s.literal_value("John Smith");
        let n2 = s.literal_value("Electrolyte");
        s.insert(b1, name, n1);
        s.insert(b2, name, n2);
        s.insert(b1, nested, Value::Resource(b2));
        (s, b1, b2)
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let p = s.atom("p");
        let v = s.literal_value("v");
        assert!(s.insert(a, p, v));
        assert!(!s.insert(a, p, v), "duplicate insert must report false");
        assert_eq!(s.len(), 1);
        s.check_invariants();
    }

    #[test]
    fn remove_present_and_absent() {
        let (mut s, b1, _) = store_with_bundle();
        let name = s.atom("bundleName");
        let v = s.literal_value("John Smith");
        let t = Triple { subject: b1, property: name, object: v };
        assert!(s.remove(t));
        assert!(!s.remove(t));
        assert_eq!(s.len(), 2);
        s.check_invariants();
    }

    #[test]
    fn select_by_each_field_combination() {
        let (s, b1, b2) = store_with_bundle();
        let name = s.find_atom("bundleName").unwrap();
        let nested = s.find_atom("nestedBundle").unwrap();

        assert_eq!(s.select(&TriplePattern::default()).len(), 3);
        assert_eq!(s.select(&TriplePattern::default().with_subject(b1)).len(), 2);
        assert_eq!(s.select(&TriplePattern::default().with_property(name)).len(), 2);
        assert_eq!(
            s.select(&TriplePattern::default().with_object(Value::Resource(b2))).len(),
            1
        );
        assert_eq!(
            s.select(&TriplePattern::default().with_subject(b1).with_property(nested)).len(),
            1
        );
        assert_eq!(
            s.select(
                &TriplePattern::default()
                    .with_subject(b1)
                    .with_property(name)
                    .with_object(Value::Resource(b2))
            )
            .len(),
            0
        );
    }

    #[test]
    fn select_with_unindexed_atom_is_empty() {
        let (mut s, _, _) = store_with_bundle();
        let ghost = s.atom("never-used-in-a-triple");
        assert!(s.select(&TriplePattern::default().with_subject(ghost)).is_empty());
        assert_eq!(s.count(&TriplePattern::default().with_property(ghost)), 0);
    }

    #[test]
    fn count_agrees_with_select() {
        let (s, b1, _) = store_with_bundle();
        let p = TriplePattern::default().with_subject(b1);
        assert_eq!(s.count(&p), s.select(&p).len());
    }

    #[test]
    fn explain_matches_the_selection_table() {
        let (s, b1, b2) = store_with_bundle();
        let name = s.find_atom("bundleName").unwrap();
        let obj = Value::Resource(b2);
        let cases = [
            (TriplePattern::default(), PatternShape::Unbound),
            (TriplePattern::default().with_subject(b1), PatternShape::S),
            (TriplePattern::default().with_property(name), PatternShape::P),
            (TriplePattern::default().with_object(obj), PatternShape::O),
            (TriplePattern::default().with_subject(b1).with_property(name), PatternShape::Sp),
            (TriplePattern::default().with_subject(b1).with_object(obj), PatternShape::So),
            (TriplePattern::default().with_property(name).with_object(obj), PatternShape::Po),
            (
                TriplePattern::default().with_subject(b1).with_property(name).with_object(obj),
                PatternShape::Spo,
            ),
        ];
        for (pattern, shape) in cases {
            let plan = s.explain(&pattern);
            assert_eq!(plan.shape, shape);
            assert_eq!(plan, Plan::for_shape(shape), "explain must execute the table");
        }
    }

    #[test]
    fn select_returns_index_order() {
        let mut s = TripleStore::new();
        // Interleave inserts so insertion order differs from index order.
        s.insert_literal("s2", "p1", "b");
        s.insert_literal("s1", "p2", "a");
        s.insert_literal("s1", "p1", "c");
        let p1 = s.find_atom("p1").unwrap();
        // Property-led scan: (p, o, s) order.
        let hits = s.select(&TriplePattern::default().with_property(p1));
        let rendered: Vec<String> =
            hits.iter().map(|t| s.display_triple(t)).collect();
        assert_eq!(rendered, vec![r#"s2 --p1--> "b""#, r#"s1 --p1--> "c""#]);
        // Full scan: (s, p, o) order, same as iter() and Triple's Ord.
        let all = s.select(&TriplePattern::default());
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(all, sorted);
        assert_eq!(all, s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn insert_all_batches_and_reports_new_triples() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let p = s.atom("p");
        let v1 = s.literal_value("1");
        let v2 = s.literal_value("2");
        let batch = vec![
            Triple { subject: a, property: p, object: v1 },
            Triple { subject: a, property: p, object: v2 },
            Triple { subject: a, property: p, object: v1 }, // duplicate in batch
        ];
        assert_eq!(s.insert_all(batch.clone()), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.insert_all(batch), 0, "re-inserting is a no-op");
        assert_eq!(s.journal().len(), 2, "only new triples are journaled");
        s.check_invariants();
    }

    #[test]
    fn remove_all_is_the_batch_twin_of_remove() {
        let (mut s, b1, _) = store_with_bundle();
        let victims = s.select(&TriplePattern::default().with_subject(b1));
        assert_eq!(s.remove_all(victims.clone()), 2);
        assert_eq!(s.remove_all(victims), 0);
        assert_eq!(s.len(), 1);
        s.check_invariants();
    }

    #[test]
    fn batch_insert_then_undo_restores_cleanly() {
        let (mut s, b1, _) = store_with_bundle();
        let rev = s.revision();
        let extra = s.atom("extra");
        let vals: Vec<Triple> = (0..10)
            .map(|i| {
                let v = s.literal_value(&format!("v{i}"));
                Triple { subject: b1, property: extra, object: v }
            })
            .collect();
        assert_eq!(s.insert_all(vals), 10);
        assert_eq!(s.len(), 13);
        s.undo_to(rev).unwrap();
        assert_eq!(s.len(), 3);
        s.check_invariants();
    }

    #[test]
    fn set_unique_replaces_value() {
        let (mut s, b1, _) = store_with_bundle();
        let name = s.atom("bundleName");
        let new = s.literal_value("J. Smith");
        s.set_unique(b1, name, new);
        assert_eq!(s.object_of(b1, name), Some(new));
        assert_eq!(s.count(&TriplePattern::default().with_subject(b1).with_property(name)), 1);
        s.check_invariants();
    }

    #[test]
    fn get_unique_rejects_ambiguity() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let p = s.atom("p");
        let v1 = s.literal_value("1");
        let v2 = s.literal_value("2");
        s.insert(a, p, v1);
        assert!(s.get_unique(a, p).is_some());
        s.insert(a, p, v2);
        assert!(s.get_unique(a, p).is_none(), "two matches must yield None");
    }

    #[test]
    fn remove_matching_removes_all() {
        let (mut s, b1, _) = store_with_bundle();
        let removed = s.remove_matching(&TriplePattern::default().with_subject(b1));
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 1);
        s.check_invariants();
    }

    #[test]
    fn fresh_resources_never_collide() {
        let mut s = TripleStore::new();
        s.atom("Bundle:0"); // occupy the first candidate
        let r1 = s.fresh_resource("Bundle");
        let r2 = s.fresh_resource("Bundle");
        assert_ne!(r1, r2);
        assert_ne!(s.resolve(r1), "Bundle:0");
        assert!(s.resolve(r1).starts_with("Bundle:"));
    }

    #[test]
    fn undo_restores_prior_contents() {
        let (mut s, b1, _) = store_with_bundle();
        let rev = s.revision();
        let before: std::collections::BTreeSet<_> = s.iter().collect();
        let extra = s.atom("extra");
        let v = s.literal_value("x");
        s.insert(b1, extra, v);
        let name = s.find_atom("bundleName").unwrap();
        let old = s.get_unique(b1, name).unwrap();
        s.remove(old);
        assert_ne!(before, s.iter().collect());
        s.undo_to(rev).unwrap();
        let after: std::collections::BTreeSet<_> = s.iter().collect();
        assert_eq!(before, after);
        s.check_invariants();
    }

    #[test]
    fn undo_to_current_revision_is_noop() {
        let (mut s, _, _) = store_with_bundle();
        let rev = s.revision();
        s.undo_to(rev).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn stats_track_growth() {
        let (s, _, _) = store_with_bundle();
        let st = s.stats();
        assert_eq!(st.triples, 3);
        assert!(st.atoms >= 6);
        assert!(st.estimated_bytes > 0);
        assert_eq!(st.journal_len, 3);
    }

    #[test]
    fn display_triple_is_readable() {
        let (s, b1, _) = store_with_bundle();
        let nested = s.find_atom("nestedBundle").unwrap();
        let t = s.get_unique(b1, nested).unwrap();
        assert_eq!(s.display_triple(&t), "bundle:1 --nestedBundle--> <bundle:2>");
    }

    #[test]
    fn find_literals_is_case_insensitive_and_literal_only() {
        let mut s = TripleStore::new();
        s.insert_literal("scrap:1", "scrapName", "Lasix 40 IV");
        s.insert_literal("scrap:2", "scrapName", "lasix drip");
        s.insert_literal("scrap:3", "scrapName", "KCl 20");
        s.insert_resource("bundle:1", "bundleContent", "Lasix-shrine"); // resource: excluded
        let hits = s.find_literals("LASIX");
        assert_eq!(hits.len(), 2);
        assert!(s.find_literals("digoxin").is_empty());
        assert_eq!(s.find_literals("").len(), 3, "empty needle matches all literals");
    }

    #[test]
    fn find_literals_returns_interning_order() {
        let mut s = TripleStore::new();
        // Literals intern in this order: "beta", "alpha", "betamax".
        s.insert_literal("s3", "name", "beta");
        s.insert_literal("s1", "name", "alpha");
        s.insert_literal("s2", "name", "betamax");
        s.insert_literal("s1", "alias", "beta"); // second carrier of "beta"
        let hits = s.find_literals("beta");
        let rendered: Vec<String> = hits.iter().map(|t| s.display_triple(t)).collect();
        // Matching literals in first-interning order ("beta" before
        // "betamax"); within one literal, (subject, property) atom order —
        // "s3" interned before "s1", so it leads.
        assert_eq!(
            rendered,
            vec![
                r#"s3 --name--> "beta""#,
                r#"s1 --alias--> "beta""#,
                r#"s2 --name--> "betamax""#,
            ]
        );
        // Removing the last carrier of a literal drops it from the
        // candidate set entirely.
        let t = hits[0];
        s.remove(t);
        let t = s.find_literals("beta")[0];
        s.remove(t);
        assert_eq!(s.find_literals("beta").len(), 1, "only betamax remains");
        s.check_invariants();
    }

    #[test]
    fn insert_helpers_intern_and_insert() {
        let mut s = TripleStore::new();
        s.insert_literal("scrap:1", "scrapName", "Na 140");
        s.insert_resource("bundle:1", "bundleContent", "scrap:1");
        assert_eq!(s.len(), 2);
        let scrap = s.find_atom("scrap:1").unwrap();
        assert_eq!(
            s.count(&TriplePattern::default().with_object(Value::Resource(scrap))),
            1
        );
    }

    #[test]
    fn clear_resets_everything() {
        let (mut s, _, _) = store_with_bundle();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats().atoms, 0);
        assert_eq!(s.revision(), Revision::start());
    }

    #[test]
    fn value_helpers() {
        let mut s = TripleStore::new();
        let lit = s.literal_value("text");
        let res = Value::Resource(s.atom("r:1"));
        assert_eq!(s.value_str(lit), Some("text"));
        assert_eq!(s.value_str(res), None);
        assert_eq!(s.value_text(res), "r:1");
        assert!(res.is_resource());
        assert!(!lit.is_resource());
    }
}
