//! Reachability views over a triple store.
//!
//! "A view is specified by selecting a resource (such as a Bundle id),
//! where all triples that can be reached from this resource are returned
//! (e.g., all triples representing nested Bundles within the given Bundle
//! along with their Scraps)" — paper §4.4.

use crate::atom::Atom;
use crate::store::{Triple, TriplePattern, TripleStore, Value};
use std::collections::HashSet;

/// A materialized reachability view: the root it was computed from and
/// every triple reachable by following resource-valued objects.
#[derive(Debug, Clone)]
pub struct View {
    /// The resource the view was rooted at.
    pub root: Atom,
    /// All reachable triples, in discovery (breadth-first) order —
    /// deterministic given deterministic per-subject ordering.
    pub triples: Vec<Triple>,
    /// Every resource visited, including the root.
    pub resources: Vec<Atom>,
}

impl View {
    /// Number of triples in the view.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the root has no outgoing triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

impl TripleStore {
    /// Compute the reachability view rooted at `root`.
    ///
    /// Traversal follows `Value::Resource` objects only (literals are
    /// leaves), visits each resource once (cycles are safe), and expands
    /// each subject's triples in the SPO index's (property, object)
    /// order — subject-bound selection is a sorted prefix scan, so the
    /// output is deterministic without re-sorting.
    pub fn view(&self, root: Atom) -> View {
        let mut visited: HashSet<Atom> = HashSet::new();
        let mut frontier = vec![root];
        visited.insert(root);
        let mut triples = Vec::new();
        let mut resources = Vec::new();
        while let Some(subject) = frontier.pop() {
            resources.push(subject);
            let out = self.select(&TriplePattern::default().with_subject(subject));
            for t in out {
                if let Value::Resource(next) = t.object {
                    if visited.insert(next) {
                        frontier.push(next);
                    }
                }
                triples.push(t);
            }
        }
        View { root, triples, resources }
    }

    /// The set of resources with no incoming resource-valued triple —
    /// candidate roots when loading a persisted store.
    pub fn root_candidates(&self) -> Vec<Atom> {
        let mut subjects: HashSet<Atom> = self.iter().map(|t| t.subject).collect();
        for t in self.iter() {
            if let Value::Resource(o) = t.object {
                subjects.remove(&o);
            }
        }
        let mut roots: Vec<Atom> = subjects.into_iter().collect();
        roots.sort_unstable();
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// pad -> root bundle b1 -> {scrap s1, nested bundle b2 -> scrap s2};
    /// unrelated bundle b3 must stay out of the view.
    fn nested_store() -> (TripleStore, Atom, Atom, Atom) {
        let mut s = TripleStore::new();
        let pad = s.atom("pad:1");
        let b1 = s.atom("bundle:1");
        let b2 = s.atom("bundle:2");
        let b3 = s.atom("bundle:3");
        let s1 = s.atom("scrap:1");
        let s2 = s.atom("scrap:2");
        let root = s.atom("rootBundle");
        let content = s.atom("bundleContent");
        let nested = s.atom("nestedBundle");
        let name = s.atom("scrapName");
        let na = s.literal_value("Na 140");
        let k = s.literal_value("K 4.1");
        let stray = s.literal_value("unreachable");
        s.insert(pad, root, Value::Resource(b1));
        s.insert(b1, content, Value::Resource(s1));
        s.insert(b1, nested, Value::Resource(b2));
        s.insert(b2, content, Value::Resource(s2));
        s.insert(s1, name, na);
        s.insert(s2, name, k);
        s.insert(b3, name, stray);
        (s, pad, b1, b3)
    }

    #[test]
    fn view_includes_exactly_the_reachable_triples() {
        let (s, pad, _, b3) = nested_store();
        let v = s.view(pad);
        assert_eq!(v.len(), 6, "all but the stray triple");
        assert!(v.triples.iter().all(|t| t.subject != b3));
    }

    #[test]
    fn view_from_inner_bundle_is_partial() {
        let (s, _, b1, _) = nested_store();
        let v = s.view(b1);
        assert_eq!(v.len(), 5, "b1's two edges, b2's edge, both scraps' names");
    }

    #[test]
    fn view_of_leaf_resource() {
        let (s, _, _, _) = nested_store();
        let s1 = s.find_atom("scrap:1").unwrap();
        let v = s.view(s1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn view_of_unknown_resource_is_empty() {
        let (mut s, _, _, _) = nested_store();
        let ghost = s.atom("ghost");
        assert!(s.view(ghost).is_empty());
    }

    #[test]
    fn view_handles_cycles() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let b = s.atom("b");
        let p = s.atom("link");
        s.insert(a, p, Value::Resource(b));
        s.insert(b, p, Value::Resource(a));
        let v = s.view(a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.resources.len(), 2);
    }

    #[test]
    fn view_handles_self_loop() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let p = s.atom("self");
        s.insert(a, p, Value::Resource(a));
        let v = s.view(a);
        assert_eq!(v.len(), 1);
        assert_eq!(v.resources, vec![a]);
    }

    #[test]
    fn view_is_deterministic() {
        let (s, pad, _, _) = nested_store();
        let v1 = s.view(pad);
        let v2 = s.view(pad);
        assert_eq!(v1.triples, v2.triples);
    }

    #[test]
    fn root_candidates_finds_unreferenced_subjects() {
        let (s, pad, _, b3) = nested_store();
        let roots = s.root_candidates();
        assert!(roots.contains(&pad));
        assert!(roots.contains(&b3));
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn diamond_shapes_visit_shared_node_once() {
        let mut s = TripleStore::new();
        let top = s.atom("top");
        let l = s.atom("l");
        let r = s.atom("r");
        let bottom = s.atom("bottom");
        let p = s.atom("edge");
        let leaf = s.literal_value("leaf");
        s.insert(top, p, Value::Resource(l));
        s.insert(top, p, Value::Resource(r));
        s.insert(l, p, Value::Resource(bottom));
        s.insert(r, p, Value::Resource(bottom));
        s.insert(bottom, p, leaf);
        let v = s.view(top);
        assert_eq!(v.len(), 5);
        assert_eq!(v.resources.len(), 4, "bottom visited once");
    }
}
