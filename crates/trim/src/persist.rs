//! XML persistence for triple stores.
//!
//! The paper persists superimposed information "through XML files"
//! (§4.4). The format is a flat, RDF-flavoured element stream:
//!
//! ```xml
//! <?xml version="1.0" encoding="UTF-8"?>
//! <trim version="1">
//!   <t s="bundle:1" p="bundleName"><lit>John Smith</lit></t>
//!   <t s="bundle:1" p="nestedBundle"><res>bundle:2</res></t>
//! </trim>
//! ```
//!
//! Triples are written in sorted display order so output is canonical:
//! byte-identical stores serialize to byte-identical files.

use crate::error::TrimError;
use crate::store::{Triple, TripleStore, Value};
use slimio::{Integrity, Recovered, StdVfs, Vfs};
use std::path::Path;
use xmlkit::{Element, XmlWriter};

/// Current on-disk format version.
const FORMAT_VERSION: &str = "1";

/// Highest format version this build can read.
const SUPPORTED_VERSION: u32 = 1;

/// Version gate shared by strict and salvage loading: equal versions
/// load, newer versions are a typed refusal (we cannot guess a future
/// format), anything else is malformed.
fn check_version(root: &Element) -> Result<(), TrimError> {
    match root.attr("version") {
        Some(FORMAT_VERSION) => Ok(()),
        Some(other) => match other.trim().parse::<u32>() {
            Ok(n) if n > SUPPORTED_VERSION => Err(TrimError::UnsupportedVersion {
                found: other.to_string(),
                supported: SUPPORTED_VERSION,
            }),
            _ => Err(TrimError::Format {
                message: format!("unsupported format version {other:?}"),
            }),
        },
        None => Err(TrimError::Format { message: "missing version attribute".into() }),
    }
}

impl TripleStore {
    /// Serialize the whole store to canonical XML text.
    pub fn to_xml(&self) -> String {
        let mut entries: Vec<(String, String, bool, String)> = self
            .iter()
            .map(|t| {
                let (is_res, obj) = match t.object {
                    Value::Resource(a) => (true, self.resolve(a).to_string()),
                    Value::Literal(a) => (false, self.resolve(a).to_string()),
                };
                (self.resolve(t.subject).to_string(), self.resolve(t.property).to_string(), is_res, obj)
            })
            .collect();
        entries.sort();
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start("trim");
        w.attr("version", FORMAT_VERSION);
        for (s, p, is_res, obj) in &entries {
            w.start("t");
            w.attr("s", s);
            w.attr("p", p);
            w.leaf(if *is_res { "res" } else { "lit" }, obj);
            w.end();
        }
        w.end();
        w.finish()
    }

    /// Parse a store from XML text produced by [`TripleStore::to_xml`].
    ///
    /// The journal of the returned store starts empty (loading is not a
    /// "change").
    pub fn from_xml(text: &str) -> Result<TripleStore, TrimError> {
        let doc = xmlkit::parse(text)?;
        if doc.root.name != "trim" {
            return Err(TrimError::Format {
                message: format!("expected root element <trim>, found <{}>", doc.root.name),
            });
        }
        check_version(&doc.root)?;
        let mut store = TripleStore::new();
        // Intern while parsing, then rebuild the indexes in one batch:
        // this is the pad-load hot path.
        let mut batch: Vec<Triple> = Vec::new();
        for (i, t) in doc.root.elements().enumerate() {
            let (subject, property, object) = read_triple(t, i)?;
            let s = store.try_atom(&subject)?;
            let p = store.try_atom(&property)?;
            let o = match object {
                ObjectText::Resource(text) => Value::Resource(store.try_atom(&text)?),
                ObjectText::Literal(text) => Value::Literal(store.try_atom(&text)?),
            };
            batch.push(Triple { subject: s, property: p, object: o });
        }
        store.insert_all(batch);
        // Loading is initial state, not edits: start with a clean journal
        // so undo cannot unwind the load itself.
        store.journal_mut().truncate();
        // Never re-issue the name of an entity deleted before the save.
        store.resync_fresh_counter();
        Ok(store)
    }

    /// Write the store to a file: canonical XML, sealed with a checksum
    /// footer, installed atomically (write-temp → fsync → rename). A
    /// crash at any point leaves the previous file intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TrimError> {
        self.save_to(&StdVfs, path.as_ref())
    }

    /// [`save`](TripleStore::save) through an explicit [`Vfs`] backend.
    pub fn save_to(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), TrimError> {
        slimio::save_atomic(vfs, path, &self.to_xml())?;
        Ok(())
    }

    /// Read a store from a file written by [`TripleStore::save`].
    ///
    /// Strict: a file whose checksum footer does not match its contents
    /// is refused with [`TrimError::Corrupt`] — use
    /// [`TripleStore::load_salvage`] to recover what remains. Legacy
    /// files without a footer are trusted as-is.
    pub fn load(path: impl AsRef<Path>) -> Result<TripleStore, TrimError> {
        TripleStore::load_from(&StdVfs, path.as_ref())
    }

    /// Open a store with the write-ahead log as its commit path: load
    /// the snapshot at `path` (or start empty if none exists), replay
    /// the paired `<path>.wal` log — salvaging a torn tail — and return
    /// the store positioned at its last committed state together with
    /// the attached [`StoreLog`].
    ///
    /// This is the authoritative way to open a store for ongoing
    /// mutation: edits become durable through [`StoreLog::commit`]
    /// (O(changes), one fsync per batch) instead of a full rewrite, and
    /// the full [`TripleStore::save`] rewrite becomes the *compaction*
    /// step ([`StoreLog::compact`]). Stale `.slimio-tmp` files from
    /// crashed saves are swept as part of opening.
    ///
    /// [`StoreLog`]: crate::wal::StoreLog
    /// [`StoreLog::commit`]: crate::wal::StoreLog::commit
    /// [`StoreLog::compact`]: crate::wal::StoreLog::compact
    pub fn open_logged(
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<(TripleStore, crate::wal::StoreLog, crate::wal::LogReport), TrimError> {
        slimio::sweep_stale_temp(vfs, path);
        let mut store = if vfs.exists(path) {
            TripleStore::load_from(vfs, path)?
        } else {
            TripleStore::new()
        };
        let (log, report) = crate::wal::StoreLog::attach(vfs, path, &mut store)?;
        Ok((store, log, report))
    }

    /// [`load`](TripleStore::load) through an explicit [`Vfs`] backend.
    pub fn load_from(vfs: &dyn Vfs, path: &Path) -> Result<TripleStore, TrimError> {
        let (verdict, payload) = slimio::load_sealed(vfs, path)?;
        if verdict == Integrity::Corrupt {
            return Err(TrimError::Corrupt {
                detail: format!("{} (checksum mismatch or truncation)", path.display()),
            });
        }
        TripleStore::from_xml(&payload)
    }

    /// Salvage a store from a damaged file: recover the longest valid
    /// prefix of triples instead of failing hard.
    ///
    /// Errors only when nothing at all is recoverable (the file is
    /// unreadable, its root element never materialized, or it declares
    /// a newer format than this build understands).
    pub fn load_salvage(path: impl AsRef<Path>) -> Result<Recovered<TripleStore>, TrimError> {
        TripleStore::load_salvage_from(&StdVfs, path.as_ref())
    }

    /// [`load_salvage`](TripleStore::load_salvage) through an explicit
    /// [`Vfs`] backend.
    pub fn load_salvage_from(
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<Recovered<TripleStore>, TrimError> {
        let (verdict, payload) = slimio::load_sealed(vfs, path)?;
        let mut recovered = TripleStore::from_xml_salvage(&payload)?;
        if verdict == Integrity::Corrupt {
            recovered.note("integrity check failed: checksum mismatch or truncation");
        }
        Ok(recovered)
    }

    /// Salvage a store from XML text: every well-formed triple in the
    /// longest valid prefix is kept, malformed or truncated records are
    /// counted as lost, and the report says what happened.
    pub fn from_xml_salvage(text: &str) -> Result<Recovered<TripleStore>, TrimError> {
        let salvaged = xmlkit::parse_salvage(text);
        let root = match salvaged.root {
            Some(root) => root,
            None => {
                return Err(match salvaged.error {
                    Some(e) => TrimError::Xml(e),
                    None => TrimError::Format { message: "no root element".into() },
                })
            }
        };
        if root.name != "trim" {
            return Err(TrimError::Format {
                message: format!("expected root element <trim>, found <{}>", root.name),
            });
        }
        check_version(&root)?;

        let mut store = TripleStore::new();
        let mut recovered = Recovered::clean((), 0);
        if let Some(e) = &salvaged.error {
            recovered.note(format!("file damaged: {e}"));
        }
        let children: Vec<&Element> = root.elements().collect();
        // With the root and a record both open at the failure point, the
        // last record was implicitly closed by the salvage parser: its
        // contents may be truncated mid-text, so it cannot be trusted
        // even if it happens to convert.
        let suspect_last = salvaged.unclosed >= 2;
        for (i, t) in children.iter().enumerate() {
            let is_last = i + 1 == children.len();
            if suspect_last && is_last {
                recovered.lost += 1;
                recovered.note(format!("triple #{i} truncated mid-record; dropped"));
                continue;
            }
            match read_triple(t, i) {
                Ok((subject, property, object)) => {
                    let s = store.try_atom(&subject)?;
                    let p = store.try_atom(&property)?;
                    let o = match object {
                        ObjectText::Resource(text) => Value::Resource(store.try_atom(&text)?),
                        ObjectText::Literal(text) => Value::Literal(store.try_atom(&text)?),
                    };
                    store.insert(s, p, o);
                    recovered.salvaged += 1;
                }
                Err(e) => {
                    recovered.lost += 1;
                    recovered.note(format!("skipped unreadable record: {e}"));
                }
            }
        }
        store.journal_mut().truncate();
        store.resync_fresh_counter();
        Ok(recovered.map(|()| store))
    }

    /// Serialize only the triples of a view (see [`TripleStore::view`])
    /// to the same XML format — the unit of pad-level persistence.
    pub fn view_to_xml(&self, root: crate::Atom) -> String {
        let view = self.view(root);
        let mut sub = TripleStore::new();
        let batch: Vec<Triple> = view
            .triples
            .iter()
            .map(|t| {
                let s = sub.atom(self.resolve(t.subject));
                let p = sub.atom(self.resolve(t.property));
                let o = match t.object {
                    Value::Resource(a) => {
                        let atom = sub.atom(self.resolve(a));
                        Value::Resource(atom)
                    }
                    Value::Literal(a) => sub.literal_value(self.resolve(a)),
                };
                Triple { subject: s, property: p, object: o }
            })
            .collect();
        sub.insert_all(batch);
        sub.to_xml()
    }

}

enum ObjectText {
    Resource(String),
    Literal(String),
}

/// Validate one `<t>` record and extract its parts.
fn read_triple(t: &Element, index: usize) -> Result<(String, String, ObjectText), TrimError> {
    if t.name != "t" {
        return Err(TrimError::Format {
            message: format!("unexpected element <{}> at triple position {index}", t.name),
        });
    }
    let subject = t.attr("s").ok_or_else(|| TrimError::Format {
        message: format!("triple #{index} missing 's' attribute"),
    })?;
    let property = t.attr("p").ok_or_else(|| TrimError::Format {
        message: format!("triple #{index} missing 'p' attribute"),
    })?;
    let object = read_object(t, index)?;
    Ok((subject.to_string(), property.to_string(), object))
}

fn read_object(t: &Element, index: usize) -> Result<ObjectText, TrimError> {
    let mut elems = t.elements();
    let child = elems.next().ok_or_else(|| TrimError::Format {
        message: format!("triple #{index} has no object element"),
    })?;
    if elems.next().is_some() {
        return Err(TrimError::Format {
            message: format!("triple #{index} has more than one object element"),
        });
    }
    match child.name.as_str() {
        "res" => Ok(ObjectText::Resource(child.text())),
        "lit" => Ok(ObjectText::Literal(child.text())),
        other => Err(TrimError::Format {
            message: format!("triple #{index} has unknown object kind <{other}>"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TriplePattern;

    fn sample() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_literal("bundle:1", "bundleName", "John Smith");
        s.insert_resource("bundle:1", "nestedBundle", "bundle:2");
        s.insert_literal("bundle:2", "bundleName", "Electro<lyte> & \"friends\"");
        s
    }

    #[test]
    fn xml_roundtrip_preserves_contents() {
        let s = sample();
        let xml = s.to_xml();
        let s2 = TripleStore::from_xml(&xml).unwrap();
        assert_eq!(s2.len(), s.len());
        let display = |st: &TripleStore| {
            let mut v: Vec<String> =
                st.iter().map(|t| st.display_triple(&t)).collect();
            v.sort();
            v
        };
        assert_eq!(display(&s), display(&s2));
        s2.check_invariants();
    }

    #[test]
    fn serialization_is_canonical() {
        // Same contents inserted in different orders → identical bytes.
        let mut a = TripleStore::new();
        a.insert_literal("x", "p", "1");
        a.insert_literal("y", "p", "2");
        let mut b = TripleStore::new();
        b.insert_literal("y", "p", "2");
        b.insert_literal("x", "p", "1");
        assert_eq!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn loaded_store_has_clean_journal() {
        let s2 = TripleStore::from_xml(&sample().to_xml()).unwrap();
        assert_eq!(s2.stats().journal_len, 0);
    }

    #[test]
    fn resource_vs_literal_distinction_survives() {
        let s2 = TripleStore::from_xml(&sample().to_xml()).unwrap();
        let b1 = s2.find_atom("bundle:1").unwrap();
        let nested = s2.find_atom("nestedBundle").unwrap();
        let t = s2.get_unique(b1, nested).unwrap();
        assert!(t.object.is_resource());
        let name = s2.find_atom("bundleName").unwrap();
        let t = s2.get_unique(b1, name).unwrap();
        assert!(!t.object.is_resource());
    }

    #[test]
    fn rejects_wrong_root() {
        let err = TripleStore::from_xml("<wrong/>").unwrap_err();
        assert!(matches!(err, TrimError::Format { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let err = TripleStore::from_xml(r#"<trim version="99"/>"#).unwrap_err();
        assert!(err.to_string().contains("99"));
        let err = TripleStore::from_xml("<trim/>").unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_malformed_triples() {
        let cases = [
            r#"<trim version="1"><t p="p"><lit>x</lit></t></trim>"#,
            r#"<trim version="1"><t s="s"><lit>x</lit></t></trim>"#,
            r#"<trim version="1"><t s="s" p="p"/></trim>"#,
            r#"<trim version="1"><t s="s" p="p"><odd>x</odd></t></trim>"#,
            r#"<trim version="1"><t s="s" p="p"><lit>x</lit><lit>y</lit></t></trim>"#,
            r#"<trim version="1"><u s="s" p="p"><lit>x</lit></u></trim>"#,
        ];
        for c in cases {
            assert!(
                matches!(TripleStore::from_xml(c), Err(TrimError::Format { .. })),
                "should reject: {c}"
            );
        }
    }

    #[test]
    fn rejects_non_xml() {
        assert!(matches!(TripleStore::from_xml("not xml"), Err(TrimError::Xml(_))));
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join("trim-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.xml");
        let s = sample();
        s.save(&path).unwrap();
        let s2 = TripleStore::load(&path).unwrap();
        assert_eq!(s2.len(), s.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn view_to_xml_serializes_only_reachable() {
        let mut s = sample();
        s.insert_literal("orphan", "p", "v");
        let b1 = s.find_atom("bundle:1").unwrap();
        let xml = s.view_to_xml(b1);
        let sub = TripleStore::from_xml(&xml).unwrap();
        assert_eq!(sub.len(), 3, "orphan excluded");
        assert!(sub.find_atom("orphan").is_none());
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = TripleStore::new();
        let s2 = TripleStore::from_xml(&s.to_xml()).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn select_after_load_uses_indexes() {
        let s2 = TripleStore::from_xml(&sample().to_xml()).unwrap();
        let p = s2.find_atom("bundleName").unwrap();
        assert_eq!(s2.select(&TriplePattern::default().with_property(p)).len(), 2);
    }

    // ---- durability & recovery ------------------------------------------

    use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};

    #[test]
    fn newer_version_is_a_typed_refusal() {
        let err = TripleStore::from_xml(r#"<trim version="2"/>"#).unwrap_err();
        assert!(
            matches!(err, TrimError::UnsupportedVersion { ref found, supported: 1 } if found == "2")
        );
        // Salvage refuses too: a future format cannot be guessed at.
        assert!(matches!(
            TripleStore::from_xml_salvage(r#"<trim version="2"/>"#),
            Err(TrimError::UnsupportedVersion { .. })
        ));
        // Non-numeric garbage is malformed, not "newer".
        assert!(matches!(
            TripleStore::from_xml(r#"<trim version="latest"/>"#),
            Err(TrimError::Format { .. })
        ));
    }

    #[test]
    fn saved_files_are_sealed_and_roundtrip() {
        let vfs = MemVfs::new();
        let s = sample();
        s.save_to(&vfs, Path::new("store.xml")).unwrap();
        assert_eq!(vfs.file_count(), 1, "temp file must not linger");
        let raw = String::from_utf8(vfs.bytes("store.xml").unwrap().to_vec()).unwrap();
        assert!(raw.contains("<!--slimio v1 crc32="), "missing seal footer");
        let s2 = TripleStore::load_from(&vfs, Path::new("store.xml")).unwrap();
        assert_eq!(s2.len(), s.len());
    }

    #[test]
    fn crash_during_save_preserves_previous_file() {
        let old = sample();
        let mut new = sample();
        new.insert_literal("bundle:3", "bundleName", "Recent Work");
        for op in [FaultOp::Write, FaultOp::Sync, FaultOp::Rename] {
            for mode in [FaultMode::Fail, FaultMode::Torn] {
                let base = MemVfs::new();
                old.save_to(&base, Path::new("store.xml")).unwrap();
                let vfs = FaultVfs::new(base, FaultConfig::new(op, mode, 0, 11).halting());
                assert!(new.save_to(&vfs, Path::new("store.xml")).is_err());
                let disk = vfs.into_inner();
                let reread = TripleStore::load_from(&disk, Path::new("store.xml")).unwrap();
                assert_eq!(reread.len(), old.len(), "{op:?}/{mode:?} damaged the previous file");
            }
        }
    }

    #[test]
    fn corrupt_file_refused_strictly_but_salvageable() {
        let vfs = MemVfs::new();
        sample().save_to(&vfs, Path::new("store.xml")).unwrap();
        let mut bytes = vfs.bytes("store.xml").unwrap().to_vec();
        // Flip a byte inside a literal so the XML stays well-formed but
        // the checksum no longer matches.
        let idx = String::from_utf8(bytes.clone()).unwrap().find("John").unwrap();
        bytes[idx] = b'X';
        vfs.write(Path::new("store.xml"), &bytes).unwrap();

        let err = TripleStore::load_from(&vfs, Path::new("store.xml")).unwrap_err();
        assert!(matches!(err, TrimError::Corrupt { .. }));

        let recovered = TripleStore::load_salvage_from(&vfs, Path::new("store.xml")).unwrap();
        assert_eq!(recovered.salvaged, 3);
        assert!(!recovered.is_clean());
        assert!(recovered.notes.iter().any(|n| n.contains("integrity")));
    }

    #[test]
    fn salvage_recovers_prefix_of_truncated_store() {
        let xml = sample().to_xml();
        // Cut inside the last record's literal text: the record parses
        // but its object may be incomplete, so it must be distrusted.
        let cut = xml.rfind("<lit>").unwrap() + "<lit>".len() + 1;
        let recovered = TripleStore::from_xml_salvage(&xml[..cut]).unwrap();
        assert_eq!(recovered.salvaged + recovered.lost, 3);
        assert!(recovered.lost >= 1, "truncated record must not be trusted");
        assert_eq!(recovered.value.len(), recovered.salvaged);
        assert!(!recovered.is_clean());
    }

    #[test]
    fn salvage_of_wellformed_store_is_clean() {
        let recovered = TripleStore::from_xml_salvage(&sample().to_xml()).unwrap();
        assert!(recovered.is_clean());
        assert_eq!(recovered.salvaged, 3);
        assert_eq!(recovered.value.len(), 3);
    }

    #[test]
    fn salvage_skips_malformed_records_mid_file() {
        let xml = r#"<trim version="1"><t s="a" p="b"><lit>x</lit></t><t s="broken"/><t s="c" p="d"><lit>y</lit></t></trim>"#;
        let recovered = TripleStore::from_xml_salvage(xml).unwrap();
        assert_eq!(recovered.salvaged, 2);
        assert_eq!(recovered.lost, 1);
        assert!(recovered.notes.iter().any(|n| n.contains("unreadable")));
    }

    #[test]
    fn every_truncation_of_a_saved_store_loads_salvages_or_errors() {
        let vfs = MemVfs::new();
        sample().save_to(&vfs, Path::new("store.xml")).unwrap();
        let sealed = vfs.bytes("store.xml").unwrap().to_vec();
        for cut in 0..sealed.len() {
            let damaged = MemVfs::new();
            damaged.write(Path::new("store.xml"), &sealed[..cut]).unwrap();
            // Strict load: full file verifies, any truncation is refused
            // or parses to a typed error — never a panic.
            let _ = TripleStore::load_from(&damaged, Path::new("store.xml"));
            // Salvage load: same guarantee, plus an accurate report.
            if let Ok(r) = TripleStore::load_salvage_from(&damaged, Path::new("store.xml")) {
                assert!(r.salvaged <= 3);
                assert_eq!(r.value.len(), r.salvaged);
            }
        }
    }
}
