//! XML persistence for triple stores.
//!
//! The paper persists superimposed information "through XML files"
//! (§4.4). The format is a flat, RDF-flavoured element stream:
//!
//! ```xml
//! <?xml version="1.0" encoding="UTF-8"?>
//! <trim version="1">
//!   <t s="bundle:1" p="bundleName"><lit>John Smith</lit></t>
//!   <t s="bundle:1" p="nestedBundle"><res>bundle:2</res></t>
//! </trim>
//! ```
//!
//! Triples are written in sorted display order so output is canonical:
//! byte-identical stores serialize to byte-identical files.

use crate::error::TrimError;
use crate::store::{TripleStore, Value};
use std::path::Path;
use xmlkit::{Element, XmlWriter};

/// Current on-disk format version.
const FORMAT_VERSION: &str = "1";

impl TripleStore {
    /// Serialize the whole store to canonical XML text.
    pub fn to_xml(&self) -> String {
        let mut entries: Vec<(String, String, bool, String)> = self
            .iter()
            .map(|t| {
                let (is_res, obj) = match t.object {
                    Value::Resource(a) => (true, self.resolve(a).to_string()),
                    Value::Literal(a) => (false, self.resolve(a).to_string()),
                };
                (self.resolve(t.subject).to_string(), self.resolve(t.property).to_string(), is_res, obj)
            })
            .collect();
        entries.sort();
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start("trim");
        w.attr("version", FORMAT_VERSION);
        for (s, p, is_res, obj) in &entries {
            w.start("t");
            w.attr("s", s);
            w.attr("p", p);
            w.leaf(if *is_res { "res" } else { "lit" }, obj);
            w.end();
        }
        w.end();
        w.finish()
    }

    /// Parse a store from XML text produced by [`TripleStore::to_xml`].
    ///
    /// The journal of the returned store starts empty (loading is not a
    /// "change").
    pub fn from_xml(text: &str) -> Result<TripleStore, TrimError> {
        let doc = xmlkit::parse(text)?;
        if doc.root.name != "trim" {
            return Err(TrimError::Format {
                message: format!("expected root element <trim>, found <{}>", doc.root.name),
            });
        }
        match doc.root.attr("version") {
            Some(FORMAT_VERSION) => {}
            Some(other) => {
                return Err(TrimError::Format {
                    message: format!("unsupported format version {other:?}"),
                })
            }
            None => {
                return Err(TrimError::Format { message: "missing version attribute".into() })
            }
        }
        let mut store = TripleStore::new();
        for (i, t) in doc.root.elements().enumerate() {
            if t.name != "t" {
                return Err(TrimError::Format {
                    message: format!("unexpected element <{}> at triple position {i}", t.name),
                });
            }
            let subject = t.attr("s").ok_or_else(|| TrimError::Format {
                message: format!("triple #{i} missing 's' attribute"),
            })?;
            let property = t.attr("p").ok_or_else(|| TrimError::Format {
                message: format!("triple #{i} missing 'p' attribute"),
            })?;
            let object = read_object(t, i)?;
            let s = store.atom(subject);
            let p = store.atom(property);
            let o = match object {
                ObjectText::Resource(text) => Value::Resource(store.atom(&text)),
                ObjectText::Literal(text) => store.literal_value(&text),
            };
            store.insert(s, p, o);
        }
        // Loading is initial state, not edits: start with a clean journal
        // so undo cannot unwind the load itself.
        store.journal_mut().truncate();
        Ok(store)
    }

    /// Write the store to a file (canonical XML).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TrimError> {
        std::fs::write(path, self.to_xml())?;
        Ok(())
    }

    /// Read a store from a file written by [`TripleStore::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<TripleStore, TrimError> {
        let text = std::fs::read_to_string(path)?;
        TripleStore::from_xml(&text)
    }

    /// Serialize only the triples of a view (see [`TripleStore::view`])
    /// to the same XML format — the unit of pad-level persistence.
    pub fn view_to_xml(&self, root: crate::Atom) -> String {
        let view = self.view(root);
        let mut sub = TripleStore::new();
        for t in &view.triples {
            let s = sub.atom(self.resolve(t.subject));
            let p = sub.atom(self.resolve(t.property));
            let o = match t.object {
                Value::Resource(a) => {
                    let atom = sub.atom(self.resolve(a));
                    Value::Resource(atom)
                }
                Value::Literal(a) => sub.literal_value(self.resolve(a)),
            };
            sub.insert(s, p, o);
        }
        sub.to_xml()
    }

}

enum ObjectText {
    Resource(String),
    Literal(String),
}

fn read_object(t: &Element, index: usize) -> Result<ObjectText, TrimError> {
    let mut elems = t.elements();
    let child = elems.next().ok_or_else(|| TrimError::Format {
        message: format!("triple #{index} has no object element"),
    })?;
    if elems.next().is_some() {
        return Err(TrimError::Format {
            message: format!("triple #{index} has more than one object element"),
        });
    }
    match child.name.as_str() {
        "res" => Ok(ObjectText::Resource(child.text())),
        "lit" => Ok(ObjectText::Literal(child.text())),
        other => Err(TrimError::Format {
            message: format!("triple #{index} has unknown object kind <{other}>"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TriplePattern;

    fn sample() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_literal("bundle:1", "bundleName", "John Smith");
        s.insert_resource("bundle:1", "nestedBundle", "bundle:2");
        s.insert_literal("bundle:2", "bundleName", "Electro<lyte> & \"friends\"");
        s
    }

    #[test]
    fn xml_roundtrip_preserves_contents() {
        let s = sample();
        let xml = s.to_xml();
        let s2 = TripleStore::from_xml(&xml).unwrap();
        assert_eq!(s2.len(), s.len());
        let display = |st: &TripleStore| {
            let mut v: Vec<String> =
                st.iter().map(|t| st.display_triple(t)).collect();
            v.sort();
            v
        };
        assert_eq!(display(&s), display(&s2));
        s2.check_invariants();
    }

    #[test]
    fn serialization_is_canonical() {
        // Same contents inserted in different orders → identical bytes.
        let mut a = TripleStore::new();
        a.insert_literal("x", "p", "1");
        a.insert_literal("y", "p", "2");
        let mut b = TripleStore::new();
        b.insert_literal("y", "p", "2");
        b.insert_literal("x", "p", "1");
        assert_eq!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn loaded_store_has_clean_journal() {
        let s2 = TripleStore::from_xml(&sample().to_xml()).unwrap();
        assert_eq!(s2.stats().journal_len, 0);
    }

    #[test]
    fn resource_vs_literal_distinction_survives() {
        let s2 = TripleStore::from_xml(&sample().to_xml()).unwrap();
        let b1 = s2.find_atom("bundle:1").unwrap();
        let nested = s2.find_atom("nestedBundle").unwrap();
        let t = s2.get_unique(b1, nested).unwrap();
        assert!(t.object.is_resource());
        let name = s2.find_atom("bundleName").unwrap();
        let t = s2.get_unique(b1, name).unwrap();
        assert!(!t.object.is_resource());
    }

    #[test]
    fn rejects_wrong_root() {
        let err = TripleStore::from_xml("<wrong/>").unwrap_err();
        assert!(matches!(err, TrimError::Format { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let err = TripleStore::from_xml(r#"<trim version="99"/>"#).unwrap_err();
        assert!(err.to_string().contains("99"));
        let err = TripleStore::from_xml("<trim/>").unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_malformed_triples() {
        let cases = [
            r#"<trim version="1"><t p="p"><lit>x</lit></t></trim>"#,
            r#"<trim version="1"><t s="s"><lit>x</lit></t></trim>"#,
            r#"<trim version="1"><t s="s" p="p"/></trim>"#,
            r#"<trim version="1"><t s="s" p="p"><odd>x</odd></t></trim>"#,
            r#"<trim version="1"><t s="s" p="p"><lit>x</lit><lit>y</lit></t></trim>"#,
            r#"<trim version="1"><u s="s" p="p"><lit>x</lit></u></trim>"#,
        ];
        for c in cases {
            assert!(
                matches!(TripleStore::from_xml(c), Err(TrimError::Format { .. })),
                "should reject: {c}"
            );
        }
    }

    #[test]
    fn rejects_non_xml() {
        assert!(matches!(TripleStore::from_xml("not xml"), Err(TrimError::Xml(_))));
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join("trim-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.xml");
        let s = sample();
        s.save(&path).unwrap();
        let s2 = TripleStore::load(&path).unwrap();
        assert_eq!(s2.len(), s.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn view_to_xml_serializes_only_reachable() {
        let mut s = sample();
        s.insert_literal("orphan", "p", "v");
        let b1 = s.find_atom("bundle:1").unwrap();
        let xml = s.view_to_xml(b1);
        let sub = TripleStore::from_xml(&xml).unwrap();
        assert_eq!(sub.len(), 3, "orphan excluded");
        assert!(sub.find_atom("orphan").is_none());
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = TripleStore::new();
        let s2 = TripleStore::from_xml(&s.to_xml()).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn select_after_load_uses_indexes() {
        let s2 = TripleStore::from_xml(&sample().to_xml()).unwrap();
        let p = s2.find_atom("bundleName").unwrap();
        assert_eq!(s2.select(&TriplePattern::default().with_property(p)).len(), 2);
    }
}
