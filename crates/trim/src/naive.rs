//! An unindexed, uninterned triple store: the E9 ablation baseline.
//!
//! [`NaiveStore`] is what a first-cut implementation of TRIM looks like —
//! a `Vec` of owned string triples with linear-scan queries. The E9
//! benchmark compares it against [`crate::TripleStore`] to quantify what
//! interning and indexing buy, which is the design-choice ablation
//! DESIGN.md calls out.

/// A triple of owned strings; `object_is_resource` plays the role of
/// [`crate::Value`]'s tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveTriple {
    pub subject: String,
    pub property: String,
    pub object: String,
    pub object_is_resource: bool,
}

/// The scan-everything baseline store.
#[derive(Debug, Default)]
pub struct NaiveStore {
    triples: Vec<NaiveTriple>,
}

impl NaiveStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert with set semantics (scan for duplicates first). Returns
    /// `true` if newly added.
    pub fn insert(&mut self, subject: &str, property: &str, object: &str, object_is_resource: bool) -> bool {
        if self.triples.iter().any(|t| {
            t.subject == subject
                && t.property == property
                && t.object == object
                && t.object_is_resource == object_is_resource
        }) {
            return false;
        }
        self.triples.push(NaiveTriple {
            subject: subject.to_string(),
            property: property.to_string(),
            object: object.to_string(),
            object_is_resource,
        });
        true
    }

    /// Remove an exact triple; `true` if it was present.
    pub fn remove(&mut self, subject: &str, property: &str, object: &str) -> bool {
        let before = self.triples.len();
        self.triples
            .retain(|t| !(t.subject == subject && t.property == property && t.object == object));
        self.triples.len() != before
    }

    /// Selection query by optional fixed fields, via full scan.
    pub fn select(
        &self,
        subject: Option<&str>,
        property: Option<&str>,
        object: Option<&str>,
    ) -> Vec<&NaiveTriple> {
        self.triples
            .iter()
            .filter(|t| {
                subject.is_none_or(|s| t.subject == s)
                    && property.is_none_or(|p| t.property == p)
                    && object.is_none_or(|o| t.object == o)
            })
            .collect()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Remove an exact triple including its object kind; `true` if it was
    /// present. Unlike [`NaiveStore::remove`], this distinguishes a
    /// resource object `"b2"` from a literal object `"b2"`, matching
    /// [`crate::TripleStore::remove`] semantics for differential testing.
    pub fn remove_exact(
        &mut self,
        subject: &str,
        property: &str,
        object: &str,
        object_is_resource: bool,
    ) -> bool {
        let before = self.triples.len();
        self.triples.retain(|t| {
            !(t.subject == subject
                && t.property == property
                && t.object == object
                && t.object_is_resource == object_is_resource)
        });
        self.triples.len() != before
    }

    /// Kind-aware selection: like [`NaiveStore::select`] but an object
    /// constraint also fixes whether the object is a resource. Mirrors
    /// [`crate::TriplePattern`] matching.
    pub fn select_matching(
        &self,
        subject: Option<&str>,
        property: Option<&str>,
        object: Option<(&str, bool)>,
    ) -> Vec<&NaiveTriple> {
        self.triples
            .iter()
            .filter(|t| {
                subject.is_none_or(|s| t.subject == s)
                    && property.is_none_or(|p| t.property == p)
                    && object.is_none_or(|(o, is_res)| {
                        t.object == o && t.object_is_resource == is_res
                    })
            })
            .collect()
    }

    /// Remove every triple matched by the kind-aware pattern; returns how
    /// many were removed. Mirrors [`crate::TripleStore::remove_matching`].
    pub fn remove_matching(
        &mut self,
        subject: Option<&str>,
        property: Option<&str>,
        object: Option<(&str, bool)>,
    ) -> usize {
        let before = self.triples.len();
        self.triples.retain(|t| {
            !(subject.is_none_or(|s| t.subject == s)
                && property.is_none_or(|p| t.property == p)
                && object.is_none_or(|(o, is_res)| {
                    t.object == o && t.object_is_resource == is_res
                }))
        });
        before - self.triples.len()
    }

    /// Replace all `(subject, property, *)` triples with the single given
    /// one. Mirrors [`crate::TripleStore::set_unique`].
    pub fn set_unique(
        &mut self,
        subject: &str,
        property: &str,
        object: &str,
        object_is_resource: bool,
    ) {
        self.triples
            .retain(|t| !(t.subject == subject && t.property == property));
        self.triples.push(NaiveTriple {
            subject: subject.to_string(),
            property: property.to_string(),
            object: object.to_string(),
            object_is_resource,
        });
    }

    /// Estimated resident bytes: every string owned separately, no
    /// sharing. Comparable to [`crate::StoreStats::estimated_bytes`].
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        self.triples
            .iter()
            .map(|t| {
                t.subject.len() + t.property.len() + t.object.len() + 3 * size_of::<String>() + 1
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_select_remove() {
        let mut s = NaiveStore::new();
        assert!(s.insert("b1", "name", "John", false));
        assert!(!s.insert("b1", "name", "John", false));
        assert!(s.insert("b1", "nested", "b2", true));
        assert_eq!(s.select(Some("b1"), None, None).len(), 2);
        assert_eq!(s.select(None, Some("name"), None).len(), 1);
        assert_eq!(s.select(None, None, Some("b2")).len(), 1);
        assert!(s.remove("b1", "name", "John"));
        assert!(!s.remove("b1", "name", "John"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn naive_matches_indexed_semantics() {
        // Cross-check: same inserts in both stores, same query answers.
        use crate::{TriplePattern, TripleStore, Value};
        let data = [
            ("b1", "name", "John", false),
            ("b1", "content", "s1", true),
            ("b2", "name", "Jane", false),
            ("s1", "name", "Na 140", false),
        ];
        let mut naive = NaiveStore::new();
        let mut indexed = TripleStore::new();
        for (s, p, o, is_res) in data {
            naive.insert(s, p, o, is_res);
            if is_res {
                indexed.insert_resource(s, p, o);
            } else {
                indexed.insert_literal(s, p, o);
            }
        }
        let name = indexed.find_atom("name").unwrap();
        assert_eq!(
            naive.select(None, Some("name"), None).len(),
            indexed.select(&TriplePattern::default().with_property(name)).len()
        );
        let b1 = indexed.find_atom("b1").unwrap();
        assert_eq!(
            naive.select(Some("b1"), None, None).len(),
            indexed.select(&TriplePattern::default().with_subject(b1)).len()
        );
        let s1 = indexed.find_atom("s1").unwrap();
        assert_eq!(
            naive.select(None, None, Some("s1")).len(),
            indexed.select(&TriplePattern::default().with_object(Value::Resource(s1))).len()
        );
    }

    #[test]
    fn estimated_bytes_grow_with_duplication() {
        let mut s = NaiveStore::new();
        s.insert("subject-with-a-long-name", "property", "value-1", false);
        let one = s.estimated_bytes();
        s.insert("subject-with-a-long-name", "property", "value-2", false);
        // The naive store re-stores the long subject; bytes roughly double.
        assert!(s.estimated_bytes() > one + 20);
    }
}
