//! The change journal: an append-only log of store mutations.
//!
//! The journal gives DMIs atomic multi-triple operations: take the
//! revision, perform a sequence of inserts/removes, and on failure
//! [`crate::TripleStore::undo_to`] the saved revision. It also powers
//! audit displays ("what changed since the pad was loaded?").

use crate::store::Triple;
use crate::TrimError;

/// A monotonically increasing change counter. Revision `n` means "after
/// the first `n` changes".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Revision(u64);

impl Revision {
    /// The revision of an empty, untouched store.
    pub fn start() -> Self {
        Revision(0)
    }

    /// The raw change count.
    pub fn count(self) -> u64 {
        self.0
    }
}

/// One recorded mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    Insert(Triple),
    Remove(Triple),
}

impl Change {
    /// The triple this change touched.
    pub fn triple(&self) -> Triple {
        match self {
            Change::Insert(t) | Change::Remove(t) => *t,
        }
    }
}

/// An append-only log of [`Change`]s with a current [`Revision`].
///
/// The journal retains full history from the store's creation (or last
/// `clear`); `base` tracks how many leading entries have been truncated
/// so `undo` can refuse to cross a truncation point.
#[derive(Debug, Default)]
pub struct Journal {
    changes: Vec<Change>,
    /// Revision number of `changes[0]` (0 unless truncated).
    base: u64,
    /// Low-water mark: the lowest revision the store has been rewound to
    /// (via [`Journal::take_since`]) since the last
    /// [`Journal::reset_low_water`] or [`Journal::truncate`]. A durability
    /// layer that remembers "everything up to revision R is persisted"
    /// checks this to detect an undo that crossed R — in that case the
    /// entries after R in the journal are no longer the delta between the
    /// persisted state and the current one.
    low: u64,
    /// Second, independent low-water channel owned by the snapshot
    /// publisher ([`crate::snapshot::SnapshotPublisher`]). The durability
    /// layer and the snapshot layer track different boundaries (last
    /// commit vs. last publish), so each needs its own mark — sharing
    /// `low` would let one layer's reset mask a rewind from the other.
    snap_low: u64,
}

impl Journal {
    /// An empty journal at revision zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a change, advancing the revision.
    pub fn record(&mut self, change: Change) {
        self.changes.push(change);
    }

    /// Pre-grow the log for a known-size batch so `insert_all` /
    /// `remove_all` pay for at most one reallocation.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.changes.reserve(additional);
    }

    /// The current revision.
    pub fn revision(&self) -> Revision {
        Revision(self.base + self.changes.len() as u64)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Entries recorded after `rev`, oldest first (read-only view).
    pub fn since(&self, rev: Revision) -> &[Change] {
        let skip = rev.0.saturating_sub(self.base) as usize;
        self.changes.get(skip.min(self.changes.len())..).unwrap_or(&[])
    }

    /// Remove and return all entries recorded after `rev` (oldest first);
    /// the store undoes them in reverse.
    ///
    /// # Errors
    ///
    /// [`TrimError::UndoPastStart`] if `rev` predates retained history.
    pub fn take_since(&mut self, rev: Revision) -> Result<Vec<Change>, TrimError> {
        if rev.0 < self.base {
            return Err(TrimError::UndoPastStart {
                requested: (self.base - rev.0) as usize + self.changes.len(),
                available: self.changes.len(),
            });
        }
        let keep = (rev.0 - self.base) as usize;
        if keep > self.changes.len() {
            // Future revision: nothing to take.
            return Ok(Vec::new());
        }
        self.low = self.low.min(rev.0);
        self.snap_low = self.snap_low.min(rev.0);
        Ok(self.changes.split_off(keep))
    }

    /// Drop history up to the current revision, freeing memory. Undo can
    /// no longer cross this point.
    pub fn truncate(&mut self) {
        self.base += self.changes.len() as u64;
        self.changes.clear();
        // Rewinding below the truncation point is now impossible.
        self.low = self.base;
        self.snap_low = self.base;
    }

    /// The oldest revision retained history can reach (the truncation
    /// point).
    pub fn earliest(&self) -> Revision {
        Revision(self.base)
    }

    /// The lowest revision rewound to since the last
    /// [`Journal::reset_low_water`] (or [`Journal::truncate`]). See the
    /// field documentation for the durability contract.
    pub fn low_water(&self) -> Revision {
        Revision(self.low)
    }

    /// Declare the current revision a durability boundary: raise the
    /// low-water mark to it so a later rewind below this point is
    /// detectable.
    pub fn reset_low_water(&mut self) {
        self.low = self.base + self.changes.len() as u64;
    }

    /// The snapshot layer's low-water mark: the lowest revision rewound
    /// to since the last [`Journal::reset_snapshot_low_water`] (or
    /// [`Journal::truncate`]). Same contract as [`Journal::low_water`],
    /// on an independent channel so the snapshot publisher and the
    /// durability layer cannot mask each other's rewind detection.
    pub fn snapshot_low_water(&self) -> Revision {
        Revision(self.snap_low)
    }

    /// Declare the current revision a snapshot-publish boundary: raise
    /// the snapshot low-water mark so a later rewind below this point
    /// is detectable by the publisher.
    pub fn reset_snapshot_low_water(&mut self) {
        self.snap_low = self.base + self.changes.len() as u64;
    }

    /// Iterate over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Change> {
        self.changes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Triple, Value};
    use crate::Atom;

    fn t(n: u32) -> Triple {
        // Fabricate atoms by interning into a throwaway table with n
        // entries; atoms are just indices so this is deterministic.
        let mut table = crate::AtomTable::new();
        let mut last = table.intern("0");
        for i in 0..=n {
            last = table.intern(&i.to_string());
        }
        Triple { subject: last, property: last, object: Value::Literal(last) }
    }

    fn atom_triple(a: Atom) -> Triple {
        Triple { subject: a, property: a, object: Value::Literal(a) }
    }

    #[test]
    fn revision_counts_changes() {
        let mut j = Journal::new();
        assert_eq!(j.revision(), Revision::start());
        j.record(Change::Insert(t(1)));
        j.record(Change::Remove(t(1)));
        assert_eq!(j.revision().count(), 2);
    }

    #[test]
    fn since_returns_suffix() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        let rev = j.revision();
        j.record(Change::Insert(t(2)));
        j.record(Change::Remove(t(2)));
        assert_eq!(j.since(rev).len(), 2);
        assert_eq!(j.since(Revision::start()).len(), 3);
        assert_eq!(j.since(j.revision()).len(), 0);
    }

    #[test]
    fn take_since_splits_history() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        let rev = j.revision();
        j.record(Change::Insert(t(2)));
        let taken = j.take_since(rev).unwrap();
        assert_eq!(taken.len(), 1);
        assert_eq!(j.len(), 1);
        assert_eq!(j.revision(), rev);
    }

    #[test]
    fn truncate_blocks_undo_past_it() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        let old = Revision::start();
        j.truncate();
        assert!(j.is_empty());
        assert_eq!(j.revision().count(), 1);
        assert!(matches!(j.take_since(old), Err(TrimError::UndoPastStart { .. })));
    }

    #[test]
    fn take_since_future_revision_is_empty() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        let future = Revision(99);
        assert!(j.take_since(future).unwrap().is_empty());
        assert_eq!(j.len(), 1, "future revision must not disturb history");
    }

    #[test]
    fn low_water_tracks_rewinds_across_the_boundary() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        j.record(Change::Insert(t(2)));
        j.reset_low_water();
        let boundary = j.revision();
        assert_eq!(j.low_water(), boundary);
        // Rewinding to (not below) the boundary leaves the mark alone.
        j.record(Change::Insert(t(3)));
        j.take_since(boundary).unwrap();
        assert_eq!(j.low_water(), boundary);
        // Rewinding below it is flagged until the next reset.
        j.take_since(Revision::start()).unwrap();
        assert!(j.low_water() < boundary);
        j.reset_low_water();
        assert_eq!(j.low_water(), j.revision());
    }

    #[test]
    fn truncate_raises_the_low_water_mark() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        j.truncate();
        assert_eq!(j.low_water(), j.revision());
        assert_eq!(j.earliest(), j.revision());
    }

    #[test]
    fn snapshot_low_water_is_an_independent_channel() {
        let mut j = Journal::new();
        j.record(Change::Insert(t(1)));
        j.record(Change::Insert(t(2)));
        j.reset_snapshot_low_water();
        let boundary = j.revision();
        // Resetting the durability channel leaves the snapshot one alone.
        j.record(Change::Insert(t(3)));
        j.reset_low_water();
        assert_eq!(j.snapshot_low_water(), boundary);
        // A rewind below the boundary trips only observers who care.
        j.take_since(Revision::start()).unwrap();
        assert!(j.snapshot_low_water() < boundary);
        j.record(Change::Insert(t(4)));
        j.reset_snapshot_low_water();
        assert_eq!(j.snapshot_low_water(), j.revision());
        assert!(j.low_water() < j.revision(), "snapshot reset must not mask durability");
    }

    #[test]
    fn change_triple_accessor() {
        let mut table = crate::AtomTable::new();
        let a = table.intern("x");
        let tr = atom_triple(a);
        assert_eq!(Change::Insert(tr).triple(), tr);
        assert_eq!(Change::Remove(tr).triple(), tr);
    }
}
