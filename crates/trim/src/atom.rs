//! String interning: every resource name, property name, and literal value
//! in a [`crate::TripleStore`] is interned once and referred to by a
//! 4-byte [`Atom`].
//!
//! Interning is what keeps the "lightweight" design principle honest: the
//! same property name (`bundleName`, `rdf:type`, …) appears in thousands
//! of triples but is stored exactly once, and triple comparisons are
//! integer comparisons.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Atoms are only meaningful relative to the
/// [`AtomTable`] that produced them; they are never recycled, so an atom
/// stays valid for the lifetime of its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

impl Atom {
    /// The smallest representable atom. Only used as an inclusive
    /// range-scan sentinel by the permutation indexes; may or may not be
    /// interned in any given table.
    pub(crate) const MIN: Atom = Atom(0);

    /// The largest representable atom. Also an inclusive sentinel, so
    /// scans stay correct even at intern-table capacity.
    pub(crate) const MAX: Atom = Atom(u32::MAX);

    /// The raw index, useful for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next atom in index order, or `None` at capacity. Used by the
    /// conjunctive engine's leapfrog cursors to seek strictly past a
    /// just-emitted value.
    pub(crate) fn succ(self) -> Option<Atom> {
        self.0.checked_add(1).map(Atom)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

/// An append-only intern table mapping strings to [`Atom`]s and back.
#[derive(Debug, Default)]
pub struct AtomTable {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Atom>,
}

impl AtomTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s` if there is capacity, returning `None` when the table
    /// already holds `u32::MAX` distinct strings. The persistence
    /// loaders use this so hostile or runaway input surfaces as a typed
    /// error instead of a panic.
    pub fn try_intern(&mut self, s: &str) -> Option<Atom> {
        if let Some(&a) = self.lookup.get(s) {
            return Some(a);
        }
        let a = Atom(u32::try_from(self.strings.len()).ok()?);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, a);
        Some(a)
    }

    /// Intern `s`, returning its atom. Idempotent: the same string always
    /// yields the same atom.
    ///
    /// # Panics
    ///
    /// Panics if the table already holds `u32::MAX` distinct strings —
    /// memory is exhausted long before this in practice. Code handling
    /// untrusted input should prefer [`AtomTable::try_intern`].
    pub fn intern(&mut self, s: &str) -> Atom {
        match self.try_intern(s) {
            Some(a) => a,
            None => panic!("atom table capacity exhausted (u32::MAX distinct strings)"),
        }
    }

    /// Look up an already-interned string without interning it.
    pub fn get(&self, s: &str) -> Option<Atom> {
        self.lookup.get(s).copied()
    }

    /// The string for an atom.
    ///
    /// # Panics
    ///
    /// Panics if `a` came from a different table (an internal logic error,
    /// not a data error).
    pub fn resolve(&self, a: Atom) -> &str {
        &self.strings[a.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of interned string data (excluding table overhead).
    /// Used by the E1 space-overhead experiment.
    pub fn string_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }

    /// Iterate over `(atom, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Atom(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = AtomTable::new();
        let a = t.intern("bundleName");
        let b = t.intern("bundleName");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_atoms() {
        let mut t = AtomTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "a");
        assert_eq!(t.resolve(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = AtomTable::new();
        assert_eq!(t.get("x"), None);
        let a = t.intern("x");
        assert_eq!(t.get("x"), Some(a));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_atom() {
        let mut t = AtomTable::new();
        let a = t.intern("");
        assert_eq!(t.resolve(a), "");
    }

    #[test]
    fn string_bytes_counts_content() {
        let mut t = AtomTable::new();
        t.intern("abc");
        t.intern("de");
        t.intern("abc"); // duplicate: not recounted
        assert_eq!(t.string_bytes(), 5);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut t = AtomTable::new();
        let a = t.intern("first");
        let b = t.intern("second");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(a, "first"), (b, "second")]);
    }
}
