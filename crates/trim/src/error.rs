//! Error type for TRIM operations.

use std::fmt;

/// Errors surfaced by TRIM persistence and store operations.
#[derive(Debug)]
pub enum TrimError {
    /// The persisted XML could not be parsed.
    Xml(xmlkit::ParseError),
    /// The XML parsed but is not a valid triple-store document.
    Format { message: String },
    /// The file declares a format version newer than this build supports.
    UnsupportedVersion { found: String, supported: u32 },
    /// The file failed its integrity check (checksum mismatch or
    /// truncation) and strict loading refused it. Salvage loading may
    /// still recover a prefix.
    Corrupt { detail: String },
    /// An I/O failure while reading or writing a store file.
    Io(std::io::Error),
    /// An undo was requested past the beginning of the journal.
    UndoPastStart { requested: usize, available: usize },
    /// The atom interner is full (more than `u32::MAX` distinct strings).
    CapacityExhausted,
}

impl fmt::Display for TrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrimError::Xml(e) => write!(f, "persisted store is not well-formed XML: {e}"),
            TrimError::Format { message } => {
                write!(f, "persisted store has invalid structure: {message}")
            }
            TrimError::UnsupportedVersion { found, supported } => write!(
                f,
                "persisted store declares format version {found}, \
                 but this build supports at most version {supported}"
            ),
            TrimError::Corrupt { detail } => {
                write!(f, "persisted store failed its integrity check: {detail}")
            }
            TrimError::Io(e) => write!(f, "store I/O error: {e}"),
            TrimError::UndoPastStart { requested, available } => write!(
                f,
                "cannot undo {requested} change(s); journal holds only {available}"
            ),
            TrimError::CapacityExhausted => {
                write!(f, "triple store capacity exhausted: too many distinct strings")
            }
        }
    }
}

impl std::error::Error for TrimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrimError::Xml(e) => Some(e),
            TrimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xmlkit::ParseError> for TrimError {
    fn from(e: xmlkit::ParseError) -> Self {
        TrimError::Xml(e)
    }
}

impl From<std::io::Error> for TrimError {
    fn from(e: std::io::Error) -> Self {
        TrimError::Io(e)
    }
}

impl From<slimio::IoError> for TrimError {
    fn from(e: slimio::IoError) -> Self {
        TrimError::Io(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let e = TrimError::Format { message: "missing root".into() };
        assert!(e.to_string().contains("missing root"));
        let e = TrimError::UndoPastStart { requested: 5, available: 2 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('2'));
    }
}
