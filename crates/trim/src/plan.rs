//! Query planning over the permutation indexes.
//!
//! A [`crate::TriplePattern`] fixes any subset of the three triple fields,
//! giving eight possible *shapes*. Each shape has exactly one cheapest
//! access path over the store's three permutation indexes (SPO, POS, OSP):
//! a fully-bound pattern is a membership probe, an unbound pattern is a
//! full scan, and every partially-bound pattern is a contiguous prefix
//! range scan on the one permutation whose sort order leads with the bound
//! fields. [`Plan::for_pattern`] encodes that selection table;
//! `TripleStore::explain` exposes it so tests (and slimcheck) can assert
//! *which* index answered a query, not just that the answer was right.
//!
//! | shape (bound fields) | plan                    |
//! |----------------------|-------------------------|
//! | — (none)             | full scan of SPO        |
//! | S                    | SPO prefix scan, len 1  |
//! | S P                  | SPO prefix scan, len 2  |
//! | P                    | POS prefix scan, len 1  |
//! | P O                  | POS prefix scan, len 2  |
//! | O                    | OSP prefix scan, len 1  |
//! | S O                  | OSP prefix scan, len 2  |
//! | S P O                | membership probe on SPO |
//!
//! Because every bound field is always part of the chosen index prefix, no
//! plan needs residual filtering: a range scan yields exactly the result
//! set.

use crate::store::TriplePattern;
use std::fmt;

/// Which of the three triple fields a pattern fixes. The name lists the
/// bound fields: `Sp` means subject and property bound, object free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternShape {
    /// No field bound: matches every triple.
    Unbound,
    /// Subject bound.
    S,
    /// Property bound.
    P,
    /// Object bound.
    O,
    /// Subject and property bound.
    Sp,
    /// Subject and object bound.
    So,
    /// Property and object bound.
    Po,
    /// All three fields bound: at most one triple matches.
    Spo,
}

impl PatternShape {
    /// All eight shapes, for exhaustive sweeps in tests and benchmarks.
    pub const ALL: [PatternShape; 8] = [
        PatternShape::Unbound,
        PatternShape::S,
        PatternShape::P,
        PatternShape::O,
        PatternShape::Sp,
        PatternShape::So,
        PatternShape::Po,
        PatternShape::Spo,
    ];

    /// Classify a pattern by which fields it binds.
    pub fn of(pattern: &TriplePattern) -> Self {
        match (
            pattern.subject.is_some(),
            pattern.property.is_some(),
            pattern.object.is_some(),
        ) {
            (false, false, false) => PatternShape::Unbound,
            (true, false, false) => PatternShape::S,
            (false, true, false) => PatternShape::P,
            (false, false, true) => PatternShape::O,
            (true, true, false) => PatternShape::Sp,
            (true, false, true) => PatternShape::So,
            (false, true, true) => PatternShape::Po,
            (true, true, true) => PatternShape::Spo,
        }
    }

    /// True if this shape fixes the subject field.
    pub fn binds_subject(self) -> bool {
        matches!(
            self,
            PatternShape::S | PatternShape::Sp | PatternShape::So | PatternShape::Spo
        )
    }

    /// True if this shape fixes the property field.
    pub fn binds_property(self) -> bool {
        matches!(
            self,
            PatternShape::P | PatternShape::Sp | PatternShape::Po | PatternShape::Spo
        )
    }

    /// True if this shape fixes the object field.
    pub fn binds_object(self) -> bool {
        matches!(
            self,
            PatternShape::O | PatternShape::So | PatternShape::Po | PatternShape::Spo
        )
    }

    /// A short stable name (`"sp"`, `"unbound"`, …) for reports and
    /// shrunk counterexamples.
    pub fn name(self) -> &'static str {
        match self {
            PatternShape::Unbound => "unbound",
            PatternShape::S => "s",
            PatternShape::P => "p",
            PatternShape::O => "o",
            PatternShape::Sp => "sp",
            PatternShape::So => "so",
            PatternShape::Po => "po",
            PatternShape::Spo => "spo",
        }
    }
}

/// One of the three permutation indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Sorted by (subject, property, object).
    Spo,
    /// Sorted by (property, object, subject).
    Pos,
    /// Sorted by (object, subject, property).
    Osp,
}

impl IndexKind {
    /// The permutation's name in index-order field initials.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Spo => "SPO",
            IndexKind::Pos => "POS",
            IndexKind::Osp => "OSP",
        }
    }
}

/// How a plan touches the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Exact membership test on the SPO index (all fields bound).
    Probe,
    /// Contiguous range scan of `index` whose first `prefix_len` sort
    /// fields are bound by the pattern (1 or 2).
    Scan { index: IndexKind, prefix_len: u8 },
    /// Walk the whole SPO index (no field bound).
    FullScan,
}

/// The chosen access path for one pattern. Returned by
/// `TripleStore::explain`; selection, counting, and bulk removal all
/// execute exactly this plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Plan {
    /// Which fields the pattern binds.
    pub shape: PatternShape,
    /// The access path that serves it.
    pub access: Access,
}

impl Plan {
    /// The plan for a pattern — a pure function of its shape; with one
    /// optimal index per shape there is nothing to estimate.
    pub fn for_pattern(pattern: &TriplePattern) -> Self {
        Self::for_shape(PatternShape::of(pattern))
    }

    /// The selection table itself (see module docs).
    pub fn for_shape(shape: PatternShape) -> Self {
        let access = match shape {
            PatternShape::Unbound => Access::FullScan,
            PatternShape::Spo => Access::Probe,
            PatternShape::S => Access::Scan { index: IndexKind::Spo, prefix_len: 1 },
            PatternShape::Sp => Access::Scan { index: IndexKind::Spo, prefix_len: 2 },
            PatternShape::P => Access::Scan { index: IndexKind::Pos, prefix_len: 1 },
            PatternShape::Po => Access::Scan { index: IndexKind::Pos, prefix_len: 2 },
            PatternShape::O => Access::Scan { index: IndexKind::Osp, prefix_len: 1 },
            PatternShape::So => Access::Scan { index: IndexKind::Osp, prefix_len: 2 },
        };
        Plan { shape, access }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.access {
            Access::Probe => write!(f, "probe SPO (shape {})", self.shape.name()),
            Access::FullScan => write!(f, "full scan (shape {})", self.shape.name()),
            Access::Scan { index, prefix_len } => write!(
                f,
                "{} prefix scan, {prefix_len} bound (shape {})",
                index.name(),
                self.shape.name()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;

    /// The full selection table, shape by shape.
    #[test]
    fn selection_table_is_exhaustive_and_correct() {
        use Access::*;
        use IndexKind::*;
        let expected = [
            (PatternShape::Unbound, FullScan),
            (PatternShape::S, Scan { index: Spo, prefix_len: 1 }),
            (PatternShape::P, Scan { index: Pos, prefix_len: 1 }),
            (PatternShape::O, Scan { index: Osp, prefix_len: 1 }),
            (PatternShape::Sp, Scan { index: Spo, prefix_len: 2 }),
            (PatternShape::So, Scan { index: Osp, prefix_len: 2 }),
            (PatternShape::Po, Scan { index: Pos, prefix_len: 2 }),
            (PatternShape::Spo, Probe),
        ];
        for (shape, access) in expected {
            let plan = Plan::for_shape(shape);
            assert_eq!(plan.shape, shape);
            assert_eq!(plan.access, access, "wrong access for shape {}", shape.name());
        }
        assert_eq!(PatternShape::ALL.len(), 8);
    }

    #[test]
    fn shape_of_pattern_reads_bound_fields() {
        let mut s = TripleStore::new();
        let a = s.atom("a");
        let v = s.literal_value("v");
        let base = TripleStore::pattern();
        assert_eq!(PatternShape::of(&base), PatternShape::Unbound);
        assert_eq!(PatternShape::of(&base.with_subject(a)), PatternShape::S);
        assert_eq!(PatternShape::of(&base.with_property(a)), PatternShape::P);
        assert_eq!(PatternShape::of(&base.with_object(v)), PatternShape::O);
        assert_eq!(
            PatternShape::of(&base.with_subject(a).with_property(a)),
            PatternShape::Sp
        );
        assert_eq!(
            PatternShape::of(&base.with_subject(a).with_object(v)),
            PatternShape::So
        );
        assert_eq!(
            PatternShape::of(&base.with_property(a).with_object(v)),
            PatternShape::Po
        );
        assert_eq!(
            PatternShape::of(&base.with_subject(a).with_property(a).with_object(v)),
            PatternShape::Spo
        );
    }

    #[test]
    fn plans_render_for_diagnostics() {
        let plan = Plan::for_shape(PatternShape::Po);
        assert_eq!(plan.to_string(), "POS prefix scan, 2 bound (shape po)");
        assert_eq!(Plan::for_shape(PatternShape::Spo).to_string(), "probe SPO (shape spo)");
        assert_eq!(
            Plan::for_shape(PatternShape::Unbound).to_string(),
            "full scan (shape unbound)"
        );
    }
}
