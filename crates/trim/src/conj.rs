//! Conjunctive queries: multi-pattern merge/leapfrog joins over the
//! permutation indexes.
//!
//! A [`ConjQuery`] is a conjunction of N triple patterns whose positions
//! are either constants or shared variables — "scraps in bundle B whose
//! mark targets document D" is two or three patterns joined on the scrap
//! and mark variables. The single-pattern planner ([`crate::plan`]) gives
//! every pattern one optimal index; this module composes those runs into a
//! join:
//!
//! * **Planning** ([`ConjQuery::plan`]): variables get a binding order
//!   chosen greedily by estimated run length — for each candidate
//!   variable, every pattern containing it proposes a *run* (the distinct
//!   values that position can take given what is already bound), and the
//!   variable whose cheapest run is shortest binds first. Runs whose
//!   bound positions form a sort prefix of SPO, POS, or OSP stream
//!   straight off that index; the three combinations no permutation
//!   serves (P→S, O→P, S→O) stream too, by *skip-scan* — alternating
//!   range probes over the index that leads with the proposed position
//!   (see [`RunAccess::SkipScan`]). The planner still prefers prefix
//!   runs: a skip-scan pays extra probes proportional to the gaps it
//!   hops over.
//! * **Execution** ([`ConjQuery::solve`]): variables bind in plan order.
//!   At each step the runs of every occurrence of the variable are
//!   intersected by *leapfrog*: cursors seek to the max of their current
//!   positions with `O(log n)` range probes until all agree, so the
//!   intersection streams in sorted order and no run — let alone a cross
//!   product — is ever materialized. A pattern that repeats a variable
//!   (`(?x, p, ?x)`) is re-checked as a ground probe once fully bound,
//!   because intersecting its per-occurrence runs only bounds the
//!   diagonal from above (see [`ExecQuirks::skip_repeated_var_dedup`]).
//! * **Explain** ([`TripleStore::explain_join`]): the chosen order, each
//!   step's runs with index choice and access kind, and per-pattern
//!   cardinality estimates render as a deterministic join tree, the
//!   conjunctive analogue of [`TripleStore::explain`].
//!
//! [`naive_join`] is the deliberately index-free baseline — per-pattern
//! linear scans nested-looped over the cross product — used as the
//! differential oracle by slimcheck's `conj` layer, the property tests,
//! and the `slim-bench` join gate.

use crate::atom::Atom;
use crate::plan::IndexKind;
use crate::store::{TriplePattern, TripleStore, Value, VALUE_MIN};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable, valid only for the [`ConjQuery`] that produced it
/// (an index into the query's variable table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub usize);

/// Subject/property position of a pattern: a constant atom or a variable.
/// Variables in these positions only ever bind resource values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomTerm {
    /// A fixed resource/property name.
    Const(Atom),
    /// A shared variable.
    Var(Var),
}

/// Object position of a pattern: a constant value or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueTerm {
    /// A fixed object value (resource or literal).
    Const(Value),
    /// A shared variable.
    Var(Var),
}

impl From<Atom> for AtomTerm {
    fn from(a: Atom) -> Self {
        AtomTerm::Const(a)
    }
}

impl From<Var> for AtomTerm {
    fn from(v: Var) -> Self {
        AtomTerm::Var(v)
    }
}

impl From<Value> for ValueTerm {
    fn from(v: Value) -> Self {
        ValueTerm::Const(v)
    }
}

impl From<Atom> for ValueTerm {
    fn from(a: Atom) -> Self {
        ValueTerm::Const(Value::Resource(a))
    }
}

impl From<Var> for ValueTerm {
    fn from(v: Var) -> Self {
        ValueTerm::Var(v)
    }
}

/// One triple pattern of a conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConjPattern {
    pub subject: AtomTerm,
    pub property: AtomTerm,
    pub object: ValueTerm,
}

/// The three positions of a pattern, used in plans and explain output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    Subject,
    Property,
    Object,
}

impl Position {
    fn name(self) -> &'static str {
        match self {
            Position::Subject => "subject",
            Position::Property => "property",
            Position::Object => "object",
        }
    }
}

/// Why a query cannot be planned or executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConjError {
    /// The query has no patterns.
    Empty,
    /// A declared variable appears in no pattern, so it has no run to
    /// propose values from.
    UnusedVar(String),
    /// A pattern references a variable the query never declared.
    UnknownVar(usize),
    /// A forced binding order is not a permutation of the query's
    /// variables.
    BadOrder(String),
}

impl fmt::Display for ConjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConjError::Empty => write!(f, "conjunctive query has no patterns"),
            ConjError::UnusedVar(name) => {
                write!(f, "variable ?{name} appears in no pattern")
            }
            ConjError::UnknownVar(i) => write!(f, "pattern references undeclared variable #{i}"),
            ConjError::BadOrder(why) => write!(f, "bad binding order: {why}"),
        }
    }
}

impl std::error::Error for ConjError {}

/// A conjunction of triple patterns over shared variables.
#[derive(Debug, Clone, Default)]
pub struct ConjQuery {
    var_names: Vec<String>,
    patterns: Vec<ConjPattern>,
}

impl ConjQuery {
    /// An empty query; add variables with [`ConjQuery::var`] and patterns
    /// with [`ConjQuery::pattern`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare (or look up) a variable by name. The same name always
    /// yields the same [`Var`].
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            return Var(i);
        }
        self.var_names.push(name.to_string());
        Var(self.var_names.len() - 1)
    }

    /// Append a pattern. Terms convert from `Atom`, `Value`, and `Var`,
    /// so `q.pattern(bundle, content_p, scrap_var)` reads naturally.
    pub fn pattern(
        &mut self,
        subject: impl Into<AtomTerm>,
        property: impl Into<AtomTerm>,
        object: impl Into<ValueTerm>,
    ) -> &mut Self {
        self.patterns.push(ConjPattern {
            subject: subject.into(),
            property: property.into(),
            object: object.into(),
        });
        self
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The name a variable was declared with.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0]
    }

    /// All declared variables, in declaration order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.var_names.len()).map(Var)
    }

    /// The patterns in insertion order.
    pub fn patterns(&self) -> &[ConjPattern] {
        &self.patterns
    }

    fn validate(&self) -> Result<(), ConjError> {
        if self.patterns.is_empty() {
            return Err(ConjError::Empty);
        }
        let mut used = vec![false; self.var_names.len()];
        for p in &self.patterns {
            for (var, _) in pattern_vars(p) {
                match used.get_mut(var.0) {
                    Some(slot) => *slot = true,
                    None => return Err(ConjError::UnknownVar(var.0)),
                }
            }
        }
        if let Some(i) = used.iter().position(|u| !u) {
            return Err(ConjError::UnusedVar(self.var_names[i].clone()));
        }
        Ok(())
    }

    /// Render pattern `i` with names resolved against `store`.
    pub fn render_pattern(&self, i: usize, store: &TripleStore) -> String {
        let p = &self.patterns[i];
        let atom_term = |t: &AtomTerm| match t {
            AtomTerm::Const(a) => store.resolve(*a).to_string(),
            AtomTerm::Var(v) => format!("?{}", self.var_name(*v)),
        };
        let value_term = |t: &ValueTerm| match t {
            ValueTerm::Const(Value::Resource(a)) => store.resolve(*a).to_string(),
            ValueTerm::Const(Value::Literal(a)) => format!("{:?}", store.resolve(*a)),
            ValueTerm::Var(v) => format!("?{}", self.var_name(*v)),
        };
        format!(
            "({} {} {})",
            atom_term(&p.subject),
            atom_term(&p.property),
            value_term(&p.object)
        )
    }

    /// Choose a binding order by run-length estimates and build the full
    /// join plan (see module docs for the heuristic).
    pub fn plan(&self, store: &TripleStore) -> Result<ConjPlan, ConjError> {
        self.validate()?;
        let estimates = self.pattern_estimates(store);
        let nvars = self.var_names.len();
        let mut bound = vec![false; nvars];
        let mut order = Vec::with_capacity(nvars);
        while order.len() < nvars {
            let mut best: Option<(bool, usize, usize)> = None; // (no_prefix, est, var)
            for v in 0..nvars {
                if bound[v] {
                    continue;
                }
                let runs = self.runs_for(Var(v), &bound, &estimates);
                let has_prefix =
                    runs.iter().any(|r| matches!(r.access, RunAccess::Prefix { .. }));
                let min_est = runs.iter().map(|r| r.estimate).min().unwrap_or(usize::MAX);
                let key = (!has_prefix, min_est, v);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let (_, _, v) = best.expect("unbound variable remains");
            order.push(Var(v));
            bound[v] = true;
        }
        self.plan_for_order(store, &order, estimates)
    }

    /// Build the join plan for a caller-forced binding order. Property
    /// tests use this to drive the engine through every permutation.
    pub fn plan_ordered(&self, store: &TripleStore, order: &[Var]) -> Result<ConjPlan, ConjError> {
        self.validate()?;
        let nvars = self.var_names.len();
        if order.len() != nvars {
            return Err(ConjError::BadOrder(format!(
                "order lists {} variables, query declares {nvars}",
                order.len()
            )));
        }
        let mut seen = vec![false; nvars];
        for v in order {
            match seen.get_mut(v.0) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => {
                    return Err(ConjError::BadOrder(format!(
                        "variable ?{} listed twice",
                        self.var_name(*v)
                    )))
                }
                None => return Err(ConjError::UnknownVar(v.0)),
            }
        }
        let estimates = self.pattern_estimates(store);
        self.plan_for_order(store, order, estimates)
    }

    fn pattern_estimates(&self, store: &TripleStore) -> Vec<usize> {
        self.patterns.iter().map(|p| store.count(&const_pattern(p))).collect()
    }

    fn plan_for_order(
        &self,
        _store: &TripleStore,
        order: &[Var],
        estimates: Vec<usize>,
    ) -> Result<ConjPlan, ConjError> {
        let nvars = self.var_names.len();
        let mut bound = vec![false; nvars];
        let mut steps = Vec::with_capacity(order.len());
        for &v in order {
            steps.push(BindStep { var: v, runs: self.runs_for(v, &bound, &estimates) });
            bound[v.0] = true;
        }
        Ok(ConjPlan {
            order: order.to_vec(),
            steps,
            pattern_estimates: estimates,
            ground_checks: self.ground_check_depths(order),
        })
    }

    /// The runs every occurrence of `var` proposes given the set of
    /// already-bound variables. Bound positions of the occurrence's own
    /// pattern (constants plus bound variables) determine the index: a
    /// sort-prefix match streams, otherwise the run is skip-scanned.
    fn runs_for(&self, var: Var, bound: &[bool], estimates: &[usize]) -> Vec<RunChoice> {
        let mut runs = Vec::new();
        for (pi, p) in self.patterns.iter().enumerate() {
            for (occ_var, position) in pattern_vars(p) {
                if occ_var != var {
                    continue;
                }
                let s_bound = term_bound_atom(&p.subject, bound);
                let p_bound = term_bound_atom(&p.property, bound);
                let o_bound = term_bound_value(&p.object, bound);
                let access = match position {
                    Position::Subject => match (p_bound, o_bound) {
                        (true, true) => RunAccess::Prefix { index: IndexKind::Pos, prefix_len: 2 },
                        (false, true) => RunAccess::Prefix { index: IndexKind::Osp, prefix_len: 1 },
                        (true, false) => RunAccess::SkipScan { index: IndexKind::Spo },
                        (false, false) => {
                            RunAccess::Prefix { index: IndexKind::Spo, prefix_len: 0 }
                        }
                    },
                    Position::Property => match (s_bound, o_bound) {
                        (true, true) => RunAccess::Prefix { index: IndexKind::Osp, prefix_len: 2 },
                        (true, false) => RunAccess::Prefix { index: IndexKind::Spo, prefix_len: 1 },
                        (false, true) => RunAccess::SkipScan { index: IndexKind::Pos },
                        (false, false) => {
                            RunAccess::Prefix { index: IndexKind::Pos, prefix_len: 0 }
                        }
                    },
                    Position::Object => match (s_bound, p_bound) {
                        (true, true) => RunAccess::Prefix { index: IndexKind::Spo, prefix_len: 2 },
                        (false, true) => RunAccess::Prefix { index: IndexKind::Pos, prefix_len: 1 },
                        (true, false) => RunAccess::SkipScan { index: IndexKind::Osp },
                        (false, false) => {
                            RunAccess::Prefix { index: IndexKind::Osp, prefix_len: 0 }
                        }
                    },
                };
                runs.push(RunChoice { pattern: pi, position, access, estimate: estimates[pi] });
            }
        }
        runs
    }

    /// For each pattern with a repeated variable, the order-depth at
    /// which it becomes fully ground and must be re-checked.
    fn ground_check_depths(&self, order: &[Var]) -> Vec<(usize, usize)> {
        let mut depth_of = vec![0usize; self.var_names.len()];
        for (d, v) in order.iter().enumerate() {
            depth_of[v.0] = d;
        }
        let mut checks = Vec::new();
        for (pi, p) in self.patterns.iter().enumerate() {
            let vars: Vec<Var> = pattern_vars(p).map(|(v, _)| v).collect();
            let distinct: BTreeSet<Var> = vars.iter().copied().collect();
            if distinct.len() < vars.len() {
                let depth = distinct.iter().map(|v| depth_of[v.0]).max().unwrap_or(0);
                checks.push((depth, pi));
            }
        }
        checks
    }

    /// Execute with the planner-chosen binding order. Bindings come back
    /// sorted by variable index, deduplicated.
    pub fn solve(&self, store: &TripleStore) -> Result<Vec<Vec<Value>>, ConjError> {
        let plan = self.plan(store)?;
        Ok(self.execute(store, &plan, ExecQuirks::default()))
    }

    /// Execute with a caller-forced binding order; same result set as
    /// [`ConjQuery::solve`] for every permutation (the property tests
    /// assert exactly this).
    pub fn solve_ordered(
        &self,
        store: &TripleStore,
        order: &[Var],
    ) -> Result<Vec<Vec<Value>>, ConjError> {
        let plan = self.plan_ordered(store, order)?;
        Ok(self.execute(store, &plan, ExecQuirks::default()))
    }

    /// Execute with deliberate bugs switched on — the mutation-testing
    /// entry point for slimcheck `--mutate`; never call from production
    /// code.
    #[doc(hidden)]
    pub fn testonly_solve_with_quirks(
        &self,
        store: &TripleStore,
        quirks: ExecQuirks,
    ) -> Result<Vec<Vec<Value>>, ConjError> {
        let plan = self.plan(store)?;
        Ok(self.execute(store, &plan, quirks))
    }

    fn execute(&self, store: &TripleStore, plan: &ConjPlan, quirks: ExecQuirks) -> Vec<Vec<Value>> {
        // Patterns with no variables are plain membership probes; one miss
        // empties the whole conjunction.
        for p in &self.patterns {
            if pattern_vars(p).next().is_none() {
                match ground_triple(p, &[]) {
                    Some(t) if store.contains(&t) => {}
                    _ => return Vec::new(),
                }
            }
        }
        let mut bindings: Vec<Option<Value>> = vec![None; self.var_names.len()];
        let mut out = Vec::new();
        self.bind_next(store, plan, 0, &mut bindings, quirks, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn bind_next(
        &self,
        store: &TripleStore,
        plan: &ConjPlan,
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        quirks: ExecQuirks,
        out: &mut Vec<Vec<Value>>,
    ) {
        if depth == plan.order.len() {
            out.push(bindings.iter().map(|b| b.expect("all variables bound")).collect());
            return;
        }
        let step = &plan.steps[depth];
        let cursors: Vec<Cursor> = step
            .runs
            .iter()
            .map(|rc| self.cursor_for(store, rc, bindings, quirks))
            .collect();
        let mut candidates = Vec::new();
        leapfrog(&cursors, &mut candidates);
        for v in candidates {
            bindings[step.var.0] = Some(v);
            // Patterns repeating a variable become fully ground here but
            // were only constrained per-occurrence; dedup against the
            // store so the diagonal (?x p ?x) holds exactly.
            if !quirks.skip_repeated_var_dedup {
                let ok = plan.ground_checks.iter().filter(|&&(d, _)| d == depth).all(
                    |&(_, pi)| {
                        ground_triple(&self.patterns[pi], bindings)
                            .is_some_and(|t| store.contains(&t))
                    },
                );
                if !ok {
                    continue;
                }
            }
            self.bind_next(store, plan, depth + 1, bindings, quirks, out);
        }
        bindings[step.var.0] = None;
    }

    fn cursor_for<'a>(
        &self,
        store: &'a TripleStore,
        rc: &RunChoice,
        bindings: &[Option<Value>],
        quirks: ExecQuirks,
    ) -> Cursor<'a> {
        let p = &self.patterns[rc.pattern];
        // Resolve the occurrence's bound sibling positions. A bound
        // literal in an atom position can never match, so the run is
        // empty.
        let atom_of = |t: &AtomTerm| -> Option<Atom> {
            match t {
                AtomTerm::Const(a) => Some(*a),
                AtomTerm::Var(v) => match bindings[v.0] {
                    Some(Value::Resource(a)) => Some(a),
                    _ => None,
                },
            }
        };
        let value_of = |t: &ValueTerm| -> Option<Value> {
            match t {
                ValueTerm::Const(v) => Some(*v),
                ValueTerm::Var(v) => bindings[v.0],
            }
        };
        let missing = Cursor::Empty;
        match (rc.position, rc.access) {
            (Position::Subject, RunAccess::Prefix { index: IndexKind::Spo, .. }) => {
                Cursor::SpoSubjects(store)
            }
            (Position::Subject, RunAccess::Prefix { index: IndexKind::Osp, .. }) => {
                match value_of(&p.object) {
                    Some(o) => Cursor::OspSubjects(store, o),
                    None => missing,
                }
            }
            (Position::Subject, RunAccess::Prefix { index: IndexKind::Pos, .. }) => {
                match (atom_of(&p.property), value_of(&p.object)) {
                    (Some(prop), Some(o)) => Cursor::PosSubjects(store, prop, o),
                    _ => missing,
                }
            }
            (Position::Subject, RunAccess::SkipScan { .. }) => match atom_of(&p.property) {
                Some(prop) => Cursor::SpoSubjectsSkip(store, prop),
                None => missing,
            },
            (Position::Property, RunAccess::Prefix { index: IndexKind::Pos, .. }) => {
                Cursor::PosProps(store)
            }
            (Position::Property, RunAccess::Prefix { index: IndexKind::Spo, .. }) => {
                match atom_of(&p.subject) {
                    Some(s) => Cursor::SpoProps(store, s),
                    None => missing,
                }
            }
            (Position::Property, RunAccess::Prefix { index: IndexKind::Osp, .. }) => {
                match (value_of(&p.object), atom_of(&p.subject)) {
                    (Some(o), Some(s)) => Cursor::OspProps(store, o, s),
                    _ => missing,
                }
            }
            (Position::Property, RunAccess::SkipScan { .. }) => match value_of(&p.object) {
                Some(o) => Cursor::PosPropsSkip(store, o),
                None => missing,
            },
            (Position::Object, RunAccess::Prefix { index: IndexKind::Osp, .. }) => {
                Cursor::OspObjects(store)
            }
            (Position::Object, RunAccess::Prefix { index: IndexKind::Pos, .. }) => {
                match atom_of(&p.property) {
                    Some(prop) if quirks.wrong_pos_run => {
                        // Seeded bug: read the run off the SPO index with
                        // the property atom misread as a subject.
                        Cursor::Collected(store.collect_objects_of_s(prop))
                    }
                    Some(prop) => Cursor::PosObjects(store, prop),
                    None => missing,
                }
            }
            (Position::Object, RunAccess::Prefix { index: IndexKind::Spo, .. }) => {
                match (atom_of(&p.subject), atom_of(&p.property)) {
                    (Some(s), Some(prop)) => Cursor::SpoObjects(store, s, prop),
                    _ => missing,
                }
            }
            (Position::Object, RunAccess::SkipScan { .. }) => match atom_of(&p.subject) {
                Some(s) => Cursor::OspObjectsSkip(store, s),
                None => missing,
            },
        }
    }
}

/// Deliberate-bug switches for mutation testing (slimcheck `--mutate`).
/// Production paths always run with the all-false default.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecQuirks {
    /// Skip the ground re-check that dedups per-occurrence runs of a
    /// repeated variable, so `(?x, p, ?x)` degenerates into "x is *some*
    /// subject and *some* object under p" instead of the diagonal.
    pub skip_repeated_var_dedup: bool,
    /// Serve the property-bound object run from the wrong index (SPO with
    /// the property atom misread as a subject) instead of the POS prefix
    /// run, losing every binding the real run would have proposed.
    pub wrong_pos_run: bool,
}

/// How one run is read off the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunAccess {
    /// The bound positions are a sort prefix of `index`; the distinct
    /// values stream via leapfrog seeks, `prefix_len` fields bound.
    Prefix { index: IndexKind, prefix_len: u8 },
    /// No permutation leads with (bound, proposed); the run streams via a
    /// skip-scan over `index` (the one leading with the proposed
    /// position): alternating range probes that seek the probe value's
    /// block and jump to the next value the index proposes when it is
    /// absent. Still O(log n) per seek — nothing is materialized.
    SkipScan { index: IndexKind },
}

/// One run feeding a binding step: which pattern, which position of it,
/// how it is accessed, and the pattern's estimated cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunChoice {
    pub pattern: usize,
    pub position: Position,
    pub access: RunAccess,
    /// Run-length estimate: how many triples the pattern's constants
    /// alone match, counted off its single-pattern plan.
    pub estimate: usize,
}

/// One variable's binding step: the runs intersected to propose values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindStep {
    pub var: Var,
    pub runs: Vec<RunChoice>,
}

/// A planned join: binding order plus per-step run choices. Render with
/// [`ConjPlan::render`] or [`TripleStore::explain_join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjPlan {
    pub order: Vec<Var>,
    pub steps: Vec<BindStep>,
    /// Per-pattern run-length estimates (constants-only counts).
    pub pattern_estimates: Vec<usize>,
    /// (order depth, pattern) pairs needing a ground re-check for a
    /// repeated variable.
    ground_checks: Vec<(usize, usize)>,
}

impl ConjPlan {
    /// Render the join tree with names resolved against `store` — pure
    /// function of (query, store contents), so deterministic.
    pub fn render(&self, query: &ConjQuery, store: &TripleStore) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let order = self
            .order
            .iter()
            .map(|v| format!("?{}", query.var_name(*v)))
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(
            out,
            "join tree: {} patterns, bind order {order}",
            query.patterns().len()
        );
        for step in &self.steps {
            let _ = writeln!(out, "  bind ?{}", query.var_name(step.var));
            for rc in &step.runs {
                let access = match rc.access {
                    RunAccess::Prefix { index, prefix_len } => {
                        format!("{} run, {prefix_len} bound", index.name())
                    }
                    RunAccess::SkipScan { index } => {
                        format!("{} skip-scan", index.name())
                    }
                };
                let _ = writeln!(
                    out,
                    "    p{} {} {}: {access}, est {}",
                    rc.pattern,
                    query.render_pattern(rc.pattern, store),
                    rc.position.name(),
                    rc.estimate
                );
            }
        }
        out
    }
}

impl TripleStore {
    /// The join tree [`ConjQuery::solve`] will execute — the conjunctive
    /// analogue of [`TripleStore::explain`]. Deterministic for a fixed
    /// store, so tests can golden-match it.
    pub fn explain_join(&self, query: &ConjQuery) -> Result<String, ConjError> {
        Ok(query.plan(self)?.render(query, self))
    }

    /// Solve a conjunctive query against this store; convenience for
    /// [`ConjQuery::solve`].
    pub fn join(&self, query: &ConjQuery) -> Result<Vec<Vec<Value>>, ConjError> {
        query.solve(self)
    }
}

// ---- leapfrog machinery ----------------------------------------------------

/// A cursor over one sorted distinct-value run. `next_geq` answers "the
/// first run value >= lo" with a single index range probe (or a binary
/// search for collected runs), which is all leapfrog needs.
enum Cursor<'a> {
    SpoSubjects(&'a TripleStore),
    SpoProps(&'a TripleStore, Atom),
    SpoObjects(&'a TripleStore, Atom, Atom),
    PosProps(&'a TripleStore),
    PosObjects(&'a TripleStore, Atom),
    PosSubjects(&'a TripleStore, Atom, Value),
    OspObjects(&'a TripleStore),
    OspSubjects(&'a TripleStore, Value),
    OspProps(&'a TripleStore, Value, Atom),
    /// P→S skip-scan: subjects carrying property `p`, streamed off SPO.
    SpoSubjectsSkip(&'a TripleStore, Atom),
    /// O→P skip-scan: properties reaching object `o`, streamed off POS.
    PosPropsSkip(&'a TripleStore, Value),
    /// S→O skip-scan: objects of subject `s`, streamed off OSP.
    OspObjectsSkip(&'a TripleStore, Atom),
    /// A materialized run — only the seeded `wrong_pos_run` mutation
    /// builds one (from the wrong index, which is the bug).
    Collected(Vec<Value>),
    /// A sibling position resolved to an impossible value (e.g. a literal
    /// in an atom slot): the run is empty.
    Empty,
}

impl Cursor<'_> {
    fn next_geq(&self, lo: Value) -> Option<Value> {
        // Runs over atom positions only ever hold resources; a literal
        // lower bound is already past them (resources sort first).
        let atom_lo = |lo: Value| -> Option<Atom> {
            match lo {
                Value::Resource(a) => Some(a),
                Value::Literal(_) => None,
            }
        };
        match self {
            Cursor::SpoSubjects(s) => {
                s.run_subject_geq(atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::SpoProps(s, subj) => {
                s.run_property_of_s_geq(*subj, atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::SpoObjects(s, subj, prop) => s.run_object_of_sp_geq(*subj, *prop, lo),
            Cursor::PosProps(s) => s.run_property_geq(atom_lo(lo)?).map(Value::Resource),
            Cursor::PosObjects(s, prop) => s.run_object_of_p_geq(*prop, lo),
            Cursor::PosSubjects(s, prop, o) => {
                s.run_subject_of_po_geq(*prop, *o, atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::OspObjects(s) => s.run_object_geq(lo),
            Cursor::OspSubjects(s, o) => {
                s.run_subject_of_o_geq(*o, atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::OspProps(s, o, subj) => {
                s.run_property_of_os_geq(*o, *subj, atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::SpoSubjectsSkip(s, prop) => {
                s.run_subject_with_p_geq(*prop, atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::PosPropsSkip(s, o) => {
                s.run_property_with_o_geq(*o, atom_lo(lo)?).map(Value::Resource)
            }
            Cursor::OspObjectsSkip(s, subj) => s.run_object_with_s_geq(*subj, lo),
            Cursor::Collected(values) => {
                let i = values.partition_point(|v| *v < lo);
                values.get(i).copied()
            }
            Cursor::Empty => None,
        }
    }
}

/// Intersect the cursors' runs, appending each common value to `out` in
/// ascending order. Classic leapfrog: keep seeking every cursor to the
/// current maximum until all agree, emit, then seek past the match.
fn leapfrog(cursors: &[Cursor], out: &mut Vec<Value>) {
    let n = cursors.len();
    if n == 0 {
        return;
    }
    let mut lo = VALUE_MIN;
    loop {
        let mut v = match cursors[0].next_geq(lo) {
            Some(v) => v,
            None => return,
        };
        let mut agreed = 1;
        let mut i = 1;
        while agreed < n {
            match cursors[i % n].next_geq(v) {
                None => return,
                Some(w) if w == v => agreed += 1,
                Some(w) => {
                    v = w;
                    agreed = 1;
                }
            }
            i += 1;
        }
        out.push(v);
        lo = match value_succ(v) {
            Some(s) => s,
            None => return,
        };
    }
}

/// The strictly next value in the index sort order, or `None` at the top.
pub(crate) fn value_succ(v: Value) -> Option<Value> {
    match v {
        Value::Resource(a) => match a.succ() {
            Some(n) => Some(Value::Resource(n)),
            None => Some(Value::Literal(Atom::MIN)),
        },
        Value::Literal(a) => a.succ().map(Value::Literal),
    }
}

/// The variables a pattern mentions, with their positions, in S/P/O order
/// (a repeated variable yields one entry per occurrence).
fn pattern_vars(p: &ConjPattern) -> impl Iterator<Item = (Var, Position)> {
    let s = match p.subject {
        AtomTerm::Var(v) => Some((v, Position::Subject)),
        AtomTerm::Const(_) => None,
    };
    let pr = match p.property {
        AtomTerm::Var(v) => Some((v, Position::Property)),
        AtomTerm::Const(_) => None,
    };
    let o = match p.object {
        ValueTerm::Var(v) => Some((v, Position::Object)),
        ValueTerm::Const(_) => None,
    };
    s.into_iter().chain(pr).chain(o)
}

fn term_bound_atom(t: &AtomTerm, bound: &[bool]) -> bool {
    match t {
        AtomTerm::Const(_) => true,
        AtomTerm::Var(v) => bound[v.0],
    }
}

fn term_bound_value(t: &ValueTerm, bound: &[bool]) -> bool {
    match t {
        ValueTerm::Const(_) => true,
        ValueTerm::Var(v) => bound[v.0],
    }
}

/// The pattern's constants as a single-pattern selection, for estimates.
fn const_pattern(p: &ConjPattern) -> TriplePattern {
    let mut tp = TriplePattern::default();
    if let AtomTerm::Const(a) = p.subject {
        tp = tp.with_subject(a);
    }
    if let AtomTerm::Const(a) = p.property {
        tp = tp.with_property(a);
    }
    if let ValueTerm::Const(v) = p.object {
        tp = tp.with_object(v);
    }
    tp
}

/// Instantiate a fully-bound pattern under `bindings`. `None` when a
/// binding puts a literal in an atom position (no such triple can exist)
/// or a variable is still unbound.
fn ground_triple(p: &ConjPattern, bindings: &[Option<Value>]) -> Option<crate::store::Triple> {
    let atom = |t: &AtomTerm| -> Option<Atom> {
        match t {
            AtomTerm::Const(a) => Some(*a),
            AtomTerm::Var(v) => match bindings.get(v.0).copied().flatten() {
                Some(Value::Resource(a)) => Some(a),
                _ => None,
            },
        }
    };
    let value = |t: &ValueTerm| -> Option<Value> {
        match t {
            ValueTerm::Const(v) => Some(*v),
            ValueTerm::Var(v) => bindings.get(v.0).copied().flatten(),
        }
    };
    Some(crate::store::Triple {
        subject: atom(&p.subject)?,
        property: atom(&p.property)?,
        object: value(&p.object)?,
    })
}

// ---- naive baseline --------------------------------------------------------

/// The naive cross-product evaluator: each pattern's candidates come from
/// a full linear scan filtered on its *constants only*, then candidates
/// are nested-looped with variable-consistency checks — exactly the
/// materialized join the engine exists to avoid. Differential oracle for
/// slimcheck's `conj` layer and baseline for the `slim-bench` join gate.
pub fn naive_join(store: &TripleStore, query: &ConjQuery) -> Result<Vec<Vec<Value>>, ConjError> {
    query.validate()?;
    let all: Vec<crate::store::Triple> = store.iter().collect();
    let candidates: Vec<Vec<crate::store::Triple>> = query
        .patterns()
        .iter()
        .map(|p| {
            let cp = const_pattern(p);
            all.iter().filter(|t| cp.matches(t)).copied().collect()
        })
        .collect();
    let mut bindings: Vec<Option<Value>> = vec![None; query.var_count()];
    let mut out = BTreeSet::new();
    naive_rec(query, &candidates, 0, &mut bindings, &mut out);
    Ok(out.into_iter().collect())
}

fn naive_rec(
    query: &ConjQuery,
    candidates: &[Vec<crate::store::Triple>],
    depth: usize,
    bindings: &mut Vec<Option<Value>>,
    out: &mut BTreeSet<Vec<Value>>,
) {
    if depth == query.patterns().len() {
        if bindings.iter().all(|b| b.is_some()) {
            out.insert(bindings.iter().map(|b| b.expect("checked")).collect());
        }
        return;
    }
    let p = &query.patterns()[depth];
    for t in &candidates[depth] {
        let mut newly = Vec::new();
        if unify(p, t, bindings, &mut newly) {
            naive_rec(query, candidates, depth + 1, bindings, out);
        }
        for v in newly {
            bindings[v] = None;
        }
    }
}

/// Try to extend `bindings` so `p` matches `t`; records newly-bound var
/// indexes in `newly` for rollback. Returns false (possibly after partial
/// binding, rolled back by the caller) on any inconsistency.
fn unify(
    p: &ConjPattern,
    t: &crate::store::Triple,
    bindings: &mut [Option<Value>],
    newly: &mut Vec<usize>,
) -> bool {
    let mut bind = |var: Var, val: Value| -> bool {
        match bindings[var.0] {
            Some(existing) => existing == val,
            None => {
                bindings[var.0] = Some(val);
                newly.push(var.0);
                true
            }
        }
    };
    let s_ok = match p.subject {
        AtomTerm::Const(a) => a == t.subject,
        AtomTerm::Var(v) => bind(v, Value::Resource(t.subject)),
    };
    if !s_ok {
        return false;
    }
    let p_ok = match p.property {
        AtomTerm::Const(a) => a == t.property,
        AtomTerm::Var(v) => bind(v, Value::Resource(t.property)),
    };
    if !p_ok {
        return false;
    }
    match p.object {
        ValueTerm::Const(v) => v == t.object,
        ValueTerm::Var(v) => bind(v, t.object),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(triples: &[(&str, &str, &str, bool)]) -> TripleStore {
        let mut s = TripleStore::new();
        for &(subject, property, object, is_res) in triples {
            if is_res {
                s.insert_resource(subject, property, object);
            } else {
                s.insert_literal(subject, property, object);
            }
        }
        s
    }

    fn names(store: &TripleStore, rows: &[Vec<Value>]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|row| row.iter().map(|v| store.value_text(*v).to_string()).collect())
            .collect()
    }

    #[test]
    fn two_pattern_membership_join() {
        let store = store_with(&[
            ("b1", "content", "s1", true),
            ("b1", "content", "s2", true),
            ("b2", "content", "s3", true),
            ("s1", "name", "alpha", false),
            ("s2", "name", "beta", false),
            ("s3", "name", "gamma", false),
        ]);
        let b1 = store.find_atom("b1").unwrap();
        let content = store.find_atom("content").unwrap();
        let name = store.find_atom("name").unwrap();
        let mut q = ConjQuery::new();
        let s = q.var("s");
        let n = q.var("n");
        q.pattern(b1, content, s).pattern(s, name, n);
        let rows = q.solve(&store).unwrap();
        assert_eq!(
            names(&store, &rows),
            vec![vec!["s1".to_string(), "alpha".to_string()], vec![
                "s2".to_string(),
                "beta".to_string()
            ]]
        );
        assert_eq!(rows, naive_join(&store, &q).unwrap());
    }

    #[test]
    fn chain_join_follows_links() {
        let store = store_with(&[
            ("a", "next", "b", true),
            ("b", "next", "c", true),
            ("c", "next", "d", true),
        ]);
        let next = store.find_atom("next").unwrap();
        let mut q = ConjQuery::new();
        let (x, y, z) = (q.var("x"), q.var("y"), q.var("z"));
        q.pattern(x, next, y).pattern(y, next, z);
        let rows = q.solve(&store).unwrap();
        assert_eq!(
            names(&store, &rows),
            vec![
                vec!["a".to_string(), "b".to_string(), "c".to_string()],
                vec!["b".to_string(), "c".to_string(), "d".to_string()],
            ]
        );
        assert_eq!(rows, naive_join(&store, &q).unwrap());
    }

    #[test]
    fn repeated_variable_takes_the_diagonal_only() {
        let store = store_with(&[
            ("a", "p", "b", true),
            ("b", "p", "c", true),
            ("d", "p", "d", true),
        ]);
        let p = store.find_atom("p").unwrap();
        let mut q = ConjQuery::new();
        let x = q.var("x");
        q.pattern(x, p, x);
        let rows = q.solve(&store).unwrap();
        assert_eq!(names(&store, &rows), vec![vec!["d".to_string()]]);
        assert_eq!(rows, naive_join(&store, &q).unwrap());
        // The seeded mutant that skips the ground re-check sees the
        // cross-occurrence superset {b, d}.
        let quirky = q
            .testonly_solve_with_quirks(
                &store,
                ExecQuirks { skip_repeated_var_dedup: true, ..Default::default() },
            )
            .unwrap();
        assert_eq!(names(&store, &quirky), vec![vec!["b".to_string()], vec!["d".to_string()]]);
    }

    #[test]
    fn wrong_pos_run_quirk_loses_bindings() {
        let store = store_with(&[("a", "p1", "b", true), ("b", "p2", "c", true)]);
        let p1 = store.find_atom("p1").unwrap();
        let p2 = store.find_atom("p2").unwrap();
        let mut q = ConjQuery::new();
        let (x, y, z) = (q.var("x"), q.var("y"), q.var("z"));
        q.pattern(x, p1, y).pattern(y, p2, z);
        assert_eq!(q.solve(&store).unwrap().len(), 1);
        let quirky = q
            .testonly_solve_with_quirks(
                &store,
                ExecQuirks { wrong_pos_run: true, ..Default::default() },
            )
            .unwrap();
        assert!(quirky.is_empty());
    }

    #[test]
    fn every_forced_order_matches_the_planner() {
        let store = store_with(&[
            ("b1", "content", "s1", true),
            ("s1", "mark", "m1", true),
            ("m1", "doc", "d1", true),
            ("b1", "content", "s2", true),
            ("s2", "mark", "m2", true),
            ("m2", "doc", "d2", true),
        ]);
        let content = store.find_atom("content").unwrap();
        let mark = store.find_atom("mark").unwrap();
        let doc = store.find_atom("doc").unwrap();
        let mut q = ConjQuery::new();
        let (b, s, m, d) = (q.var("b"), q.var("s"), q.var("m"), q.var("d"));
        q.pattern(b, content, s).pattern(s, mark, m).pattern(m, doc, d);
        let baseline = q.solve(&store).unwrap();
        assert_eq!(baseline.len(), 2);
        let vars = [b, s, m, d];
        // All 24 permutations of the binding order.
        let mut perms = Vec::new();
        permute(&vars, &mut Vec::new(), &mut perms);
        assert_eq!(perms.len(), 24);
        for order in perms {
            assert_eq!(q.solve_ordered(&store, &order).unwrap(), baseline, "order {order:?}");
        }
    }

    fn permute(rest: &[Var], acc: &mut Vec<Var>, out: &mut Vec<Vec<Var>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        for (i, v) in rest.iter().enumerate() {
            let mut next: Vec<Var> = rest.to_vec();
            next.remove(i);
            acc.push(*v);
            permute(&next, acc, out);
            acc.pop();
        }
    }

    #[test]
    fn const_only_pattern_is_a_probe_gate() {
        let store = store_with(&[("a", "p", "b", true), ("c", "q", "d", true)]);
        let (a, p) = (store.find_atom("a").unwrap(), store.find_atom("p").unwrap());
        let b = Value::Resource(store.find_atom("b").unwrap());
        let q_atom = store.find_atom("q").unwrap();
        let mut q = ConjQuery::new();
        let x = q.var("x");
        let y = q.var("y");
        q.pattern(a, p, b).pattern(x, q_atom, y);
        // Hit: the ground pattern holds, so the variable patterns solve.
        assert_eq!(q.solve(&store).unwrap().len(), 1);
        // Miss: flip the ground pattern to an absent triple.
        let mut q2 = ConjQuery::new();
        let x2 = q2.var("x");
        let y2 = q2.var("y");
        q2.pattern(a, q_atom, b).pattern(x2, q_atom, y2);
        assert!(q2.solve(&store).unwrap().is_empty());
        let _ = x;
    }

    #[test]
    fn validation_rejects_degenerate_queries() {
        let store = TripleStore::new();
        let q = ConjQuery::new();
        assert_eq!(q.solve(&store).unwrap_err(), ConjError::Empty);

        let mut q = ConjQuery::new();
        let used = q.var("used");
        let _ghost = q.var("ghost");
        q.pattern(used, used, used);
        assert_eq!(q.solve(&store).unwrap_err(), ConjError::UnusedVar("ghost".to_string()));

        let mut q = ConjQuery::new();
        let v = q.var("v");
        q.pattern(v, v, Var(7));
        assert_eq!(q.solve(&store).unwrap_err(), ConjError::UnknownVar(7));
    }

    #[test]
    fn bad_orders_are_rejected() {
        let store = store_with(&[("a", "p", "b", true)]);
        let p = store.find_atom("p").unwrap();
        let mut q = ConjQuery::new();
        let (x, y) = (q.var("x"), q.var("y"));
        q.pattern(x, p, y);
        assert!(matches!(q.solve_ordered(&store, &[x]), Err(ConjError::BadOrder(_))));
        assert!(matches!(q.solve_ordered(&store, &[x, x]), Err(ConjError::BadOrder(_))));
        assert!(matches!(
            q.solve_ordered(&store, &[x, Var(9)]),
            Err(ConjError::UnknownVar(9))
        ));
    }

    #[test]
    fn explain_join_renders_the_tree() {
        let store = store_with(&[
            ("b1", "content", "s1", true),
            ("s1", "name", "alpha", false),
        ]);
        let b1 = store.find_atom("b1").unwrap();
        let content = store.find_atom("content").unwrap();
        let name = store.find_atom("name").unwrap();
        let mut q = ConjQuery::new();
        let s = q.var("s");
        let n = q.var("n");
        q.pattern(b1, content, s).pattern(s, name, n);
        let tree = store.explain_join(&q).unwrap();
        assert!(tree.starts_with("join tree: 2 patterns, bind order ?s -> ?n"), "{tree}");
        assert!(tree.contains("SPO run, 2 bound"), "{tree}");
        assert!(tree.contains("(b1 content ?s)"), "{tree}");
        // Deterministic: identical on recomputation.
        assert_eq!(tree, store.explain_join(&q).unwrap());
    }

    #[test]
    fn literals_join_on_the_object_position() {
        let store = store_with(&[
            ("s1", "name", "dup", false),
            ("s2", "name", "dup", false),
            ("s3", "name", "uniq", false),
        ]);
        let name = store.find_atom("name").unwrap();
        let mut q = ConjQuery::new();
        let (a, b, n) = (q.var("a"), q.var("b"), q.var("n"));
        q.pattern(a, name, n).pattern(b, name, n);
        let rows = q.solve(&store).unwrap();
        // Pairs sharing a name, both orders plus diagonals.
        assert_eq!(rows.len(), 5);
        assert_eq!(rows, naive_join(&store, &q).unwrap());
    }
}
