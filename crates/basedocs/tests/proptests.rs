//! Property tests for the base-document engines: address codecs must
//! round-trip, A1 references must round-trip, formulas must obey basic
//! algebraic laws, pagination must preserve text, and the HTML parser
//! must never panic on arbitrary input.

use basedocs::app::Address;
use basedocs::spreadsheet::formula::{self, EmptyResolver};
use basedocs::{
    CellRef, CellValue, HtmlAddress, PdfAddress, Range, SlideAddress, Span, SpreadsheetAddress,
    TextAddress,
};
use proptest::prelude::*;

fn file_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_./-]{0,20}\\.(xls|xml|doc|html|pdf|ppt)".prop_map(|s| s)
}

proptest! {
    #[test]
    fn cellref_roundtrips(row in 0u32..100_000, col in 0u32..20_000) {
        let c = CellRef::new(row, col);
        prop_assert_eq!(CellRef::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn range_roundtrips(r1 in 0u32..5_000, c1 in 0u32..500, r2 in 0u32..5_000, c2 in 0u32..500) {
        let r = Range::new(CellRef::new(r1, c1), CellRef::new(r2, c2));
        prop_assert_eq!(Range::parse(&r.to_string()).unwrap(), r);
        // Normalization invariant.
        prop_assert!(r.start.row <= r.end.row && r.start.col <= r.end.col);
        prop_assert_eq!(
            r.cell_count() as usize,
            r.cells().count()
        );
    }

    #[test]
    fn spreadsheet_address_fields_roundtrip(file in file_name(), sheet in "[A-Za-z ]{1,12}", r in 0u32..200, c in 0u32..40) {
        let addr = SpreadsheetAddress {
            file_name: file,
            sheet_name: sheet,
            range: Range::cell(CellRef::new(r, c)),
        };
        prop_assert_eq!(SpreadsheetAddress::from_fields(&addr.to_fields()).unwrap(), addr);
    }

    #[test]
    fn pdf_address_fields_roundtrip(file in file_name(), page in 0usize..50, line in 0usize..60, a in 0usize..80, len in 0usize..40) {
        let addr = PdfAddress { file_name: file, page, line, span: Span::new(a, a + len) };
        prop_assert_eq!(PdfAddress::from_fields(&addr.to_fields()).unwrap(), addr);
    }

    #[test]
    fn slide_address_fields_roundtrip(file in file_name(), slide in 0usize..40, shape in "[a-z][a-z0-9-]{0,10}") {
        let addr = SlideAddress { file_name: file, slide, shape_id: shape };
        prop_assert_eq!(SlideAddress::from_fields(&addr.to_fields()).unwrap(), addr);
    }

    #[test]
    fn text_address_fields_roundtrip(file in file_name(), para in 0usize..30, a in 0usize..50, len in 0usize..30, bookmark in proptest::option::of("[a-z]{1,8}")) {
        let target = match bookmark {
            Some(b) => basedocs::textdoc::TextTarget::Bookmark(b),
            None => basedocs::textdoc::TextTarget::Span { paragraph: para, span: Span::new(a, a + len) },
        };
        let addr = TextAddress { file_name: file, target };
        prop_assert_eq!(TextAddress::from_fields(&addr.to_fields()).unwrap(), addr);
    }

    #[test]
    fn html_address_fields_roundtrip(url in file_name(), anchor in proptest::option::of("[a-z]{1,8}"), n in 1usize..5) {
        let target = match anchor {
            Some(a) => basedocs::htmldoc::HtmlTarget::Anchor(a),
            None => basedocs::htmldoc::HtmlTarget::Element(
                xmlkit::XPath::parse(&format!("/html/body/p[{n}]")).unwrap(),
            ),
        };
        let addr = HtmlAddress { url, target };
        prop_assert_eq!(HtmlAddress::from_fields(&addr.to_fields()).unwrap(), addr);
    }

    /// Formula arithmetic obeys commutativity/associativity of + on the
    /// representable range and a + 0 identity.
    #[test]
    fn formula_addition_laws(a in -1000i32..1000, b in -1000i32..1000) {
        let ev = |t: &str| formula::evaluate(t, &EmptyResolver).unwrap();
        // Negative literals need parenthesization in formula syntax.
        let fa = format!("({a})");
        let fb = format!("({b})");
        prop_assert_eq!(ev(&format!("{fa}+{fb}")), ev(&format!("{fb}+{fa}")));
        prop_assert_eq!(ev(&format!("{fa}+0")), CellValue::Number(a as f64));
        prop_assert_eq!(
            ev(&format!("({fa}+{fb})+1")),
            ev(&format!("{fa}+({fb}+1)"))
        );
    }

    /// SUM over explicit args equals folded addition.
    #[test]
    fn formula_sum_matches_fold(xs in proptest::collection::vec(-100i32..100, 1..8)) {
        let args: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
        let sum = formula::evaluate(&format!("SUM({})", args.join(",")), &EmptyResolver).unwrap();
        prop_assert_eq!(sum, CellValue::Number(xs.iter().map(|&x| x as f64).sum()));
    }

    /// Pagination preserves every word, in order.
    #[test]
    fn pagination_preserves_words(words in proptest::collection::vec("[a-zA-Z]{1,12}", 0..120), width in 10usize..60, lpp in 1usize..20) {
        let text = words.join(" ");
        let doc = basedocs::pdfdoc::PdfDocument::paginate("t.pdf", &text, width, lpp);
        let mut out: Vec<String> = Vec::new();
        for page in doc.pages() {
            for line in page.lines() {
                out.extend(line.split_whitespace().map(|w| w.to_string()));
            }
        }
        prop_assert_eq!(out, words);
    }

    /// The HTML parser never panics and always produces an `html` root,
    /// whatever bytes arrive.
    #[test]
    fn html_parser_total(input in "[ -~\\n<>&\"']{0,300}") {
        let root = basedocs::htmldoc::parse_html(&input);
        prop_assert_eq!(root.name.as_str(), "html");
    }

    /// Parsing rendered spreadsheet input round-trips numbers.
    #[test]
    fn cell_value_number_roundtrip(n in -1.0e9..1.0e9f64) {
        let v = CellValue::Number(n);
        let reparsed = CellValue::from_input(&v.to_string());
        match reparsed {
            CellValue::Number(m) => prop_assert!((m - n).abs() <= 1e-6 * n.abs().max(1.0)),
            other => prop_assert!(false, "reparsed to {other:?}"),
        }
    }
}
