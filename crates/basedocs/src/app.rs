//! The narrow base-application interface (paper §1, "Minimize assumptions
//! about the base layer").
//!
//! A base application must be able to do exactly two things for the
//! superimposed layer: *report the address of the current selection* and
//! *return to an element given an address*. The trait adds the two §6
//! extension behaviours (`extract_content`, `display_in_place`) the paper
//! proposes for superimposed application builders, which our engines all
//! support.
//!
//! Each engine has its own strongly-typed address; the trait is generic
//! over that associated type. Type erasure for the Mark Manager registry
//! happens one layer up, in the `marks` crate, mirroring the paper's
//! split between *mark types* (data) and *mark modules* (drivers).

use crate::common::{DocError, DocKind};

/// An address into a base document, as a base application understands it.
///
/// Addresses must survive persistence: they encode to an ordered list of
/// named string fields — exactly the paper's picture of a mark containing
/// "one or more attributes that comprise an address of the appropriate
/// type" (Figure 3) — and decode back.
pub trait Address: Clone + std::fmt::Debug + std::fmt::Display + PartialEq {
    /// The document kind this address family applies to.
    fn kind() -> DocKind;

    /// Encode as ordered `(field, value)` pairs (e.g. Excel:
    /// `fileName`/`sheetName`/`range`, matching Figure 8).
    fn to_fields(&self) -> Vec<(String, String)>;

    /// Decode from pairs produced by [`Address::to_fields`].
    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError>;

    /// The containing document/file name — present in every address
    /// family (`fileName` in both of Figure 8's mark types).
    fn file_name(&self) -> &str;
}

/// The base-application interface: the only capabilities the superimposed
/// layer may assume (plus the §6 extensions).
pub trait BaseApplication {
    /// This application's address family.
    type Addr: Address;

    /// Human-readable application name (e.g. `"Spreadsheet"`), used in
    /// viewing-style displays.
    fn app_name(&self) -> &'static str;

    /// Names of currently open documents.
    fn open_documents(&self) -> Vec<String>;

    /// Capability 1: the address of the currently selected information
    /// element, if anything is selected.
    fn current_selection(&self) -> Result<Self::Addr, DocError>;

    /// Capability 2: drive the application back to the addressed element
    /// (open/activate the document, select and reveal the element).
    fn navigate_to(&mut self, addr: &Self::Addr) -> Result<(), DocError>;

    /// §6 extension: return the addressed element's content as text,
    /// without changing the application's own selection.
    fn extract_content(&self, addr: &Self::Addr) -> Result<String, DocError>;

    /// §6 extension / independent viewing: render the addressed element
    /// *in context* as plain text, with the element visually highlighted —
    /// what a user would see after `navigate_to` in simultaneous viewing.
    fn display_in_place(&self, addr: &Self::Addr) -> Result<String, DocError>;

    /// Whether an address still resolves (mark-audit support). Default:
    /// try `extract_content`.
    fn address_is_live(&self, addr: &Self::Addr) -> bool {
        self.extract_content(addr).is_ok()
    }
}
