//! Types shared by all base-document engines.

use std::fmt;

/// The kind of base information a document (and therefore a mark) refers
/// to. One mark type exists per kind (paper Figure 3: "one subclass of
/// Mark for each type of base information supported").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DocKind {
    Spreadsheet,
    Xml,
    Text,
    Html,
    Pdf,
    Slides,
}

impl DocKind {
    /// All supported kinds, in a stable order.
    pub fn all() -> [DocKind; 6] {
        [
            DocKind::Spreadsheet,
            DocKind::Xml,
            DocKind::Text,
            DocKind::Html,
            DocKind::Pdf,
            DocKind::Slides,
        ]
    }

    /// Stable identifier used in persisted marks.
    pub fn id(self) -> &'static str {
        match self {
            DocKind::Spreadsheet => "spreadsheet",
            DocKind::Xml => "xml",
            DocKind::Text => "text",
            DocKind::Html => "html",
            DocKind::Pdf => "pdf",
            DocKind::Slides => "slides",
        }
    }

    /// Parse a stable identifier back to a kind.
    pub fn from_id(id: &str) -> Option<DocKind> {
        DocKind::all().into_iter().find(|k| k.id() == id)
    }
}

impl fmt::Display for DocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A half-open character span `[start, end)` within some text unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` — a construction bug, not a data error.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "span end {end} before start {start}");
        Span { start, end }
    }

    /// Character length of the span.
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// True for zero-length (caret) spans.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// True if `self` lies entirely within `[0, len)`.
    pub fn fits_within(self, len: usize) -> bool {
        self.end <= len
    }

    /// The text the span covers, if it is in bounds (by char index).
    pub fn slice(self, text: &str) -> Option<String> {
        let chars: Vec<char> = text.chars().collect();
        if !self.fits_within(chars.len()) {
            return None;
        }
        Some(chars[self.start..self.end].iter().collect())
    }

    /// Parse `"start..end"` (used in persisted addresses).
    pub fn parse(text: &str) -> Option<Span> {
        let (a, b) = text.split_once("..")?;
        let start = a.trim().parse().ok()?;
        let end = b.trim().parse().ok()?;
        if end < start {
            return None;
        }
        Some(Span { start, end })
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Errors from document operations: opening, addressing, navigating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// No open document with the given name.
    NoSuchDocument { name: String },
    /// A document with this name is already open.
    AlreadyOpen { name: String },
    /// The address does not parse (bad range text, bad path, …).
    BadAddress { message: String },
    /// The address parses but points outside the document — the classic
    /// *dangling mark* case after the base document changed.
    Dangling { message: String },
    /// No current selection when one was required.
    NoSelection,
    /// A document-content error (bad formula, malformed source text, …).
    Content { message: String },
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::NoSuchDocument { name } => write!(f, "no open document named {name:?}"),
            DocError::AlreadyOpen { name } => write!(f, "document {name:?} is already open"),
            DocError::BadAddress { message } => write!(f, "bad address: {message}"),
            DocError::Dangling { message } => write!(f, "dangling address: {message}"),
            DocError::NoSelection => write!(f, "no current selection"),
            DocError::Content { message } => write!(f, "document content error: {message}"),
        }
    }
}

impl std::error::Error for DocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dockind_id_roundtrip() {
        for k in DocKind::all() {
            assert_eq!(DocKind::from_id(k.id()), Some(k));
        }
        assert_eq!(DocKind::from_id("floppy"), None);
    }

    #[test]
    fn span_basics() {
        let s = Span::new(2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Span::new(1, 1).is_empty());
        assert!(s.fits_within(5));
        assert!(!s.fits_within(4));
    }

    #[test]
    fn span_slice_by_chars_not_bytes() {
        let s = Span::new(0, 3);
        assert_eq!(s.slice("Na⁺K").as_deref(), Some("Na⁺"));
        assert_eq!(Span::new(3, 9).slice("short"), None);
    }

    #[test]
    fn span_parse_display_roundtrip() {
        let s = Span::new(4, 17);
        assert_eq!(Span::parse(&s.to_string()), Some(s));
        assert_eq!(Span::parse("9..3"), None);
        assert_eq!(Span::parse("x..3"), None);
        assert_eq!(Span::parse("37"), None);
    }

    #[test]
    #[should_panic(expected = "span end")]
    fn backwards_span_panics() {
        let _ = Span::new(5, 2);
    }
}
