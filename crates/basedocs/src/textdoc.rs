//! The text-document application: the Word stand-in.
//!
//! Documents are sequences of paragraphs. Two addressing modes exist,
//! matching how word processors are really addressed:
//!
//! * **named bookmarks** — robust against edits elsewhere in the
//!   document (Word bookmarks);
//! * **paragraph + character span** — precise free selection.
//!
//! Both encode into mark fields; the bookmark mode shows why the paper's
//! architecture leaves address semantics entirely to the base
//! application.

use crate::app::{Address, BaseApplication};
use crate::common::{DocError, DocKind, Span};
use std::collections::BTreeMap;
use std::fmt;

/// What a text address points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextTarget {
    /// A named bookmark defined in the document.
    Bookmark(String),
    /// A character span within one zero-based paragraph.
    Span { paragraph: usize, span: Span },
}

/// The text mark address: `fileName` plus a [`TextTarget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextAddress {
    pub file_name: String,
    pub target: TextTarget,
}

impl fmt::Display for TextAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            TextTarget::Bookmark(b) => write!(f, "{}#bookmark:{}", self.file_name, b),
            TextTarget::Span { paragraph, span } => {
                write!(f, "{}#para{}:{}", self.file_name, paragraph, span)
            }
        }
    }
}

impl Address for TextAddress {
    fn kind() -> DocKind {
        DocKind::Text
    }

    fn to_fields(&self) -> Vec<(String, String)> {
        let mut fields = vec![("fileName".into(), self.file_name.clone())];
        match &self.target {
            TextTarget::Bookmark(b) => fields.push(("bookmark".into(), b.clone())),
            TextTarget::Span { paragraph, span } => {
                fields.push(("paragraph".into(), paragraph.to_string()));
                fields.push(("span".into(), span.to_string()));
            }
        }
        fields
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError> {
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
        let file_name = get("fileName")
            .ok_or_else(|| DocError::BadAddress { message: "missing field \"fileName\"".into() })?
            .to_string();
        let target = if let Some(b) = get("bookmark") {
            TextTarget::Bookmark(b.to_string())
        } else {
            let paragraph: usize = get("paragraph")
                .ok_or_else(|| DocError::BadAddress {
                    message: "need either \"bookmark\" or \"paragraph\"+\"span\"".into(),
                })?
                .parse()
                .map_err(|_| DocError::BadAddress { message: "bad paragraph number".into() })?;
            let span = get("span")
                .and_then(Span::parse)
                .ok_or_else(|| DocError::BadAddress { message: "bad or missing span".into() })?;
            TextTarget::Span { paragraph, span }
        };
        Ok(TextAddress { file_name, target })
    }

    fn file_name(&self) -> &str {
        &self.file_name
    }
}

/// A text document: paragraphs plus named bookmarks.
#[derive(Debug, Clone, Default)]
pub struct TextDocument {
    /// The document's file name.
    pub name: String,
    paragraphs: Vec<String>,
    /// bookmark name → (paragraph, span)
    bookmarks: BTreeMap<String, (usize, Span)>,
}

impl TextDocument {
    /// Build from full text, splitting paragraphs on blank lines.
    pub fn from_text(name: impl Into<String>, text: &str) -> Self {
        let paragraphs = text
            .split("\n\n")
            .map(|p| p.trim().replace('\n', " "))
            .filter(|p| !p.is_empty())
            .collect();
        TextDocument { name: name.into(), paragraphs, bookmarks: BTreeMap::new() }
    }

    /// Paragraphs in order.
    pub fn paragraphs(&self) -> &[String] {
        &self.paragraphs
    }

    /// Append a paragraph at the end of the document.
    pub fn append_paragraph(&mut self, text: impl Into<String>) {
        self.paragraphs.push(text.into());
    }

    /// Insert a paragraph before zero-based index `at`. Bookmarks at or
    /// below move with their content (Word bookmarks track content, not
    /// coordinates); span-based *mark addresses* held by the superimposed
    /// layer are untouched and will drift — by design.
    pub fn insert_paragraph(&mut self, at: usize, text: impl Into<String>) -> Result<(), DocError> {
        if at > self.paragraphs.len() {
            return Err(DocError::Dangling {
                message: format!("insert position {at} beyond document end"),
            });
        }
        self.paragraphs.insert(at, text.into());
        for (para, _) in self.bookmarks.values_mut() {
            if *para >= at {
                *para += 1;
            }
        }
        Ok(())
    }

    /// Replace the text of a paragraph, returning the old text.
    /// Bookmarks into the paragraph keep their spans; whether those
    /// spans still fit is checked at access time.
    pub fn replace_paragraph(
        &mut self,
        at: usize,
        text: impl Into<String>,
    ) -> Result<String, DocError> {
        let slot = self.paragraphs.get_mut(at).ok_or_else(|| DocError::Dangling {
            message: format!("paragraph {at} out of range"),
        })?;
        Ok(std::mem::replace(slot, text.into()))
    }

    /// Define (or move) a named bookmark over a span of a paragraph.
    pub fn set_bookmark(
        &mut self,
        name: impl Into<String>,
        paragraph: usize,
        span: Span,
    ) -> Result<(), DocError> {
        self.check_span(paragraph, span)?;
        self.bookmarks.insert(name.into(), (paragraph, span));
        Ok(())
    }

    /// Resolve a bookmark to its (paragraph, span).
    pub fn bookmark(&self, name: &str) -> Option<(usize, Span)> {
        self.bookmarks.get(name).copied()
    }

    /// Bookmark names in order.
    pub fn bookmark_names(&self) -> Vec<&str> {
        self.bookmarks.keys().map(String::as_str).collect()
    }

    fn check_span(&self, paragraph: usize, span: Span) -> Result<(), DocError> {
        let para = self.paragraphs.get(paragraph).ok_or_else(|| DocError::Dangling {
            message: format!("paragraph {paragraph} out of range (document has {})", self.paragraphs.len()),
        })?;
        let len = para.chars().count();
        if !span.fits_within(len) {
            return Err(DocError::Dangling {
                message: format!("span {span} exceeds paragraph length {len}"),
            });
        }
        Ok(())
    }

    /// Resolve a target to (paragraph index, span), following bookmarks.
    fn resolve_target(&self, target: &TextTarget) -> Result<(usize, Span), DocError> {
        match target {
            TextTarget::Bookmark(name) => {
                let (paragraph, span) =
                    self.bookmark(name).ok_or_else(|| DocError::Dangling {
                        message: format!("no bookmark {name:?} in {:?}", self.name),
                    })?;
                // A bookmark can outlive the text it pointed at; validate
                // it like a raw span instead of trusting the stored range.
                self.check_span(paragraph, span)?;
                Ok((paragraph, span))
            }
            TextTarget::Span { paragraph, span } => {
                self.check_span(*paragraph, *span)?;
                Ok((*paragraph, *span))
            }
        }
    }

    /// The text covered by a target.
    pub fn text_at(&self, target: &TextTarget) -> Result<String, DocError> {
        let (para, span) = self.resolve_target(target)?;
        let text = self.paragraphs.get(para).ok_or_else(|| DocError::Dangling {
            message: format!("paragraph {para} out of range"),
        })?;
        span.slice(text).ok_or_else(|| DocError::Dangling {
            message: format!("span {span} no longer fits paragraph {para}"),
        })
    }

    /// Find the first occurrence of `needle` at or after
    /// `(from_paragraph, from_offset)` — the find dialog. Matching is
    /// case-insensitive; offsets are in characters.
    pub fn find(
        &self,
        needle: &str,
        from_paragraph: usize,
        from_offset: usize,
    ) -> Option<(usize, Span)> {
        if needle.is_empty() {
            return None;
        }
        let needle_lower: Vec<char> = needle.to_lowercase().chars().collect();
        for (p, para) in self.paragraphs.iter().enumerate().skip(from_paragraph) {
            let chars: Vec<char> = para.to_lowercase().chars().collect();
            let start_at = if p == from_paragraph { from_offset } else { 0 };
            if chars.len() < needle_lower.len() {
                continue;
            }
            for start in start_at..=(chars.len() - needle_lower.len()) {
                if chars[start..start + needle_lower.len()] == needle_lower[..] {
                    return Some((p, Span::new(start, start + needle_lower.len())));
                }
            }
        }
        None
    }

    /// The span of the sentence containing character `at` — how
    /// triple-click selection works. Sentences end at `.`, `!`, or `?`
    /// followed by whitespace (or paragraph end).
    pub fn sentence_at(&self, paragraph: usize, at: usize) -> Result<Span, DocError> {
        let para = self.paragraphs.get(paragraph).ok_or_else(|| DocError::Dangling {
            message: format!("paragraph {paragraph} out of range"),
        })?;
        let chars: Vec<char> = para.chars().collect();
        if at >= chars.len() {
            return Err(DocError::BadAddress {
                message: format!("offset {at} beyond paragraph length {}", chars.len()),
            });
        }
        let is_end = |i: usize| {
            matches!(chars[i], '.' | '!' | '?')
                && chars.get(i + 1).is_none_or(|c| c.is_whitespace())
        };
        // Walk back to just after the previous sentence end.
        let mut start = 0;
        for i in (0..at).rev() {
            if is_end(i) {
                start = i + 1;
                break;
            }
        }
        while start < chars.len() && chars[start].is_whitespace() {
            start += 1;
        }
        // Walk forward to this sentence's end (inclusive of punctuation).
        let mut end = chars.len();
        for (i, _) in chars.iter().enumerate().skip(at) {
            if is_end(i) {
                end = i + 1;
                break;
            }
        }
        Ok(Span::new(start.min(end), end))
    }

    /// The span of the word containing character `at` in a paragraph —
    /// how double-click selection works.
    pub fn word_at(&self, paragraph: usize, at: usize) -> Result<Span, DocError> {
        let para = self.paragraphs.get(paragraph).ok_or_else(|| DocError::Dangling {
            message: format!("paragraph {paragraph} out of range"),
        })?;
        let chars: Vec<char> = para.chars().collect();
        if at >= chars.len() {
            return Err(DocError::BadAddress {
                message: format!("offset {at} beyond paragraph length {}", chars.len()),
            });
        }
        let is_word = |c: char| c.is_alphanumeric() || c == '_' || c == '\'';
        if !is_word(chars[at]) {
            return Ok(Span::new(at, at + 1));
        }
        let mut start = at;
        while start > 0 && is_word(chars[start - 1]) {
            start -= 1;
        }
        let mut end = at + 1;
        while end < chars.len() && is_word(chars[end]) {
            end += 1;
        }
        Ok(Span::new(start, end))
    }
}

/// The simulated word processor.
#[derive(Debug, Default)]
pub struct TextApp {
    documents: BTreeMap<String, TextDocument>,
    selection: Option<TextAddress>,
}

impl TextApp {
    /// An instance with no open documents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a document.
    pub fn open(&mut self, doc: TextDocument) -> Result<(), DocError> {
        if self.documents.contains_key(&doc.name) {
            return Err(DocError::AlreadyOpen { name: doc.name.clone() });
        }
        self.documents.insert(doc.name.clone(), doc);
        Ok(())
    }

    /// Close a document; clears the selection if it pointed there.
    pub fn close(&mut self, name: &str) -> Result<TextDocument, DocError> {
        let doc = self
            .documents
            .remove(name)
            .ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })?;
        if self.selection.as_ref().is_some_and(|s| s.file_name == name) {
            self.selection = None;
        }
        Ok(doc)
    }

    /// Read access to an open document.
    pub fn document(&self, name: &str) -> Result<&TextDocument, DocError> {
        self.documents
            .get(name)
            .ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })
    }

    /// Write access (the base application edits independently).
    pub fn document_mut(&mut self, name: &str) -> Result<&mut TextDocument, DocError> {
        self.documents
            .get_mut(name)
            .ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })
    }

    /// User action: select a character span.
    pub fn select_span(
        &mut self,
        file: &str,
        paragraph: usize,
        start: usize,
        end: usize,
    ) -> Result<(), DocError> {
        let addr = TextAddress {
            file_name: file.to_string(),
            target: TextTarget::Span { paragraph, span: Span::new(start, end) },
        };
        self.document(file)?.resolve_target(&addr.target)?;
        self.selection = Some(addr);
        Ok(())
    }

    /// User action: double-click selects the word at a position.
    pub fn select_word(&mut self, file: &str, paragraph: usize, at: usize) -> Result<(), DocError> {
        let span = self.document(file)?.word_at(paragraph, at)?;
        self.select_span(file, paragraph, span.start, span.end)
    }

    /// User action: find text and select its first occurrence at or
    /// after the current selection (or the document start).
    pub fn select_found(&mut self, file: &str, needle: &str) -> Result<(), DocError> {
        let (from_para, from_off) = match &self.selection {
            Some(TextAddress { file_name, target: TextTarget::Span { paragraph, span } })
                if file_name == file =>
            {
                (*paragraph, span.end)
            }
            _ => (0, 0),
        };
        let (paragraph, span) =
            self.document(file)?.find(needle, from_para, from_off).ok_or_else(|| {
                DocError::BadAddress { message: format!("{needle:?} not found in {file:?}") }
            })?;
        self.select_span(file, paragraph, span.start, span.end)
    }

    /// User action: triple-click selects the sentence at a position.
    pub fn select_sentence(&mut self, file: &str, paragraph: usize, at: usize) -> Result<(), DocError> {
        let span = self.document(file)?.sentence_at(paragraph, at)?;
        self.select_span(file, paragraph, span.start, span.end)
    }

    /// Find every occurrence of `needle` across all open documents —
    /// the find-all dialog.
    pub fn find_all(&self, needle: &str) -> Vec<TextAddress> {
        let mut out = Vec::new();
        for (name, doc) in &self.documents {
            let mut para = 0usize;
            let mut offset = 0usize;
            while let Some((p, span)) = doc.find(needle, para, offset) {
                out.push(TextAddress {
                    file_name: name.clone(),
                    target: TextTarget::Span { paragraph: p, span },
                });
                para = p;
                offset = span.end;
            }
        }
        out
    }

    /// User action: select a named bookmark.
    pub fn select_bookmark(&mut self, file: &str, bookmark: &str) -> Result<(), DocError> {
        let addr = TextAddress {
            file_name: file.to_string(),
            target: TextTarget::Bookmark(bookmark.to_string()),
        };
        self.document(file)?.resolve_target(&addr.target)?;
        self.selection = Some(addr);
        Ok(())
    }
}

impl BaseApplication for TextApp {
    type Addr = TextAddress;

    fn app_name(&self) -> &'static str {
        "Word Processor"
    }

    fn open_documents(&self) -> Vec<String> {
        self.documents.keys().cloned().collect()
    }

    fn current_selection(&self) -> Result<TextAddress, DocError> {
        self.selection.clone().ok_or(DocError::NoSelection)
    }

    fn navigate_to(&mut self, addr: &TextAddress) -> Result<(), DocError> {
        self.document(&addr.file_name)?.resolve_target(&addr.target)?;
        self.selection = Some(addr.clone());
        Ok(())
    }

    fn extract_content(&self, addr: &TextAddress) -> Result<String, DocError> {
        self.document(&addr.file_name)?.text_at(&addr.target)
    }

    fn display_in_place(&self, addr: &TextAddress) -> Result<String, DocError> {
        let doc = self.document(&addr.file_name)?;
        let (target_para, span) = doc.resolve_target(&addr.target)?;
        let mut out = format!("── {} — {} ──\n", self.app_name(), addr.file_name);
        for (i, para) in doc.paragraphs().iter().enumerate() {
            // Show the target paragraph with highlight plus one paragraph
            // of context on each side.
            if i + 1 < target_para || i > target_para + 1 {
                continue;
            }
            if i == target_para {
                let chars: Vec<char> = para.chars().collect();
                // Clamp rather than index: the span was validated at
                // resolve time, but rendering must never panic even if
                // the document changed in between.
                let start = span.start.min(chars.len());
                let end = span.end.clamp(start, chars.len());
                let before: String = chars[..start].iter().collect();
                let inside: String = chars[start..end].iter().collect();
                let after: String = chars[end..].iter().collect();
                out.push_str(&format!("¶{i}: {before}[{inside}]{after}\n"));
            } else {
                out.push_str(&format!("¶{i}: {para}\n"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRESS_NOTE: &str = "\
Patient: John Smith, 61M, admitted with CHF exacerbation.

Overnight events: diuresed 1.2L with IV Lasix. Potassium repleted.

Plan: continue Lasix 40 IV bid, recheck electrolytes this afternoon,\n\
consider captopril uptitration if BP tolerates.

Disposition: likely transfer to floor tomorrow if stable.";

    fn app() -> TextApp {
        let mut a = TextApp::new();
        let mut doc = TextDocument::from_text("note.doc", PROGRESS_NOTE);
        let span = Span::new(18, 26); // "diuresed" in paragraph 1
        doc.set_bookmark("overnight", 1, span).unwrap();
        a.open(doc).unwrap();
        a
    }

    #[test]
    fn paragraph_splitting() {
        let a = app();
        let doc = a.document("note.doc").unwrap();
        assert_eq!(doc.paragraphs().len(), 4);
        assert!(doc.paragraphs()[0].starts_with("Patient: John Smith"));
        assert!(
            doc.paragraphs()[2].contains("recheck electrolytes this afternoon, consider"),
            "hard-wrapped lines join into one paragraph"
        );
    }

    #[test]
    fn span_selection_and_extract() {
        let mut a = app();
        a.select_span("note.doc", 0, 9, 19).unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "John Smith");
    }

    #[test]
    fn word_selection() {
        let mut a = app();
        // Find "Lasix" in paragraph 2 and double-click its middle.
        let doc = a.document("note.doc").unwrap();
        let para = &doc.paragraphs()[2];
        let at = para.find("Lasix").unwrap(); // ASCII text: byte == char idx
        a.select_word("note.doc", 2, at + 2).unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "Lasix");
    }

    #[test]
    fn word_at_non_word_char_selects_single_char() {
        let a = app();
        let doc = a.document("note.doc").unwrap();
        let para = &doc.paragraphs()[0];
        let at = para.find(':').unwrap();
        assert_eq!(doc.word_at(0, at).unwrap().len(), 1);
    }

    #[test]
    fn bookmark_selection_and_extract() {
        let mut a = app();
        a.select_bookmark("note.doc", "overnight").unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "diuresed");
        assert!(a.select_bookmark("note.doc", "nonexistent").is_err());
    }

    #[test]
    fn out_of_range_spans_are_dangling() {
        let mut a = app();
        assert!(matches!(a.select_span("note.doc", 9, 0, 1), Err(DocError::Dangling { .. })));
        assert!(matches!(a.select_span("note.doc", 0, 0, 10_000), Err(DocError::Dangling { .. })));
    }

    #[test]
    fn display_in_place_brackets_selection_with_context() {
        let a = app();
        let addr = TextAddress {
            file_name: "note.doc".into(),
            target: TextTarget::Bookmark("overnight".into()),
        };
        let view = a.display_in_place(&addr).unwrap();
        assert!(view.contains("[diuresed]"), "{view}");
        assert!(view.contains("¶0:"), "context paragraph before");
        assert!(view.contains("¶2:"), "context paragraph after");
        assert!(!view.contains("¶3:"), "distant paragraph excluded");
    }

    #[test]
    fn address_fields_roundtrip_both_modes() {
        let bookmark = TextAddress {
            file_name: "note.doc".into(),
            target: TextTarget::Bookmark("overnight".into()),
        };
        assert_eq!(TextAddress::from_fields(&bookmark.to_fields()).unwrap(), bookmark);
        let span = TextAddress {
            file_name: "note.doc".into(),
            target: TextTarget::Span { paragraph: 2, span: Span::new(5, 12) },
        };
        assert_eq!(TextAddress::from_fields(&span.to_fields()).unwrap(), span);
        assert!(TextAddress::from_fields(&[("fileName".into(), "f".into())]).is_err());
    }

    #[test]
    fn bookmark_survives_edits_to_other_paragraphs_conceptually() {
        // A bookmark is re-resolved at access time: moving it moves the
        // mark target without touching stored addresses.
        let mut a = app();
        a.document_mut("note.doc").unwrap().set_bookmark("overnight", 2, Span::new(0, 4)).unwrap();
        let addr = TextAddress {
            file_name: "note.doc".into(),
            target: TextTarget::Bookmark("overnight".into()),
        };
        assert_eq!(a.extract_content(&addr).unwrap(), "Plan");
    }

    #[test]
    fn find_is_case_insensitive_and_resumable() {
        let mut a = app();
        a.select_found("note.doc", "lasix").unwrap();
        let first = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&first).unwrap(), "Lasix");
        // Next find resumes after the current selection.
        a.select_found("note.doc", "lasix").unwrap();
        let second = a.current_selection().unwrap();
        assert_ne!(first, second, "find-next moved to the later occurrence");
        assert!(a.select_found("note.doc", "lasix").is_err(), "no third occurrence");
        assert!(a.select_found("note.doc", "digoxin").is_err());
    }

    #[test]
    fn sentence_selection() {
        let mut a = app();
        // Paragraph 1: "Overnight events: diuresed 1.2L with IV Lasix.
        //                Potassium repleted."
        let doc = a.document("note.doc").unwrap();
        let at = doc.paragraphs()[1].find("Potassium").unwrap();
        a.select_sentence("note.doc", 1, at).unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "Potassium repleted.");
        // First sentence of the paragraph.
        a.select_sentence("note.doc", 1, 0).unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(
            a.extract_content(&addr).unwrap(),
            "Overnight events: diuresed 1.2L with IV Lasix."
        );
    }

    #[test]
    fn sentence_at_decimal_numbers_not_split() {
        let doc = TextDocument::from_text("d.doc", "Gave 1.2L fluid. Then rested.");
        let span = doc.sentence_at(0, 0).unwrap();
        assert_eq!(span.slice("Gave 1.2L fluid. Then rested.").unwrap(), "Gave 1.2L fluid.");
    }

    #[test]
    fn paragraph_edits_shift_bookmarks_but_not_marks() {
        let mut a = app();
        // A span mark into paragraph 1 ("Overnight events…").
        a.select_span("note.doc", 1, 18, 26).unwrap();
        let span_mark = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&span_mark).unwrap(), "diuresed");

        // The bookmark targets the same word; an insertion above both.
        a.document_mut("note.doc").unwrap().insert_paragraph(0, "Addendum 05:00: stable.").unwrap();

        // The bookmark followed its content…
        let bookmark_addr = TextAddress {
            file_name: "note.doc".into(),
            target: TextTarget::Bookmark("overnight".into()),
        };
        assert_eq!(a.extract_content(&bookmark_addr).unwrap(), "diuresed");
        // …while the positional span mark now reads the wrong paragraph:
        // classic drift the audit exists to catch.
        assert_ne!(a.extract_content(&span_mark).unwrap(), "diuresed");
    }

    #[test]
    fn replace_and_append_paragraphs() {
        let mut doc = TextDocument::from_text("d.doc", "one\n\ntwo");
        let old = doc.replace_paragraph(1, "TWO").unwrap();
        assert_eq!(old, "two");
        doc.append_paragraph("three");
        assert_eq!(doc.paragraphs(), &["one", "TWO", "three"]);
        assert!(doc.replace_paragraph(9, "x").is_err());
        assert!(doc.insert_paragraph(9, "x").is_err());
    }

    #[test]
    fn find_all_lists_every_occurrence() {
        let a = app();
        let all = a.find_all("lasix");
        assert_eq!(all.len(), 2);
        assert!(a.find_all("digoxin").is_empty());
    }

    #[test]
    fn unicode_spans_count_chars() {
        let mut a = TextApp::new();
        a.open(TextDocument::from_text("u.doc", "Na⁺ is 140 mEq/L")).unwrap();
        a.select_span("u.doc", 0, 0, 3).unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "Na⁺");
    }

    #[test]
    fn bookmark_over_shrunken_paragraph_dangles_instead_of_panicking() {
        let mut a = app();
        let doc = a.document_mut("note.doc").unwrap();
        doc.set_bookmark("tail", 2, Span::new(0, 30)).unwrap();
        // The bookmarked text shrinks out from under the stored span.
        doc.replace_paragraph(2, "short").unwrap();
        let addr = TextAddress {
            file_name: "note.doc".into(),
            target: TextTarget::Bookmark("tail".into()),
        };
        let err = a.extract_content(&addr).unwrap_err();
        assert!(matches!(err, DocError::Dangling { .. }), "{err}");
        let err = a.display_in_place(&addr).unwrap_err();
        assert!(matches!(err, DocError::Dangling { .. }), "{err}");
        assert!(!a.address_is_live(&addr), "a bookmark past the text is not live");
    }
}
