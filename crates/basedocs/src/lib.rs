//! `basedocs` — simulated base-layer applications.
//!
//! The paper's base layer is proprietary desktop software (Excel, Word,
//! PowerPoint, Acrobat, Internet Explorer) plus XML files. The SLIM
//! architecture deliberately assumes almost nothing about these
//! applications:
//!
//! > "we assume only that a base source can supply the **address of a
//! > currently selected information element**, and that it can **return to
//! > that element given the address**" (paper §1).
//!
//! This crate implements that base layer from scratch as six in-process
//! document engines, each with a faithful *addressing scheme* matching the
//! paper's mark types (Figure 8), a *selection model*, and the §6
//! extension behaviours (*extract content*, *display in place*):
//!
//! | module        | stands in for      | address shape                         |
//! |---------------|--------------------|---------------------------------------|
//! | [`spreadsheet`] | Microsoft Excel  | file, sheet, A1 range                 |
//! | [`xmldoc`]      | XML documents    | file, XPath-lite element path         |
//! | [`textdoc`]     | Microsoft Word   | file, bookmark or paragraph/char span |
//! | [`htmldoc`]     | HTML pages (IE)  | url, element path + text span / anchor|
//! | [`pdfdoc`]      | Adobe PDF        | file, page, line/char span            |
//! | [`slides`]      | PowerPoint       | file, slide, shape id                 |
//!
//! Every engine implements [`BaseApplication`], the narrow two-capability
//! interface, so the mark layer (`marks` crate) can drive any of them
//! uniformly — the property the paper credits for making the architecture
//! "readily extensible".

pub mod app;
pub mod common;
pub mod htmldoc;
pub mod pdfdoc;
pub mod slides;
pub mod spreadsheet;
pub mod textdoc;
pub mod xmldoc;

pub use app::BaseApplication;
pub use common::{DocError, DocKind, Span};
pub use htmldoc::{HtmlAddress, HtmlApp};
pub use pdfdoc::{PdfAddress, PdfApp};
pub use slides::{SlideAddress, SlidesApp};
pub use spreadsheet::{CellRef, CellValue, Range, SpreadsheetAddress, SpreadsheetApp};
pub use textdoc::{TextAddress, TextApp};
pub use xmldoc::{XmlAddress, XmlApp};
